//! Determinism: identical seeds must give identical datasets, features,
//! trained parameters, and predictions — the property that makes every
//! number in EXPERIMENTS.md reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rntrajrec_suite::rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec_suite::rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec_suite::rntrajrec::train::{TrainConfig, Trainer};
use rntrajrec_suite::rntrajrec_synth::DatasetConfig;

fn scale() -> ExperimentScale {
    ExperimentScale {
        num_traj: 16,
        dim: 8,
        epochs: 1,
        batch: 4,
        max_eval: 2,
        seed: 7,
        lr: 3e-3,
    }
}

#[test]
fn pipelines_are_bitwise_deterministic() {
    let a = Pipeline::prepare(DatasetConfig::tiny(8, 16), &scale());
    let b = Pipeline::prepare(DatasetConfig::tiny(8, 16), &scale());
    assert_eq!(a.train_inputs.len(), b.train_inputs.len());
    for (x, y) in a.train_inputs.iter().zip(&b.train_inputs) {
        assert_eq!(x.base_feats, y.base_feats);
        assert_eq!(x.target_segs, y.target_segs);
        assert_eq!(x.grid_flat, y.grid_flat);
    }
}

#[test]
fn training_and_prediction_are_deterministic() {
    let s = scale();
    let p = Pipeline::prepare(DatasetConfig::tiny(8, 16), &s);
    let run = || {
        let mut m = EndToEnd::build(&MethodSpec::MTrajRec, &p.dataset.city.net, &p.grid, 8, 7);
        let mut t = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 3e-3,
            seed: 7,
            ..Default::default()
        });
        t.fit(&mut m, &p.train_inputs, None);
        let mut rng = StdRng::seed_from_u64(5);
        m.predict(&p.test_inputs[0], &mut rng)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_models() {
    let s = scale();
    let p = Pipeline::prepare(DatasetConfig::tiny(8, 16), &s);
    let m1 = EndToEnd::build(&MethodSpec::MTrajRec, &p.dataset.city.net, &p.grid, 8, 7);
    let m2 = EndToEnd::build(&MethodSpec::MTrajRec, &p.dataset.city.net, &p.grid, 8, 8);
    let mut rng = StdRng::seed_from_u64(5);
    let a = m1.predict(&p.test_inputs[0], &mut rng);
    let mut rng = StdRng::seed_from_u64(5);
    let b = m2.predict(&p.test_inputs[0], &mut rng);
    // Rates are continuous: identical outputs across different inits would
    // indicate the seed is being ignored.
    let ra: Vec<f32> = a.iter().map(|&(_, r)| r).collect();
    let rb: Vec<f32> = b.iter().map(|&(_, r)| r).collect();
    assert_ne!(ra, rb);
}
