//! Cross-crate serving integration: train a small RNTrajRec model through
//! the standard pipeline, then serve it online and check that the
//! micro-batched engine reproduces offline inference exactly and that the
//! tape-free path agrees with the tape-based predictor on trained weights.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rntrajrec_suite::rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec_suite::rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec_suite::rntrajrec::train::{TrainConfig, Trainer};
use rntrajrec_suite::rntrajrec_serve::{EngineConfig, RecoveryEngine, ServingModel, SubmitOptions};
use rntrajrec_suite::rntrajrec_synth::DatasetConfig;

fn trained_pipeline() -> (Pipeline, EndToEnd) {
    let scale = ExperimentScale {
        num_traj: 24,
        dim: 8,
        epochs: 1,
        batch: 4,
        max_eval: 4,
        seed: 7,
        lr: 3e-3,
    };
    let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, scale.num_traj), &scale);
    let mut model = EndToEnd::build(
        &MethodSpec::RnTrajRec,
        &pipeline.dataset.city.net,
        &pipeline.grid,
        scale.dim,
        scale.seed,
    );
    let mut trainer = Trainer::new(TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch,
        seed: scale.seed,
        lr: scale.lr,
        ..Default::default()
    });
    trainer.fit(&mut model, &pipeline.train_inputs, None);
    (pipeline, model)
}

#[test]
fn trained_weights_serve_identically_to_tape_predict() {
    let (pipeline, model) = trained_pipeline();
    let mut rng = StdRng::seed_from_u64(5);
    let tape_preds: Vec<Vec<(usize, f32)>> = pipeline
        .test_inputs
        .iter()
        .map(|i| model.predict(i, &mut rng))
        .collect();

    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec serves"));
    for (input, want) in pipeline.test_inputs.iter().zip(&tape_preds) {
        let got = serving.recover(input);
        assert_eq!(got.len(), want.len());
        for (j, (&(gs, gr), &(ws, wr))) in got.iter().zip(want).enumerate() {
            assert_eq!(gs, ws, "step {j}: trained tape-free segment diverged");
            assert_eq!(
                gr, wr,
                "step {j}: rate not bit-identical on trained weights"
            );
        }
    }
}

#[test]
fn engine_micro_batching_is_transparent_end_to_end() {
    let (pipeline, model) = trained_pipeline();
    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec serves"));
    let sequential: Vec<Vec<(usize, f32)>> = pipeline
        .test_inputs
        .iter()
        .map(|i| serving.recover(i))
        .collect();

    let engine = RecoveryEngine::start(
        Arc::clone(&serving),
        EngineConfig {
            max_batch: 3,
            max_delay: Duration::from_millis(1),
            workers: 3,
            threads_per_worker: 0,
            queue_capacity: None,
            ..EngineConfig::default()
        },
    );
    // Submit everything at once so batches actually form.
    let handles: Vec<_> = pipeline
        .test_inputs
        .iter()
        .map(|i| {
            engine
                .submit(i.clone(), SubmitOptions::new())
                .expect("unbounded queue accepts every submission")
        })
        .collect();
    for (h, want) in handles.into_iter().zip(&sequential) {
        assert_eq!(
            &h.wait().path,
            want,
            "micro-batched serving changed a result"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.completed as usize, pipeline.test_inputs.len());
}
