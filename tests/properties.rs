//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rntrajrec_suite::rntrajrec_geo::{GeoPoint, GridSpec, Polyline, Projection, XY};
use rntrajrec_suite::rntrajrec_roadnet::{
    CityConfig, NetworkDistance, RTree, RoadPosition, SegmentId, SyntheticCity,
};
use rntrajrec_suite::rntrajrec_synth::{SimConfig, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Projection round-trip is exact at city scale.
    #[test]
    fn projection_round_trip(lat in 30.0f64..32.0, lng in 120.0f64..122.0,
                             dlat in -0.2f64..0.2, dlng in -0.2f64..0.2) {
        let proj = Projection::new(GeoPoint::new(lat, lng));
        let p = GeoPoint::new(lat + dlat, lng + dlng);
        let back = proj.to_geo(&proj.to_xy(&p));
        prop_assert!((back.lat - p.lat).abs() < 1e-9);
        prop_assert!((back.lng - p.lng).abs() < 1e-9);
    }

    /// A polyline projection always lands on the polyline (distance from
    /// the projected point back to the line is ~0) with frac in [0,1].
    #[test]
    fn polyline_projection_is_on_the_line(
        x0 in -100.0f64..100.0, y0 in -100.0f64..100.0,
        x1 in -100.0f64..100.0, y1 in -100.0f64..100.0,
        px in -200.0f64..200.0, py in -200.0f64..200.0,
    ) {
        prop_assume!((x0 - x1).abs() > 1e-6 || (y0 - y1).abs() > 1e-6);
        let line = Polyline::segment(XY::new(x0, y0), XY::new(x1, y1));
        let pr = line.project(&XY::new(px, py));
        prop_assert!((0.0..=1.0).contains(&pr.frac));
        let back = line.project(&pr.point);
        prop_assert!(back.dist < 1e-6, "projected point {} m off the line", back.dist);
    }

    /// Grid cell containment: every cell centre maps back to its own cell.
    #[test]
    fn grid_cell_center_round_trip(col in 0u32..40, row in 0u32..20) {
        let g = GridSpec::cover(0.0, 0.0, 2000.0, 1000.0, 50.0);
        let c = rntrajrec_suite::rntrajrec_geo::GridCell { col, row };
        prop_assert_eq!(g.cell_of(&g.cell_center(c)), c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Road-network metric distance: identity, symmetry, and a relaxed
    /// triangle inequality (the metric is a min over directions, so the
    /// triangle inequality holds up to numerical slack).
    #[test]
    fn network_distance_metric_properties(seed in 0u64..50) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let mut nd = NetworkDistance::new(&city.net);
        let n = city.net.num_segments() as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let pos = |rng: &mut StdRng| RoadPosition::new(
            SegmentId(rng.gen_range(0..n)), rng.gen_range(0.0..1.0));
        let a = pos(&mut rng);
        let b = pos(&mut rng);
        prop_assert!(nd.metric_m(&a, &a) < 1e-9);
        let ab = nd.metric_m(&a, &b);
        let ba = nd.metric_m(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6, "symmetry violated: {ab} vs {ba}");
        prop_assert!(ab >= 0.0);
    }

    /// R-tree radius query matches brute force on the synthetic city.
    #[test]
    fn rtree_radius_matches_brute_force(seed in 0u64..30, r in 50.0f64..400.0) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let tree = RTree::build(&city.net);
        let b = city.net.bbox();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let p = XY::new(rng.gen_range(b.min_x..b.max_x), rng.gen_range(b.min_y..b.max_y));
        let mut got: Vec<u32> = tree.within_radius(&city.net, &p, r)
            .into_iter().map(|h| h.seg.0).collect();
        got.sort_unstable();
        let mut brute: Vec<u32> = city.net.segments().iter()
            .filter(|s| s.geometry.project(&p).dist <= r)
            .map(|s| s.id.0).collect();
        brute.sort_unstable();
        prop_assert_eq!(got, brute);
    }

    /// Simulated ground truth is physically consistent: consecutive points
    /// are reachable within one interval at the clamped max speed.
    #[test]
    fn simulated_motion_is_speed_bounded(seed in 0u64..20) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sim.sample(&mut rng, 8);
        let mut nd = NetworkDistance::new(&city.net);
        for w in s.target.points.windows(2) {
            let d = nd.directed_m(&w[0].pos, &w[1].pos);
            prop_assert!(d.is_some(), "consecutive samples must be route-connected");
            prop_assert!(d.unwrap() <= 35.0 * 12.0 + 1e-6);
        }
    }
}
