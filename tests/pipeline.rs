//! Cross-crate integration tests: the full path from city generation
//! through simulation, feature extraction, training, inference and
//! evaluation, plus the classic two-stage pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rntrajrec_suite::rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec_suite::rntrajrec::metrics::{path_prf, travel_path, MetricsAccumulator};
use rntrajrec_suite::rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec_suite::rntrajrec_mapmatch::{HmmConfig, HmmMatcher};
use rntrajrec_suite::rntrajrec_roadnet::{is_strongly_connected, CityConfig, RTree, SyntheticCity};
use rntrajrec_suite::rntrajrec_synth::{DatasetConfig, SimConfig, Simulator, SplitDataset};

fn quick_scale() -> ExperimentScale {
    ExperimentScale {
        num_traj: 24,
        dim: 8,
        epochs: 1,
        batch: 4,
        max_eval: 2,
        seed: 7,
        lr: 3e-3,
    }
}

#[test]
fn full_pipeline_rntrajrec_smoke() {
    let scale = quick_scale();
    let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, scale.num_traj), &scale);
    let r = pipeline.train_and_eval(&MethodSpec::RnTrajRec, &scale);
    assert!(r.f1.is_finite() && (0.0..=1.0).contains(&r.accuracy));
    assert!(r.mae_m.is_finite() && r.mae_m >= 0.0);
    assert!(r.num_params > 0);
}

#[test]
fn full_pipeline_two_stage_smoke() {
    let scale = quick_scale();
    let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, scale.num_traj), &scale);
    let linear = pipeline.train_and_eval(&MethodSpec::LinearHmm, &scale);
    let dhtr = pipeline.train_and_eval(&MethodSpec::DhtrHmm, &scale);
    for r in [&linear, &dhtr] {
        assert_eq!(r.sr_cases.len(), 2);
        assert!(r.rmse_m >= r.mae_m, "RMSE must dominate MAE: {r}");
    }
}

#[test]
fn every_named_dataset_generates_and_is_connected() {
    for cfg in [
        DatasetConfig::chengdu(8, 4),
        DatasetConfig::porto(8, 4),
        DatasetConfig::shanghai_l(16, 4),
        DatasetConfig::shanghai(8, 4),
        DatasetConfig::chengdu_few(8, 20),
    ] {
        let name = cfg.name;
        let ds = SplitDataset::generate(cfg);
        assert!(
            is_strongly_connected(&ds.city.net),
            "{name} not strongly connected"
        );
        assert!(
            ds.train.len() + ds.valid.len() + ds.test.len() > 0,
            "{name} empty"
        );
        for s in ds.all_samples() {
            assert_eq!(s.target.len(), 33, "{name} target length");
            assert!(s.raw.len() >= 3, "{name} input too short");
        }
    }
}

#[test]
fn hmm_ground_truth_pipeline_consistency() {
    // The paper derives ground truth with HMM on dense traces; our
    // simulator produces it directly. Both must agree on clean data.
    let city = SyntheticCity::generate(CityConfig::tiny());
    let rtree = RTree::build(&city.net);
    let cfg = SimConfig {
        gps_noise_std_m: 0.0,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&city.net, cfg);
    let mut rng = StdRng::seed_from_u64(5);
    let sample = sim.sample_dense(&mut rng, rntrajrec_suite::rntrajrec_roadnet::SegmentId(0));
    let mut matcher = HmmMatcher::new(&city.net, &rtree, HmmConfig::default());
    let matched = matcher.match_trajectory(&sample.raw);
    let agree = matched
        .points
        .iter()
        .zip(&sample.target.points)
        .filter(|(a, b)| a.pos.seg == b.pos.seg)
        .count();
    let acc = agree as f64 / sample.target.len() as f64;
    assert!(
        acc > 0.9,
        "HMM vs simulator ground truth agreement only {acc}"
    );
}

#[test]
fn metrics_are_internally_consistent() {
    // Perfect predictions give perfect metrics through the whole stack.
    let scale = quick_scale();
    let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, 12), &scale);
    let mut acc = MetricsAccumulator::new(&pipeline.dataset.city.net);
    for input in &pipeline.test_inputs {
        let truth: Vec<(usize, f32)> = input
            .target_segs
            .iter()
            .zip(&input.target_rates)
            .map(|(&s, &r)| (s, r))
            .collect();
        acc.add(&truth, &truth);
    }
    let m = acc.finish();
    assert_eq!(m.accuracy, 1.0);
    assert_eq!(m.f1, 1.0);
    assert!(m.mae_m < 1e-9);
}

#[test]
fn prediction_interface_round_trips_through_metrics() {
    let scale = quick_scale();
    let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, 16), &scale);
    let model = EndToEnd::build(
        &MethodSpec::MTrajRec,
        &pipeline.dataset.city.net,
        &pipeline.grid,
        8,
        7,
    );
    let mut rng = StdRng::seed_from_u64(1);
    let input = &pipeline.test_inputs[0];
    let pred = model.predict(input, &mut rng);
    let tp = travel_path(input.target_segs.iter().copied());
    let pp = travel_path(pred.iter().map(|&(s, _)| s));
    let (r, p, f1) = path_prf(&tp, &pp);
    assert!((0.0..=1.0).contains(&r) && (0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&f1));
}
