//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for structs with named fields, without
//! `syn`/`quote` (unavailable offline): the token stream is parsed by hand.
//! Supported attribute: `#[serde(skip)]` on a field. Anything fancier
//! (enums, generics, rename) is intentionally rejected — this workspace
//! only derives on plain result-record structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name> { ... }`.
    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = tt {
            if id.to_string() == "struct" {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => panic!("derive(Serialize): expected struct name"),
                }
                for rest in iter.by_ref() {
                    if let TokenTree::Group(g) = rest {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                    if let TokenTree::Punct(p) = rest {
                        if p.as_char() == '<' {
                            panic!("derive(Serialize): generic structs unsupported");
                        }
                    }
                }
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize): no struct found (enums unsupported)");
    let body = body.expect("derive(Serialize): only named-field structs are supported");

    let mut pushes = String::new();
    for field in parse_fields(body) {
        if field.skip {
            continue;
        }
        pushes.push_str(&format!(
            "obj.push((\"{0}\".to_string(), serde::Serialize::serialize_value(&self.{0})));\n",
            field.name
        ));
    }

    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> serde::Value {{\n\
         let mut obj: Vec<(String, serde::Value)> = Vec::new();\n\
         {pushes}\
         serde::Value::Object(obj)\n\
         }}\n\
         }}\n"
    )
    .parse()
    .expect("derive(Serialize): generated impl failed to parse")
}

struct Field {
    name: String,
    skip: bool,
}

/// Split the brace body into fields at top-level commas; for each field,
/// record its name (the ident before the first top-level `:`) and whether a
/// `#[serde(skip)]` attribute precedes it.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut skip = false;
    let mut current_name: Option<String> = None;
    let mut seen_colon = false;

    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracket group.
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                    i += 2;
                    continue;
                }
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if let Some(name) = current_name.take() {
                    fields.push(Field { name, skip });
                }
                skip = false;
                seen_colon = false;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !seen_colon => {
                seen_colon = true;
                i += 1;
            }
            TokenTree::Ident(id) if !seen_colon => {
                let s = id.to_string();
                if s != "pub" {
                    current_name = Some(s);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    if let Some(name) = current_name.take() {
        fields.push(Field { name, skip });
    }
    fields
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(g)] if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}
