//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench targets use — `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple calibrated wall-clock loop instead of criterion's
//! statistical machinery. Passing `--test` (as `cargo test` does for
//! harness-less bench targets) runs each routine once and skips timing.

use std::time::{Duration, Instant};

/// How the per-iteration setup output is batched (accepted for API
/// compatibility; this harness always runs setup per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The measurement driver handed to `bench_function` closures.
pub struct Bencher {
    /// Test mode: run the routine once, skip measurement.
    quick: bool,
    /// Mean ns/iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    fn measure<F: FnMut()>(&mut self, mut routine: F) {
        if self.quick {
            routine();
            self.last_ns = 0.0;
            return;
        }
        // Warm-up.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(50) {
            routine();
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~200 ms of measurement, capped.
        let iters = ((0.2 / per_iter.max(1e-9)) as u64).clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        self.last_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            std::hint::black_box(routine());
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            std::hint::black_box(routine(input));
        });
    }
}

/// Top-level harness state.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`.
        let quick = std::env::args().any(|a| a == "--test" || a == "--list");
        Self { quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            quick: self.quick,
            last_ns: 0.0,
        };
        f(&mut b);
        report(name, &b);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            quick: self.c.quick,
            last_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher) {
    if b.quick {
        println!("bench {name}: ok (test mode)");
    } else if b.last_ns >= 1e6 {
        println!("bench {name}: {:.3} ms/iter", b.last_ns / 1e6);
    } else if b.last_ns >= 1e3 {
        println!("bench {name}: {:.3} µs/iter", b.last_ns / 1e3);
    } else {
        println!("bench {name}: {:.1} ns/iter", b.last_ns);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { quick: true };
        let mut ran = 0;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("g");
        let mut hits = 0;
        g.bench_function("a", |b| {
            b.iter_batched(|| 3, |x| hits += x, BatchSize::SmallInput)
        });
        g.finish();
        assert!(hits > 0);
    }
}
