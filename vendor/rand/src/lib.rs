//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded by
//! SplitMix64), the [`Rng`] extension methods (`gen`, `gen_range`,
//! `gen_bool`), and [`seq::SliceRandom::shuffle`]. Determinism across runs
//! and platforms is the property the test-suite relies on; statistical
//! quality of xoshiro256++ is far beyond what the experiments need.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Value types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]` (`hi` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    };
}
uniform_float!(f32);
uniform_float!(f64);

macro_rules! uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    };
}
uniform_int!(u16);
uniform_int!(u32);
uniform_int!(u64);
uniform_int!(usize);

macro_rules! uniform_signed {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    };
}
uniform_signed!(i32);
uniform_signed!(i64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing extension trait (blanket-implemented for every
/// [`RngCore`], mirroring `rand 0.8`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle` is the only one the workspace uses).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let g = rng.gen_range(f64::EPSILON..1.0);
            assert!(g > 0.0 && g < 1.0);
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let v = rng.gen_range(0u32..7);
            assert!(v < 7);
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
