//! Offline stand-in for `proptest`.
//!
//! Supports exactly the shape this workspace's property tests use: a
//! `proptest!` block with an optional `#![proptest_config(...)]`, test
//! functions whose arguments are `name in <numeric range>` strategies, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Each
//! test runs `cases` deterministic iterations (seeded per case index), so
//! failures are reproducible without shrinking.

pub use rand;
use rand::{Rng, RngCore, SeedableRng};

/// Run-count configuration (`with_cases` is the only knob used).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator. Implemented for numeric `Range`s (the only strategy
/// form the workspace uses).
pub trait Strategy {
    type Value;
    fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate<R: RngCore>(&self, rng: &mut R) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate<R: RngCore>(&self, rng: &mut R) -> T {
        rng.gen_range(self.clone())
    }
}

/// Deterministic per-case RNG: test name + case index.
pub fn case_rng(test_name: &str, case: u32) -> rand::rngs::StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Outcome of one proptest case body.
pub enum CaseResult {
    Ok,
    /// `prop_assume!` failed — the case is skipped, not failed.
    Reject,
    Fail(String),
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! proptest {
    // Internal: expanded test functions (must precede the catch-all rule).
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut __proptest_rng);
                    )*
                    let outcome = (|| -> $crate::CaseResult {
                        $body
                        $crate::CaseResult::Ok
                    })();
                    match outcome {
                        $crate::CaseResult::Ok | $crate::CaseResult::Reject => {}
                        $crate::CaseResult::Fail(msg) => {
                            panic!(
                                "proptest case {case} failed: {msg}\n  inputs: {}",
                                vec![$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", ")
                            );
                        }
                    }
                }
            }
        )*
    };
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else` (rather than `if !cond`) keeps the
        // neg_cmp_op_on_partial_ord lint quiet for float comparisons.
        if $cond {
        } else {
            return $crate::CaseResult::Fail(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if $cond {
        } else {
            return $crate::CaseResult::Fail(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return $crate::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 0.0f64..1.0, n in 1u32..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(x in -1.0f64..1.0) {
            prop_assume!(x > 0.0);
            prop_assert!(x > 0.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        use rand::Rng;
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }
}
