//! Offline stand-in for `serde`.
//!
//! The real serde's `Serializer` architecture is far more general than this
//! workspace needs: every serialisation here ends up as JSON on disk. So
//! [`Serialize`] simply lowers a value into a [`Value`] tree that
//! `serde_json` renders. `#[derive(Serialize)]` (from the vendored
//! `serde_derive`) supports named-field structs and honours
//! `#[serde(skip)]`.

pub use serde_derive::Serialize;

/// A JSON value tree (shared with the vendored `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup (`None` for non-arrays / out of range).
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric variant as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A non-negative integral value as `u64` (rejects floats with a
    /// fractional part and negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Lower `self` into a [`Value`].
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}
