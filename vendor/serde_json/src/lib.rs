//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON text, plus the `json!` object/array macro.

pub use serde::Value;

/// An insertion-ordered string-keyed object map (stand-in for
/// `serde_json::Map<String, Value>`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a key, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl serde::Serialize for Map {
    fn serialize_value(&self) -> Value {
        Value::Object(self.entries.clone())
    }
}

/// Convert any [`serde::Serialize`] value into a [`Value`] (used by the
/// `json!` macro).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, std::fmt::Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, like the real serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(
    value: &T,
) -> Result<String, std::fmt::Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), write_value, '[', ']', indent, depth),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            |o, (k, val), ind, d| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
            '{',
            '}',
            indent,
            depth,
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] from JSON-ish syntax. Supports objects with literal
/// string keys, arrays, and arbitrary `Serialize` expressions as values
/// (nested object literals as values are not supported — build them with a
/// nested `json!` call instead).
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v =
            json!({ "name": "x", "xs": vec![1.0, 2.5], "none": Option::<u32>::None, "ok": true });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("2.5"));
        assert!(s.contains("null"));
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"x","xs":[1,2.5],"none":null,"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn exprs_in_json_macro() {
        let rows = vec![1usize, 2, 3];
        let label = String::from("t");
        let v = json!({ "dataset": label, "rows": rows });
        assert_eq!(to_string(&v).unwrap(), r#"{"dataset":"t","rows":[1,2,3]}"#);
    }
}
