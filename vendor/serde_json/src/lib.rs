//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON text, parses JSON text back into a [`Value`] tree
//! ([`from_str`] / [`from_slice`]), plus the `json!` object/array macro.

pub use serde::Value;

/// Where and why parsing failed. `offset` is a byte index into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejects trailing non-whitespace).
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Parse a complete JSON document from bytes (must be UTF-8).
pub fn from_slice(bytes: &[u8]) -> Result<Value, ParseError> {
    let s = std::str::from_utf8(bytes).map_err(|e| ParseError {
        offset: e.valid_up_to(),
        message: "invalid UTF-8".to_string(),
    })?;
    from_str(s)
}

/// Nesting guard: deeper documents are rejected rather than risking a
/// stack overflow on hostile input (this parser feeds an HTTP endpoint).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect("null", Value::Null),
            Some(b't') => self.expect("true", Value::Bool(true)),
            Some(b'f') => self.expect("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            // Last duplicate wins (matches the real serde_json default).
            if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                entries.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a valid &str, so decode
                    // the full character from the source slice.
                    let start = self.pos - 1;
                    let s = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..]) };
                    let ch = s.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        // Integer part: a leading zero must stand alone (RFC 8259).
        if self.peek() == Some(b'0') {
            self.pos += 1;
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("leading zero in number"));
            }
        } else {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if neg {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number".to_string(),
            })
    }
}

/// An insertion-ordered string-keyed object map (stand-in for
/// `serde_json::Map<String, Value>`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a key, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl serde::Serialize for Map {
    fn serialize_value(&self) -> Value {
        Value::Object(self.entries.clone())
    }
}

/// Convert any [`serde::Serialize`] value into a [`Value`] (used by the
/// `json!` macro).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, std::fmt::Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, like the real serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(
    value: &T,
) -> Result<String, std::fmt::Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), write_value, '[', ']', indent, depth),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            |o, (k, val), ind, d| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
            '{',
            '}',
            indent,
            depth,
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] from JSON-ish syntax. Supports objects with literal
/// string keys, arrays, and arbitrary `Serialize` expressions as values
/// (nested object literals as values are not supported — build them with a
/// nested `json!` call instead).
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v =
            json!({ "name": "x", "xs": vec![1.0, 2.5], "none": Option::<u32>::None, "ok": true });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("2.5"));
        assert!(s.contains("null"));
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"x","xs":[1,2.5],"none":null,"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn exprs_in_json_macro() {
        let rows = vec![1usize, 2, 3];
        let label = String::from("t");
        let v = json!({ "dataset": label, "rows": rows });
        assert_eq!(to_string(&v).unwrap(), r#"{"dataset":"t","rows":[1,2,3]}"#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-0.125").unwrap(), Value::Float(-0.125));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": null}], "c": "x\ny", "d": {}}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("a").unwrap().index(0).unwrap().as_u64(), Some(1));
        assert!(v
            .get("a")
            .unwrap()
            .index(1)
            .unwrap()
            .get("b")
            .unwrap()
            .is_null());
        assert_eq!(v.get("d").unwrap().as_object(), Some(&[][..]));
    }

    #[test]
    fn roundtrips_through_serializer() {
        let v = json!({
            "name": "τ trajectory \"quoted\"",
            // Non-integral floats only: `1.0` renders as `1` and would
            // (correctly) parse back as an integer variant.
            "xs": vec![1.5f64, -2.5, 3e-4],
            "n": 17usize,
            "neg": -4i64,
            "flag": false,
        });
        let parsed = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let parsed_pretty = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed_pretty, v);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            from_str(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Value::String("Aé😀".into())
        );
        assert!(from_str(r#""\ud83d""#).is_err()); // unpaired surrogate
        assert_eq!(from_str("\"né\"").unwrap(), Value::String("né".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "--1",
            "\"\\x\"",
            "\"unterminated",
            "[1] garbage",
            "{'a': 1}",
            "\u{1}",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(from_str(&deep).is_err(), "depth guard must trip");
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = from_str(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.as_object().unwrap().len(), 1);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn from_slice_checks_utf8() {
        assert_eq!(from_slice(b"[1,2]").unwrap(), from_str("[1,2]").unwrap());
        assert!(from_slice(&[0x22, 0xff, 0x22]).is_err());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        // The serving path relies on f32 rates surviving JSON exactly:
        // f32 -> f64 is exact, the writer emits a shortest round-trippable
        // f64, and the parser defers to the stdlib's correctly-rounded
        // float parsing.
        for &r in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 0.999_999_94] {
            let s = to_string(&r).unwrap();
            let back = from_str(&s).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), r.to_bits(), "rate {r} corrupted by JSON");
        }
    }
}
