//! Umbrella crate for the RNTrajRec reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for the actual library code:
//!
//! * [`rntrajrec_geo`] — geodesy primitives
//! * [`rntrajrec_roadnet`] — road-network graph, grid partition, R-tree
//! * [`rntrajrec_synth`] — synthetic city + trajectory simulator
//! * [`rntrajrec_mapmatch`] — HMM map matching, interpolation, Kalman filter
//! * [`rntrajrec_nn`] — tensor/autograd engine, optimizers, and the
//!   tape-free inference ops
//! * [`rntrajrec_models`] — neural modules (GridGNN, GPSFormer, baselines)
//! * [`rntrajrec`] — the end-to-end model, training, and evaluation
//! * [`rntrajrec_serve`] — the online recovery serving engine
//!   (micro-batching over tape-free inference)

pub use rntrajrec;
pub use rntrajrec_geo;
pub use rntrajrec_mapmatch;
pub use rntrajrec_models;
pub use rntrajrec_nn;
pub use rntrajrec_roadnet;
pub use rntrajrec_serve;
pub use rntrajrec_synth;
