//! Umbrella crate for the RNTrajRec reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for the actual library code:
//!
//! * [`rntrajrec_geo`] — geodesy primitives
//! * [`rntrajrec_roadnet`] — road-network graph, grid partition, R-tree
//! * [`rntrajrec_synth`] — synthetic city + trajectory simulator
//! * [`rntrajrec_mapmatch`] — HMM map matching, interpolation, Kalman filter
//! * [`rntrajrec_nn`] — tensor/autograd engine and optimizers
//! * [`rntrajrec_models`] — neural modules (GridGNN, GPSFormer, baselines)
//! * [`rntrajrec`] — the end-to-end model, training, and evaluation

pub use rntrajrec;
pub use rntrajrec_geo;
pub use rntrajrec_mapmatch;
pub use rntrajrec_models;
pub use rntrajrec_nn;
pub use rntrajrec_roadnet;
pub use rntrajrec_synth;
