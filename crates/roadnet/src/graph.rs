//! The directed road graph: segments as nodes, connectivity as edges.

use std::collections::HashMap;

use rntrajrec_geo::{BBox, GridCell, GridSpec, Polyline, XY};

/// Number of road levels; the paper's static feature vector reserves an
/// 8-dim one-hot for "level of road segment".
pub const NUM_ROAD_LEVELS: usize = 8;

/// Functional class of a road segment, mirroring OSM-style levels.
///
/// [`RoadLevel::Elevated`] marks segments of the elevated expressway used in
/// the robustness study (Section VI-D): they geometrically overlap a ground
/// trunk road but are topologically separate except at ramps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadLevel {
    Residential,
    Tertiary,
    Secondary,
    Primary,
    Trunk,
    Motorway,
    Elevated,
    Ramp,
}

impl RoadLevel {
    /// Index into the 8-dim one-hot of the static feature vector.
    pub fn index(&self) -> usize {
        match self {
            RoadLevel::Residential => 0,
            RoadLevel::Tertiary => 1,
            RoadLevel::Secondary => 2,
            RoadLevel::Primary => 3,
            RoadLevel::Trunk => 4,
            RoadLevel::Motorway => 5,
            RoadLevel::Elevated => 6,
            RoadLevel::Ramp => 7,
        }
    }

    /// Free-flow speed prior for the trajectory simulator, in m/s.
    ///
    /// Urban-congested magnitudes: the ratio of inter-observation gap to
    /// block size then matches the paper's city-scale datasets (see
    /// DESIGN.md §2).
    pub fn freeflow_speed(&self) -> f64 {
        match self {
            RoadLevel::Residential => 4.0,
            RoadLevel::Tertiary => 5.0,
            RoadLevel::Secondary => 6.0,
            RoadLevel::Primary => 7.0,
            RoadLevel::Trunk => 8.0,
            RoadLevel::Motorway => 12.5,
            RoadLevel::Elevated => 10.0,
            RoadLevel::Ramp => 3.5,
        }
    }
}

/// Identifier of a road segment — the node id of the directed graph and the
/// class id of the decoder's road-segment prediction task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

impl SegmentId {
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed road segment with planar geometry.
#[derive(Debug, Clone)]
pub struct RoadSegment {
    pub id: SegmentId,
    pub geometry: Polyline,
    pub level: RoadLevel,
}

impl RoadSegment {
    pub fn length(&self) -> f64 {
        self.geometry.length()
    }

    pub fn start(&self) -> XY {
        self.geometry.first()
    }

    pub fn end(&self) -> XY {
        self.geometry.last()
    }
}

/// The road network: a directed graph over [`RoadSegment`]s (Definition 1).
///
/// `⟨e_i, e_j⟩ ∈ E` iff the end point of `e_i` coincides with the start
/// point of `e_j` (within a small snapping tolerance applied at build time).
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    segments: Vec<RoadSegment>,
    out_edges: Vec<Vec<SegmentId>>,
    in_edges: Vec<Vec<SegmentId>>,
}

impl RoadNetwork {
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    pub fn segment(&self, id: SegmentId) -> &RoadSegment {
        &self.segments[id.index()]
    }

    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Successors: segments reachable directly from the end of `id`.
    pub fn out_edges(&self, id: SegmentId) -> &[SegmentId] {
        &self.out_edges[id.index()]
    }

    /// Predecessors: segments whose end coincides with the start of `id`.
    pub fn in_edges(&self, id: SegmentId) -> &[SegmentId] {
        &self.in_edges[id.index()]
    }

    /// Total number of directed connectivity edges.
    pub fn num_edges(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Bounding box of the whole network.
    pub fn bbox(&self) -> BBox {
        let mut b = BBox::empty();
        for s in &self.segments {
            b.expand(&s.geometry.bbox());
        }
        b
    }

    /// Undirected neighbourhood (union of in- and out-edges), used by the
    /// GAT layers of GridGNN where attention flows along connectivity
    /// regardless of travel direction.
    pub fn neighbors_undirected(&self, id: SegmentId) -> Vec<SegmentId> {
        let mut n: Vec<SegmentId> = self
            .out_edges(id)
            .iter()
            .chain(self.in_edges(id))
            .copied()
            .collect();
        n.sort_unstable();
        n.dedup();
        n
    }

    /// The static feature vector `f_road_s ∈ R^{|V|×11}` of Section IV-B:
    /// 8-dim road-level one-hot, normalised length, in-degree, out-degree.
    pub fn static_features(&self, id: SegmentId) -> [f32; NUM_ROAD_LEVELS + 3] {
        let seg = self.segment(id);
        let mut f = [0.0f32; NUM_ROAD_LEVELS + 3];
        f[seg.level.index()] = 1.0;
        // Normalise length to km so features stay O(1).
        f[NUM_ROAD_LEVELS] = (seg.length() / 1000.0) as f32;
        f[NUM_ROAD_LEVELS + 1] = self.in_edges(id).len() as f32;
        f[NUM_ROAD_LEVELS + 2] = self.out_edges(id).len() as f32;
        f
    }

    /// A [`GridSpec`] covering the network with square cells of `cell_m`
    /// metres (the paper uses 50 m), inflated slightly so border GPS noise
    /// still lands inside.
    pub fn grid(&self, cell_m: f64) -> GridSpec {
        let b = self.bbox().inflated(cell_m);
        GridSpec::cover(b.min_x, b.min_y, b.width(), b.height(), cell_m)
    }

    /// Per-segment grid-cell sequences `S_i` (Eq. 1) under `spec`.
    pub fn grid_sequences(&self, spec: &GridSpec) -> Vec<Vec<GridCell>> {
        self.segments
            .iter()
            .map(|s| spec.cells_on_polyline(&s.geometry))
            .collect()
    }
}

/// Incremental builder that snaps endpoints and derives connectivity.
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    segments: Vec<RoadSegment>,
    /// Snapping tolerance in metres for endpoint coincidence.
    tolerance: f64,
}

impl RoadNetworkBuilder {
    pub fn new() -> Self {
        Self {
            segments: Vec::new(),
            tolerance: 0.5,
        }
    }

    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance > 0.0);
        self.tolerance = tolerance;
        self
    }

    /// Add a directed segment; returns its id.
    pub fn add_segment(&mut self, geometry: Polyline, level: RoadLevel) -> SegmentId {
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(RoadSegment {
            id,
            geometry,
            level,
        });
        id
    }

    /// Add both directions of a two-way road; returns (forward, backward).
    pub fn add_two_way(&mut self, geometry: Polyline, level: RoadLevel) -> (SegmentId, SegmentId) {
        let rev = geometry.reversed();
        (
            self.add_segment(geometry, level),
            self.add_segment(rev, level),
        )
    }

    fn key(&self, p: &XY) -> (i64, i64) {
        (
            (p.x / self.tolerance).round() as i64,
            (p.y / self.tolerance).round() as i64,
        )
    }

    /// Derive connectivity (`end(e_i) == start(e_j)`) and freeze the graph.
    pub fn build(self) -> RoadNetwork {
        let n = self.segments.len();
        // Map snapped start points -> segments starting there.
        let mut starts: HashMap<(i64, i64), Vec<SegmentId>> = HashMap::with_capacity(n);
        for s in &self.segments {
            starts.entry(self.key(&s.start())).or_default().push(s.id);
        }
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for s in &self.segments {
            if let Some(next) = starts.get(&self.key(&s.end())) {
                for &t in next {
                    // Disallow immediate U-turns back along the same geometry
                    // (a two-way road's reverse twin): end==start both ways.
                    let t_seg = &self.segments[t.index()];
                    let is_reverse_twin = self.key(&t_seg.end()) == self.key(&s.start())
                        && self.key(&t_seg.start()) == self.key(&s.end())
                        && (t_seg.length() - s.length()).abs() < self.tolerance;
                    if t != s.id && !is_reverse_twin {
                        out_edges[s.id.index()].push(t);
                        in_edges[t.index()].push(s.id);
                    }
                }
            }
        }
        for v in out_edges.iter_mut().chain(in_edges.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        RoadNetwork {
            segments: self.segments,
            out_edges,
            in_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three segments forming a path a->b->c plus a branch b->d.
    fn small_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        b.add_segment(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(100.0, 0.0)),
            RoadLevel::Primary,
        );
        b.add_segment(
            Polyline::segment(XY::new(100.0, 0.0), XY::new(200.0, 0.0)),
            RoadLevel::Primary,
        );
        b.add_segment(
            Polyline::segment(XY::new(100.0, 0.0), XY::new(100.0, 80.0)),
            RoadLevel::Residential,
        );
        b.build()
    }

    #[test]
    fn connectivity_derived_from_endpoints() {
        let net = small_net();
        assert_eq!(net.num_segments(), 3);
        assert_eq!(net.out_edges(SegmentId(0)), &[SegmentId(1), SegmentId(2)]);
        assert_eq!(net.out_edges(SegmentId(1)), &[] as &[SegmentId]);
        assert_eq!(net.in_edges(SegmentId(2)), &[SegmentId(0)]);
        assert_eq!(net.num_edges(), 2);
    }

    #[test]
    fn two_way_does_not_create_uturn() {
        let mut b = RoadNetworkBuilder::new();
        let (f, r) = b.add_two_way(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(100.0, 0.0)),
            RoadLevel::Secondary,
        );
        let net = b.build();
        // Forward must not connect straight onto its own reverse twin.
        assert!(!net.out_edges(f).contains(&r));
        assert!(!net.out_edges(r).contains(&f));
    }

    #[test]
    fn two_way_chain_allows_both_directions() {
        let mut b = RoadNetworkBuilder::new();
        let (f1, r1) = b.add_two_way(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(100.0, 0.0)),
            RoadLevel::Secondary,
        );
        let (f2, r2) = b.add_two_way(
            Polyline::segment(XY::new(100.0, 0.0), XY::new(200.0, 0.0)),
            RoadLevel::Secondary,
        );
        let net = b.build();
        assert!(net.out_edges(f1).contains(&f2));
        assert!(net.out_edges(r2).contains(&r1));
        // Turning back at the middle intersection IS allowed across
        // different roads (f1 -> r1 is forbidden, but f1 -> f2 -> r2? no:
        // f2 -> r2 is also a twin pair and forbidden).
        assert!(!net.out_edges(f2).contains(&r2));
    }

    #[test]
    fn static_features_shape_and_content() {
        let net = small_net();
        let f = net.static_features(SegmentId(0));
        assert_eq!(f.len(), 11);
        assert_eq!(f[RoadLevel::Primary.index()], 1.0);
        assert_eq!(f.iter().take(8).sum::<f32>(), 1.0);
        assert!((f[8] - 0.1).abs() < 1e-6); // 100 m = 0.1 km
        assert_eq!(f[9], 0.0); // in-degree
        assert_eq!(f[10], 2.0); // out-degree
    }

    #[test]
    fn neighbors_undirected_unions_both_sides() {
        let net = small_net();
        assert_eq!(net.neighbors_undirected(SegmentId(1)), vec![SegmentId(0)]);
        assert_eq!(
            net.neighbors_undirected(SegmentId(0)),
            vec![SegmentId(1), SegmentId(2)]
        );
    }

    #[test]
    fn grid_covers_network() {
        let net = small_net();
        let spec = net.grid(50.0);
        let seqs = net.grid_sequences(&spec);
        assert_eq!(seqs.len(), 3);
        // The 100 m horizontal segment crosses at least 2 cells of 50 m.
        assert!(seqs[0].len() >= 2, "got {:?}", seqs[0]);
        // All cells are in-bounds.
        for seq in &seqs {
            assert!(!seq.is_empty());
            for c in seq {
                assert!(c.col < spec.cols && c.row < spec.rows);
            }
        }
    }

    #[test]
    fn level_indices_are_unique_and_dense() {
        use RoadLevel::*;
        let levels = [
            Residential,
            Tertiary,
            Secondary,
            Primary,
            Trunk,
            Motorway,
            Elevated,
            Ramp,
        ];
        let mut seen = [false; NUM_ROAD_LEVELS];
        for l in levels {
            assert!(!seen[l.index()]);
            seen[l.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bbox_spans_all_segments() {
        let net = small_net();
        let b = net.bbox();
        assert_eq!((b.min_x, b.min_y), (0.0, 0.0));
        assert_eq!((b.max_x, b.max_y), (200.0, 80.0));
    }
}
