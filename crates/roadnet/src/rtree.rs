//! An STR-bulk-loaded R-tree over road-segment geometry.
//!
//! Section IV-C: "for a given GPS point p, we first locate the road segments
//! within at most δ meters away from p, via R-tree". This module implements
//! that index from scratch (Guttman-style query structure, Sort-Tile-
//! Recursive packing) because the study-area networks are static: STR gives
//! near-optimal packing with a trivial build.

use std::collections::BinaryHeap;

use crate::{RoadNetwork, SegmentId};
use rntrajrec_geo::{BBox, SegmentProjection, XY};

const LEAF_CAPACITY: usize = 8;

#[derive(Debug)]
enum NodeKind {
    /// Child node indices.
    Inner(Vec<usize>),
    /// Segment ids stored at this leaf.
    Leaf(Vec<SegmentId>),
}

#[derive(Debug)]
struct Node {
    bbox: BBox,
    kind: NodeKind,
}

/// A spatial hit: segment id plus the exact projection of the query point
/// onto its geometry (distance, closest point, moving ratio).
#[derive(Debug, Clone, Copy)]
pub struct RadiusHit {
    pub seg: SegmentId,
    pub projection: SegmentProjection,
}

/// Static R-tree over the segments of one [`RoadNetwork`].
#[derive(Debug)]
pub struct RTree {
    nodes: Vec<Node>,
    root: usize,
}

impl RTree {
    /// Bulk-load from a road network using Sort-Tile-Recursive packing.
    pub fn build(net: &RoadNetwork) -> Self {
        assert!(net.num_segments() > 0, "cannot index an empty network");
        let mut entries: Vec<(BBox, SegmentId)> = net
            .segments()
            .iter()
            .map(|s| (s.geometry.bbox(), s.id))
            .collect();

        let mut nodes: Vec<Node> = Vec::new();
        // Pack leaves.
        let mut level: Vec<usize> = str_pack(&mut entries, |chunk| {
            let bbox = union_boxes(chunk.iter().map(|(b, _)| b));
            nodes.push(Node {
                bbox,
                kind: NodeKind::Leaf(chunk.iter().map(|(_, id)| *id).collect()),
            });
            nodes.len() - 1
        });
        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut upper_entries: Vec<(BBox, usize)> =
                level.iter().map(|&i| (nodes[i].bbox, i)).collect();
            level = str_pack(&mut upper_entries, |chunk| {
                let bbox = union_boxes(chunk.iter().map(|(b, _)| b));
                nodes.push(Node {
                    bbox,
                    kind: NodeKind::Inner(chunk.iter().map(|(_, i)| *i).collect()),
                });
                nodes.len() - 1
            });
        }
        let root = level[0];
        Self { nodes, root }
    }

    /// All segments whose geometry lies within `radius_m` of `p`, with exact
    /// projections, sorted by distance (closest first).
    ///
    /// This is the δ-receptive-field query of the Sub-Graph Generation
    /// module (Section IV-C).
    pub fn within_radius(&self, net: &RoadNetwork, p: &XY, radius_m: f64) -> Vec<RadiusHit> {
        let mut hits = Vec::new();
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i];
            if node.bbox.dist_to_point(p) > radius_m {
                continue;
            }
            match &node.kind {
                NodeKind::Inner(children) => stack.extend_from_slice(children),
                NodeKind::Leaf(segs) => {
                    for &seg in segs {
                        let geom = &net.segment(seg).geometry;
                        if geom.bbox().dist_to_point(p) > radius_m {
                            continue;
                        }
                        let projection = geom.project(p);
                        if projection.dist <= radius_m {
                            hits.push(RadiusHit { seg, projection });
                        }
                    }
                }
            }
        }
        hits.sort_by(|a, b| a.projection.dist.total_cmp(&b.projection.dist));
        hits
    }

    /// The `k` segments nearest to `p` (exact, best-first search).
    pub fn k_nearest(&self, net: &RoadNetwork, p: &XY, k: usize) -> Vec<RadiusHit> {
        enum Item {
            Node(usize),
            Hit(RadiusHit),
        }
        struct Entry {
            d: f64,
            item: Item,
        }
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.d == other.d
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            // Reversed: BinaryHeap is a max-heap, we need min-distance first.
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.d.total_cmp(&self.d)
            }
        }

        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        heap.push(Entry {
            d: self.nodes[self.root].bbox.dist_to_point(p),
            item: Item::Node(self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(Entry { item, .. }) = heap.pop() {
            match item {
                Item::Hit(hit) => {
                    out.push(hit);
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(i) => match &self.nodes[i].kind {
                    NodeKind::Inner(children) => {
                        for &c in children {
                            heap.push(Entry {
                                d: self.nodes[c].bbox.dist_to_point(p),
                                item: Item::Node(c),
                            });
                        }
                    }
                    NodeKind::Leaf(segs) => {
                        for &seg in segs {
                            let projection = net.segment(seg).geometry.project(p);
                            heap.push(Entry {
                                d: projection.dist,
                                item: Item::Hit(RadiusHit { seg, projection }),
                            });
                        }
                    }
                },
            }
        }
        out
    }

    /// Nearest single segment.
    pub fn nearest(&self, net: &RoadNetwork, p: &XY) -> Option<RadiusHit> {
        self.k_nearest(net, p, 1).into_iter().next()
    }

    /// Number of nodes (for structural tests).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

fn union_boxes<'a, I: Iterator<Item = &'a BBox>>(boxes: I) -> BBox {
    let mut b = BBox::empty();
    for x in boxes {
        b.expand(x);
    }
    b
}

/// Sort-Tile-Recursive packing of `entries` into chunks of `LEAF_CAPACITY`,
/// calling `emit` per chunk and returning the emitted node indices.
fn str_pack<T: Copy>(
    entries: &mut [(BBox, T)],
    mut emit: impl FnMut(&[(BBox, T)]) -> usize,
) -> Vec<usize> {
    let n = entries.len();
    let num_chunks = n.div_ceil(LEAF_CAPACITY);
    let slices = (num_chunks as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slices);
    entries.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
    let mut out = Vec::with_capacity(num_chunks);
    for slice in entries.chunks_mut(slice_size.max(1)) {
        slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
        for chunk in slice.chunks(LEAF_CAPACITY) {
            out.push(emit(chunk));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoadLevel, RoadNetworkBuilder};
    use rntrajrec_geo::Polyline;

    /// A 10×10 lattice of 100 m horizontal segments.
    fn lattice() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for row in 0..10 {
            for col in 0..10 {
                let y = row as f64 * 100.0;
                let x = col as f64 * 100.0;
                b.add_segment(
                    Polyline::segment(XY::new(x, y), XY::new(x + 100.0, y)),
                    RoadLevel::Residential,
                );
            }
        }
        b.build()
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let net = lattice();
        let tree = RTree::build(&net);
        for (px, py, r) in [
            (250.0, 250.0, 120.0),
            (0.0, 0.0, 60.0),
            (999.0, 10.0, 250.0),
        ] {
            let p = XY::new(px, py);
            let mut expected: Vec<SegmentId> = net
                .segments()
                .iter()
                .filter(|s| s.geometry.project(&p).dist <= r)
                .map(|s| s.id)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<SegmentId> = tree
                .within_radius(&net, &p, r)
                .into_iter()
                .map(|h| h.seg)
                .collect();
            got.sort_unstable();
            assert_eq!(got, expected, "query at ({px},{py}) r={r}");
        }
    }

    #[test]
    fn within_radius_sorted_by_distance() {
        let net = lattice();
        let tree = RTree::build(&net);
        let hits = tree.within_radius(&net, &XY::new(250.0, 260.0), 200.0);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].projection.dist <= w[1].projection.dist);
        }
    }

    #[test]
    fn nearest_agrees_with_brute_force() {
        let net = lattice();
        let tree = RTree::build(&net);
        for (px, py) in [(13.0, 48.0), (520.0, 333.0), (-50.0, -50.0)] {
            let p = XY::new(px, py);
            let brute = net
                .segments()
                .iter()
                .min_by(|a, b| {
                    a.geometry
                        .project(&p)
                        .dist
                        .total_cmp(&b.geometry.project(&p).dist)
                })
                .unwrap()
                .id;
            let got = tree.nearest(&net, &p).unwrap();
            let brute_d = net.segment(brute).geometry.project(&p).dist;
            assert!(
                (got.projection.dist - brute_d).abs() < 1e-9,
                "point ({px},{py}): got {} at {}, brute {} at {}",
                got.seg,
                got.projection.dist,
                brute,
                brute_d
            );
        }
    }

    #[test]
    fn k_nearest_returns_k_sorted() {
        let net = lattice();
        let tree = RTree::build(&net);
        let hits = tree.k_nearest(&net, &XY::new(450.0, 450.0), 5);
        assert_eq!(hits.len(), 5);
        for w in hits.windows(2) {
            assert!(w[0].projection.dist <= w[1].projection.dist);
        }
    }

    #[test]
    fn k_nearest_with_k_larger_than_n() {
        let mut b = RoadNetworkBuilder::new();
        b.add_segment(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(1.0, 0.0)),
            RoadLevel::Primary,
        );
        let net = b.build();
        let tree = RTree::build(&net);
        assert_eq!(tree.k_nearest(&net, &XY::new(0.0, 0.0), 10).len(), 1);
    }

    #[test]
    fn empty_radius_returns_nothing() {
        let net = lattice();
        let tree = RTree::build(&net);
        assert!(tree
            .within_radius(&net, &XY::new(5000.0, 5000.0), 10.0)
            .is_empty());
    }

    #[test]
    fn tree_has_multiple_levels_for_large_input() {
        let net = lattice();
        let tree = RTree::build(&net);
        // 100 entries / leaf cap 8 => at least 13 leaves + inner nodes.
        assert!(tree.num_nodes() > 13);
    }
}
