//! Positions on the road network: `(segment, moving ratio)` pairs.

use crate::{RoadNetwork, SegmentId};
use rntrajrec_geo::XY;

/// A map-matched location: road segment plus moving ratio `r ∈ [0, 1)`
/// (Definition 2: "moving distance of `p_j` over the total length of `e_j`").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadPosition {
    pub seg: SegmentId,
    pub frac: f64,
}

impl RoadPosition {
    pub fn new(seg: SegmentId, frac: f64) -> Self {
        Self {
            seg,
            frac: frac.clamp(0.0, 1.0),
        }
    }

    /// Planar coordinates of this position.
    pub fn xy(&self, net: &RoadNetwork) -> XY {
        net.segment(self.seg).geometry.point_at_fraction(self.frac)
    }

    /// Metres from the start of the segment.
    pub fn offset_m(&self, net: &RoadNetwork) -> f64 {
        self.frac * net.segment(self.seg).length()
    }

    /// Metres remaining to the end of the segment.
    pub fn remaining_m(&self, net: &RoadNetwork) -> f64 {
        (1.0 - self.frac) * net.segment(self.seg).length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoadLevel, RoadNetworkBuilder};
    use rntrajrec_geo::Polyline;

    fn net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        b.add_segment(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(200.0, 0.0)),
            RoadLevel::Primary,
        );
        b.build()
    }

    #[test]
    fn xy_at_fraction() {
        let net = net();
        let p = RoadPosition::new(SegmentId(0), 0.25);
        assert_eq!(p.xy(&net), XY::new(50.0, 0.0));
        assert_eq!(p.offset_m(&net), 50.0);
        assert_eq!(p.remaining_m(&net), 150.0);
    }

    #[test]
    fn frac_is_clamped() {
        assert_eq!(RoadPosition::new(SegmentId(0), -0.5).frac, 0.0);
        assert_eq!(RoadPosition::new(SegmentId(0), 1.5).frac, 1.0);
    }
}
