//! Synthetic city generator.
//!
//! Stands in for the proprietary Shanghai / Chengdu / Porto road networks
//! (Table II). The generator produces the structural features the paper's
//! evaluation depends on:
//!
//! * a Manhattan-style block grid with variable block sizes (so segment
//!   lengths vary like real城市 street networks do),
//! * arterial rows/columns with higher road levels,
//! * optional alternating one-way streets (strong connectivity preserved by
//!   keeping boundary roads and arterials two-way),
//! * an optional **elevated expressway**: a limited-access road running a
//!   few metres beside/above the central trunk road, connected only via
//!   ramps every few blocks. Elevated segments geometrically overlap the
//!   trunk road within GPS noise but are topologically distant — exactly
//!   the hard case of the paper's robustness study (Fig. 4/5), where a
//!   wrong segment choice implies a > 2 km route error.
//! * an optional diagonal avenue producing complex multi-way intersections
//!   (the `I_1` motivation of Fig. 1(b)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{RoadLevel, RoadNetwork, RoadNetworkBuilder, SegmentId};
use rntrajrec_geo::{Polyline, XY};

/// Configuration for [`SyntheticCity::generate`].
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Number of blocks east-west.
    pub blocks_x: usize,
    /// Number of blocks north-south.
    pub blocks_y: usize,
    /// Minimum block edge length (m).
    pub block_min_m: f64,
    /// Maximum block edge length (m).
    pub block_max_m: f64,
    /// Probability that an interior street is one-way (alternating
    /// direction by row/column index).
    pub one_way_fraction: f64,
    /// Every k-th row/column is an arterial (Primary level, always two-way).
    pub arterial_every: usize,
    /// Add the elevated expressway along the central row.
    pub with_elevated: bool,
    /// Lateral offset of the elevated carriageway from the trunk road (m).
    /// Kept below GPS noise so the two are ambiguous from raw points.
    pub elevated_offset_m: f64,
    /// Ramp spacing, in blocks.
    pub ramp_every: usize,
    /// Add a diagonal avenue across the grid.
    pub diagonal: bool,
    /// RNG seed (block sizes, one-way choices, minor level mixing).
    pub seed: u64,
    /// Planar offset of the city's south-west corner (m). Defaults to the
    /// frame origin; give distinct cities distinct origins so their
    /// bounding boxes are disjoint (shard routing resolves requests by
    /// bbox, so two cities must not overlap in the shared planar frame).
    pub origin_x: f64,
    /// See [`CityConfig::origin_x`].
    pub origin_y: f64,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            blocks_x: 8,
            blocks_y: 8,
            block_min_m: 120.0,
            block_max_m: 260.0,
            one_way_fraction: 0.25,
            arterial_every: 4,
            with_elevated: true,
            elevated_offset_m: 8.0,
            ramp_every: 3,
            diagonal: true,
            seed: 7,
            origin_x: 0.0,
            origin_y: 0.0,
        }
    }
}

impl CityConfig {
    /// A small city for unit tests (fast to build and route on).
    pub fn tiny() -> Self {
        Self {
            blocks_x: 4,
            blocks_y: 4,
            with_elevated: true,
            ramp_every: 2,
            ..Self::default()
        }
    }
}

/// A generated road network plus metadata about the special structures.
#[derive(Debug)]
pub struct SyntheticCity {
    pub net: RoadNetwork,
    /// Segments of the elevated expressway (level [`RoadLevel::Elevated`]).
    pub elevated: Vec<SegmentId>,
    /// Ground trunk segments running beneath the elevated road.
    pub trunk_under_elevated: Vec<SegmentId>,
    pub config: CityConfig,
}

impl SyntheticCity {
    pub fn generate(config: CityConfig) -> Self {
        assert!(
            config.blocks_x >= 2 && config.blocks_y >= 2,
            "city too small"
        );
        assert!(config.block_min_m > 0.0 && config.block_max_m >= config.block_min_m);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Variable-pitch grid lines, translated to the city's origin
        // (adding 0.0 is exact, so the default origin changes nothing).
        let xs: Vec<f64> = cumulative(
            &mut rng,
            config.blocks_x + 1,
            config.block_min_m,
            config.block_max_m,
        )
        .into_iter()
        .map(|x| x + config.origin_x)
        .collect();
        let ys: Vec<f64> = cumulative(
            &mut rng,
            config.blocks_y + 1,
            config.block_min_m,
            config.block_max_m,
        )
        .into_iter()
        .map(|y| y + config.origin_y)
        .collect();

        let mut b = RoadNetworkBuilder::new();
        let elevated_row = config.blocks_y / 2;
        let mut elevated = Vec::new();
        let mut trunk_under = Vec::new();

        let is_arterial_row =
            |r: usize| r.is_multiple_of(config.arterial_every.max(1)) || r == config.blocks_y;
        let is_arterial_col =
            |c: usize| c.is_multiple_of(config.arterial_every.max(1)) || c == config.blocks_x;

        // Horizontal streets.
        for (r, &y) in ys.iter().enumerate() {
            let trunk_row = config.with_elevated && r == elevated_row;
            let level = if trunk_row {
                RoadLevel::Trunk
            } else if is_arterial_row(r) {
                RoadLevel::Primary
            } else if rng.gen_bool(0.5) {
                RoadLevel::Tertiary
            } else {
                RoadLevel::Residential
            };
            let boundary = r == 0 || r == config.blocks_y;
            let one_way = !boundary
                && !trunk_row
                && level == RoadLevel::Residential
                && rng.gen_bool(config.one_way_fraction);
            for c in 0..config.blocks_x {
                let geom = Polyline::segment(XY::new(xs[c], y), XY::new(xs[c + 1], y));
                if one_way {
                    // Alternate direction by row for connectivity.
                    let geom = if r % 2 == 0 { geom } else { geom.reversed() };
                    b.add_segment(geom, level);
                } else {
                    let (f, bk) = b.add_two_way(geom, level);
                    if trunk_row {
                        trunk_under.push(f);
                        trunk_under.push(bk);
                    }
                }
            }
        }

        // Vertical streets.
        for (c, &x) in xs.iter().enumerate() {
            let level = if is_arterial_col(c) {
                RoadLevel::Secondary
            } else if rng.gen_bool(0.5) {
                RoadLevel::Tertiary
            } else {
                RoadLevel::Residential
            };
            let boundary = c == 0 || c == config.blocks_x;
            let one_way = !boundary
                && level == RoadLevel::Residential
                && rng.gen_bool(config.one_way_fraction);
            for r in 0..config.blocks_y {
                let geom = Polyline::segment(XY::new(x, ys[r]), XY::new(x, ys[r + 1]));
                if one_way {
                    let geom = if c % 2 == 0 { geom } else { geom.reversed() };
                    b.add_segment(geom, level);
                } else {
                    b.add_two_way(geom, level);
                }
            }
        }

        // Diagonal avenue along the main diagonal.
        if config.diagonal {
            let n = config.blocks_x.min(config.blocks_y);
            for i in 0..n {
                let geom = Polyline::segment(XY::new(xs[i], ys[i]), XY::new(xs[i + 1], ys[i + 1]));
                b.add_two_way(geom, RoadLevel::Secondary);
            }
        }

        // Elevated expressway + ramps.
        if config.with_elevated {
            let y_e = ys[elevated_row] + config.elevated_offset_m;
            let step = config.ramp_every.max(1);
            // Ramp columns: 0, step, 2·step, …, last.
            let mut cols: Vec<usize> = (0..=config.blocks_x).step_by(step).collect();
            if *cols.last().unwrap() != config.blocks_x {
                cols.push(config.blocks_x);
            }
            // Elevated carriageway between consecutive ramp columns (two-way).
            for w in cols.windows(2) {
                let geom = Polyline::segment(XY::new(xs[w[0]], y_e), XY::new(xs[w[1]], y_e));
                let (f, bk) = b.add_two_way(geom, RoadLevel::Elevated);
                elevated.push(f);
                elevated.push(bk);
            }
            // Ramps between each elevated node and the trunk intersection.
            for &c in &cols {
                let up = Polyline::segment(XY::new(xs[c], ys[elevated_row]), XY::new(xs[c], y_e));
                b.add_two_way(up, RoadLevel::Ramp);
            }
        }

        SyntheticCity {
            net: b.build(),
            elevated,
            trunk_under_elevated: trunk_under,
            config,
        }
    }
}

fn cumulative(rng: &mut StdRng, n: usize, min: f64, max: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut acc = 0.0;
    out.push(acc);
    for _ in 1..n {
        acc += rng.gen_range(min..=max);
        out.push(acc);
    }
    out
}

/// True iff every segment can reach (and be reached from) segment 0.
///
/// Used to validate generated cities: the trajectory simulator requires a
/// strongly connected graph so all origin/destination pairs are routable.
pub fn is_strongly_connected(net: &RoadNetwork) -> bool {
    if net.num_segments() == 0 {
        return true;
    }
    let forward = reachable(net, |s| net.out_edges(s));
    let backward = reachable(net, |s| net.in_edges(s));
    forward.iter().all(|&r| r) && backward.iter().all(|&r| r)
}

fn reachable<'a, F: Fn(SegmentId) -> &'a [SegmentId]>(net: &RoadNetwork, next: F) -> Vec<bool> {
    let mut seen = vec![false; net.num_segments()];
    let mut stack = vec![SegmentId(0)];
    seen[0] = true;
    while let Some(u) = stack.pop() {
        for &v in next(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_city_builds_and_is_strongly_connected() {
        let city = SyntheticCity::generate(CityConfig::tiny());
        assert!(city.net.num_segments() > 50);
        assert!(city.net.num_edges() > city.net.num_segments());
        assert!(
            is_strongly_connected(&city.net),
            "tiny city must be strongly connected"
        );
    }

    #[test]
    fn default_city_is_strongly_connected_across_seeds() {
        for seed in [1, 2, 3] {
            let city = SyntheticCity::generate(CityConfig {
                seed,
                ..CityConfig::default()
            });
            assert!(is_strongly_connected(&city.net), "seed {seed}");
        }
    }

    #[test]
    fn elevated_road_present_and_marked() {
        let city = SyntheticCity::generate(CityConfig::tiny());
        assert!(!city.elevated.is_empty());
        assert!(!city.trunk_under_elevated.is_empty());
        for &e in &city.elevated {
            assert_eq!(city.net.segment(e).level, RoadLevel::Elevated);
        }
        for &t in &city.trunk_under_elevated {
            assert_eq!(city.net.segment(t).level, RoadLevel::Trunk);
        }
    }

    #[test]
    fn elevated_overlaps_trunk_within_gps_noise() {
        let city = SyntheticCity::generate(CityConfig::tiny());
        // Midpoint of an elevated segment must be within ~10 m of some trunk
        // segment (the ambiguity that makes recovery hard).
        let e = city.net.segment(city.elevated[0]);
        let mid = e.geometry.point_at_fraction(0.5);
        let closest_trunk = city
            .trunk_under_elevated
            .iter()
            .map(|&t| city.net.segment(t).geometry.project(&mid).dist)
            .fold(f64::INFINITY, f64::min);
        assert!(
            closest_trunk <= city.config.elevated_offset_m + 1.0,
            "got {closest_trunk}"
        );
    }

    #[test]
    fn elevated_topologically_distant_from_trunk() {
        // Driving from mid-elevated to the trunk below requires reaching a
        // ramp: the route distance must far exceed the ~8 m planar gap.
        let city = SyntheticCity::generate(CityConfig::tiny());
        let mut nd = crate::NetworkDistance::new(&city.net);
        let e = city.elevated[0];
        // Find the trunk segment under e's midpoint.
        let mid = city.net.segment(e).geometry.point_at_fraction(0.5);
        let t = *city
            .trunk_under_elevated
            .iter()
            .min_by(|&&a, &&b| {
                city.net
                    .segment(a)
                    .geometry
                    .project(&mid)
                    .dist
                    .total_cmp(&city.net.segment(b).geometry.project(&mid).dist)
            })
            .unwrap();
        let a = crate::RoadPosition::new(e, 0.5);
        let b = crate::RoadPosition::new(t, 0.5);
        let d = nd.metric_m(&a, &b);
        assert!(
            d > 50.0,
            "network distance {d} should be much larger than the 8 m planar gap"
        );
    }

    #[test]
    fn no_elevated_when_disabled() {
        let city = SyntheticCity::generate(CityConfig {
            with_elevated: false,
            ..CityConfig::tiny()
        });
        assert!(city.elevated.is_empty());
        assert!(city
            .net
            .segments()
            .iter()
            .all(|s| s.level != RoadLevel::Elevated && s.level != RoadLevel::Ramp));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCity::generate(CityConfig::tiny());
        let b = SyntheticCity::generate(CityConfig::tiny());
        assert_eq!(a.net.num_segments(), b.net.num_segments());
        assert_eq!(a.net.num_edges(), b.net.num_edges());
        for (x, y) in a.net.segments().iter().zip(b.net.segments()) {
            assert_eq!(x.geometry.points(), y.geometry.points());
            assert_eq!(x.level, y.level);
        }
    }

    #[test]
    fn origin_translates_geometry_exactly() {
        let base = SyntheticCity::generate(CityConfig::tiny());
        let moved = SyntheticCity::generate(CityConfig {
            origin_x: 50_000.0,
            origin_y: -7_500.0,
            ..CityConfig::tiny()
        });
        assert_eq!(base.net.num_segments(), moved.net.num_segments());
        for (a, b) in base.net.segments().iter().zip(moved.net.segments()) {
            assert_eq!(a.level, b.level);
            for (p, q) in a.geometry.points().iter().zip(b.geometry.points()) {
                assert_eq!(p.x + 50_000.0, q.x);
                assert_eq!(p.y - 7_500.0, q.y);
            }
        }
        assert!(
            is_strongly_connected(&moved.net),
            "translation must not change topology"
        );
    }

    #[test]
    fn segment_lengths_vary() {
        let city = SyntheticCity::generate(CityConfig::default());
        let lens: Vec<f64> = city
            .net
            .segments()
            .iter()
            .filter(|s| s.level == RoadLevel::Residential)
            .map(|s| s.length())
            .collect();
        let min = lens.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lens.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min > 20.0,
            "expected variable block sizes, got range {min}..{max}"
        );
    }

    #[test]
    fn bigger_config_scales_segment_count() {
        let small = SyntheticCity::generate(CityConfig::tiny());
        let large = SyntheticCity::generate(CityConfig {
            blocks_x: 12,
            blocks_y: 12,
            ..CityConfig::default()
        });
        assert!(large.net.num_segments() > 2 * small.net.num_segments());
    }
}
