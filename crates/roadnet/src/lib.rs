//! Road-network substrate for the RNTrajRec reproduction.
//!
//! The paper (Definition 1) models a road network as a directed graph
//! `G = (V, E)` whose *nodes are road segments* and whose edges capture
//! segment-to-segment connectivity. This crate provides:
//!
//! * [`RoadNetwork`] — the directed segment graph with per-segment geometry
//!   ([`rntrajrec_geo::Polyline`]), road levels, and static features
//!   (`f_road_s`, Section IV-B: 8-dim level one-hot + length + in/out degree).
//! * [`RTree`] — an STR-bulk-loaded R-tree over segment geometry for the
//!   "road segments within at most δ meters" query of Section IV-C.
//! * [`shortest`] — Dijkstra shortest paths over the segment graph, routes,
//!   and the *road-network distance* used by the paper's MAE/RMSE metrics.
//! * [`SyntheticCity`] — a configurable city generator (Manhattan grid +
//!   diagonal arterials + an elevated expressway above a parallel trunk
//!   road) standing in for the proprietary Shanghai/Chengdu/Porto road
//!   networks; see DESIGN.md §2 for the substitution argument.

mod city;
mod graph;
mod position;
mod rtree;
pub mod shortest;

pub use city::{is_strongly_connected, CityConfig, SyntheticCity};
pub use graph::{
    RoadLevel, RoadNetwork, RoadNetworkBuilder, RoadSegment, SegmentId, NUM_ROAD_LEVELS,
};
pub use position::RoadPosition;
pub use rtree::{RTree, RadiusHit};
pub use shortest::{NetworkDistance, ShortestPaths};
