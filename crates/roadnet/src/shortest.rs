//! Dijkstra shortest paths over the segment graph and road-network distance.
//!
//! The paper's MAE/RMSE metrics use "road network distance ... between two
//! GPS points" (Section VI-A2); the HMM map matcher needs route lengths
//! between candidate segments; and the trajectory simulator samples
//! shortest-path routes. All three are served here.
//!
//! Distances are measured along driving direction: travelling from a
//! position `(a, r_a)` to `(b, r_b)` costs the remaining metres on `a`, plus
//! the lengths of all intermediate segments, plus `r_b · len(b)` on `b`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{RoadNetwork, RoadPosition, SegmentId};

const UNVISITED: f64 = f64::INFINITY;

/// Single-source shortest-path engine with reusable scratch buffers.
///
/// `dist[x]` is the distance in metres from the **end of the source
/// segment** to the **start of segment x** (so an immediate successor has
/// distance 0). Create one per thread and reuse it: buffers are cleared
/// lazily via a generation counter, making repeated queries allocation-free.
pub struct ShortestPaths {
    dist: Vec<f64>,
    prev: Vec<Option<SegmentId>>,
    gen: Vec<u32>,
    cur_gen: u32,
}

impl ShortestPaths {
    pub fn new(net: &RoadNetwork) -> Self {
        let n = net.num_segments();
        Self {
            dist: vec![UNVISITED; n],
            prev: vec![None; n],
            gen: vec![0; n],
            cur_gen: 0,
        }
    }

    fn reset(&mut self) {
        self.cur_gen = self.cur_gen.wrapping_add(1);
        if self.cur_gen == 0 {
            // Extremely rare wrap: do a full clear to stay correct.
            self.gen.iter_mut().for_each(|g| *g = 0);
            self.cur_gen = 1;
        }
    }

    fn get(&self, s: SegmentId) -> f64 {
        if self.gen[s.index()] == self.cur_gen {
            self.dist[s.index()]
        } else {
            UNVISITED
        }
    }

    fn set(&mut self, s: SegmentId, d: f64, p: Option<SegmentId>) {
        self.gen[s.index()] = self.cur_gen;
        self.dist[s.index()] = d;
        self.prev[s.index()] = p;
    }

    /// Run Dijkstra from `source` with metre costs. Stops early once
    /// `target` is settled (if given) or when distances exceed `max_m`
    /// (if finite).
    ///
    /// After the call, [`ShortestPaths::gap_m`] reads distances and
    /// [`ShortestPaths::route`] reconstructs segment paths.
    pub fn run(
        &mut self,
        net: &RoadNetwork,
        source: SegmentId,
        target: Option<SegmentId>,
        max_m: f64,
    ) {
        self.run_with(net, source, target, max_m, |s| net.segment(s).length());
    }

    /// Dijkstra with an arbitrary non-negative per-segment traversal cost
    /// (e.g. travel time `length / freeflow_speed`, used by the trajectory
    /// simulator to make the elevated expressway attractive on long trips).
    pub fn run_with(
        &mut self,
        net: &RoadNetwork,
        source: SegmentId,
        target: Option<SegmentId>,
        max_cost: f64,
        cost: impl Fn(SegmentId) -> f64,
    ) {
        self.reset();
        let mut heap: BinaryHeap<(Reverse<u64>, SegmentId)> = BinaryHeap::new();
        for &s in net.out_edges(source) {
            self.set(s, 0.0, Some(source));
            heap.push((Reverse(0), s));
        }
        while let Some((Reverse(bits), u)) = heap.pop() {
            let d = f64::from_bits(bits);
            if d > self.get(u) {
                continue; // stale entry
            }
            if Some(u) == target {
                return;
            }
            let next = d + cost(u);
            if next > max_cost {
                continue;
            }
            for &v in net.out_edges(u) {
                if next < self.get(v) {
                    self.set(v, next, Some(u));
                    heap.push((Reverse(next.to_bits()), v));
                }
            }
        }
    }

    /// Metres from the end of the source segment to the start of `s`
    /// (after [`ShortestPaths::run`]); `None` if unreachable.
    pub fn gap_m(&self, s: SegmentId) -> Option<f64> {
        let d = self.get(s);
        (d < UNVISITED).then_some(d)
    }

    /// Reconstruct the segment route source→`s`, inclusive of both ends.
    pub fn route(&self, source: SegmentId, s: SegmentId) -> Option<Vec<SegmentId>> {
        if self.get(s) == UNVISITED {
            return None;
        }
        let mut path = vec![s];
        let mut cur = s;
        while let Some(p) = self.prev[cur.index()] {
            if self.gen[cur.index()] != self.cur_gen {
                return None;
            }
            path.push(p);
            if p == source {
                path.reverse();
                return Some(path);
            }
            cur = p;
        }
        None
    }
}

/// Convenience wrapper computing road-network distances between positions.
///
/// The *metric* distance used for MAE/RMSE is the minimum of the two driving
/// directions (the paper's metric is an undirected error measure between a
/// predicted and a true point). Falls back to straight-line distance when
/// the graph offers no route (possible only on degenerate networks).
pub struct NetworkDistance<'a> {
    net: &'a RoadNetwork,
    sp: ShortestPaths,
    /// Distances are capped here; beyond the cap the straight-line fallback
    /// kicks in. Keeps metric queries fast on large networks.
    pub max_m: f64,
}

impl<'a> NetworkDistance<'a> {
    pub fn new(net: &'a RoadNetwork) -> Self {
        Self {
            net,
            sp: ShortestPaths::new(net),
            max_m: 20_000.0,
        }
    }

    /// Directed driving distance from `a` to `b`, in metres.
    pub fn directed_m(&mut self, a: &RoadPosition, b: &RoadPosition) -> Option<f64> {
        if a.seg == b.seg && b.frac >= a.frac {
            return Some((b.frac - a.frac) * self.net.segment(a.seg).length());
        }
        self.sp.run(self.net, a.seg, Some(b.seg), self.max_m);
        let gap = self.sp.gap_m(b.seg)?;
        Some(a.remaining_m(self.net) + gap + b.offset_m(self.net))
    }

    /// Undirected metric distance (min of both directions, straight-line
    /// fallback) — the `dist(p_i, p̂_i)` of the paper's MAE/RMSE.
    pub fn metric_m(&mut self, a: &RoadPosition, b: &RoadPosition) -> f64 {
        let ab = self.directed_m(a, b);
        let ba = self.directed_m(b, a);
        let network = match (ab, ba) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        };
        network.unwrap_or_else(|| a.xy(self.net).dist(&b.xy(self.net)))
    }

    /// Shortest segment route from `a` to `b` (inclusive); `None` when
    /// unreachable. Same-segment forward movement yields `[a]`… `[a]` only.
    pub fn route(&mut self, a: SegmentId, b: SegmentId) -> Option<Vec<SegmentId>> {
        if a == b {
            return Some(vec![a]);
        }
        self.sp.run(self.net, a, Some(b), self.max_m);
        self.sp.route(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoadLevel, RoadNetworkBuilder};
    use rntrajrec_geo::{Polyline, XY};

    /// A square ring of four 100 m one-way segments 0→1→2→3→0.
    fn ring() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let pts = [
            XY::new(0.0, 0.0),
            XY::new(100.0, 0.0),
            XY::new(100.0, 100.0),
            XY::new(0.0, 100.0),
        ];
        for i in 0..4 {
            b.add_segment(
                Polyline::segment(pts[i], pts[(i + 1) % 4]),
                RoadLevel::Primary,
            );
        }
        b.build()
    }

    #[test]
    fn ring_connectivity() {
        let net = ring();
        for i in 0..4u32 {
            assert_eq!(net.out_edges(SegmentId(i)), &[SegmentId((i + 1) % 4)]);
        }
    }

    #[test]
    fn gap_distances_around_ring() {
        let net = ring();
        let mut sp = ShortestPaths::new(&net);
        sp.run(&net, SegmentId(0), None, f64::INFINITY);
        assert_eq!(sp.gap_m(SegmentId(1)), Some(0.0));
        assert_eq!(sp.gap_m(SegmentId(2)), Some(100.0));
        assert_eq!(sp.gap_m(SegmentId(3)), Some(200.0));
        // Back to the source via the cycle: 1,2,3 traversed = 300 m.
        assert_eq!(sp.gap_m(SegmentId(0)), Some(300.0));
    }

    #[test]
    fn route_reconstruction() {
        let net = ring();
        let mut sp = ShortestPaths::new(&net);
        sp.run(&net, SegmentId(0), Some(SegmentId(2)), f64::INFINITY);
        assert_eq!(
            sp.route(SegmentId(0), SegmentId(2)),
            Some(vec![SegmentId(0), SegmentId(1), SegmentId(2)])
        );
    }

    #[test]
    fn directed_distance_same_segment() {
        let net = ring();
        let mut nd = NetworkDistance::new(&net);
        let a = RoadPosition::new(SegmentId(0), 0.2);
        let b = RoadPosition::new(SegmentId(0), 0.7);
        assert!((nd.directed_m(&a, &b).unwrap() - 50.0).abs() < 1e-9);
        // Backwards on a one-way ring means going all the way around:
        // 30 m remaining + gap(0,0)=300 + 20 m offset = 350.
        assert!((nd.directed_m(&b, &a).unwrap() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn directed_distance_across_segments() {
        let net = ring();
        let mut nd = NetworkDistance::new(&net);
        let a = RoadPosition::new(SegmentId(0), 0.5);
        let b = RoadPosition::new(SegmentId(1), 0.5);
        // 50 m remaining on 0, gap 0, 50 m into 1.
        assert_eq!(nd.directed_m(&a, &b), Some(100.0));
    }

    #[test]
    fn metric_takes_min_direction() {
        let net = ring();
        let mut nd = NetworkDistance::new(&net);
        let a = RoadPosition::new(SegmentId(0), 0.2);
        let b = RoadPosition::new(SegmentId(0), 0.7);
        assert!((nd.metric_m(&a, &b) - 50.0).abs() < 1e-9);
        assert!((nd.metric_m(&b, &a) - 50.0).abs() < 1e-9); // symmetric
    }

    #[test]
    fn max_distance_cap_prunes() {
        let net = ring();
        let mut sp = ShortestPaths::new(&net);
        sp.run(&net, SegmentId(0), None, 150.0);
        assert_eq!(sp.gap_m(SegmentId(1)), Some(0.0));
        assert_eq!(sp.gap_m(SegmentId(2)), Some(100.0));
        // gap 200 exceeds the 150 m cap.
        assert_eq!(sp.gap_m(SegmentId(3)), None);
    }

    #[test]
    fn unreachable_fallback_is_straight_line() {
        // Two disconnected parallel segments.
        let mut b = RoadNetworkBuilder::new();
        b.add_segment(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(100.0, 0.0)),
            RoadLevel::Primary,
        );
        b.add_segment(
            Polyline::segment(XY::new(0.0, 50.0), XY::new(100.0, 50.0)),
            RoadLevel::Primary,
        );
        let net = b.build();
        let mut nd = NetworkDistance::new(&net);
        let a = RoadPosition::new(SegmentId(0), 0.5);
        let c = RoadPosition::new(SegmentId(1), 0.5);
        assert_eq!(nd.directed_m(&a, &c), None);
        assert_eq!(nd.metric_m(&a, &c), 50.0);
    }

    #[test]
    fn generation_reset_keeps_queries_independent() {
        let net = ring();
        let mut sp = ShortestPaths::new(&net);
        sp.run(&net, SegmentId(0), None, f64::INFINITY);
        let first = sp.gap_m(SegmentId(2));
        sp.run(&net, SegmentId(2), None, f64::INFINITY);
        // From 2: successor is 3 at gap 0; segment 1 is two hops away.
        assert_eq!(sp.gap_m(SegmentId(3)), Some(0.0));
        assert_eq!(sp.gap_m(SegmentId(1)), Some(100.0 + 100.0));
        // Re-run from 0 must reproduce the first answer.
        sp.run(&net, SegmentId(0), None, f64::INFINITY);
        assert_eq!(sp.gap_m(SegmentId(2)), first);
    }

    #[test]
    fn route_same_segment() {
        let net = ring();
        let mut nd = NetworkDistance::new(&net);
        assert_eq!(
            nd.route(SegmentId(1), SegmentId(1)),
            Some(vec![SegmentId(1)])
        );
    }
}
