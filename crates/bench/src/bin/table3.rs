//! Table III: the main comparison — nine methods × four dataset/interval
//! combinations (Chengdu ×8, Chengdu ×16, Porto ×8, Shanghai-L ×16).
//!
//! ```bash
//! SCALE=medium cargo run --release -p rntrajrec-bench --bin table3
//! ```

use rntrajrec::experiments::run_comparison;
use rntrajrec::model::MethodSpec;
use rntrajrec_bench::{banner, dump_json, print_table, scale_from_env};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = scale_from_env();
    banner(
        "Table III — performance comparison on trajectory recovery",
        &scale,
    );
    let methods = MethodSpec::table3();
    let configs = vec![
        (
            "Chengdu (eps_tau = eps_rho * 8)",
            DatasetConfig::chengdu(8, scale.num_traj),
        ),
        (
            "Chengdu (eps_tau = eps_rho * 16)",
            DatasetConfig::chengdu(16, scale.num_traj),
        ),
        (
            "Porto (eps_tau = eps_rho * 8)",
            DatasetConfig::porto(8, scale.num_traj),
        ),
        (
            "Shanghai-L (eps_tau = eps_rho * 16)",
            DatasetConfig::shanghai_l(16, scale.num_traj),
        ),
    ];
    let mut all = Vec::new();
    for (title, config) in configs {
        let (_pipeline, results) = run_comparison(config, &methods, &scale);
        print_table(title, &results);
        all.push((title.to_string(), results));
    }
    let json: Vec<_> = all
        .iter()
        .map(|(t, rs)| serde_json::json!({ "dataset": t, "rows": rs }))
        .collect();
    dump_json("table3", &json);
}
