//! Fig. 4: elevated-road robustness — SR%k curves (share of trajectories
//! whose elevated-corridor sub-trajectory F1 exceeds k) for all methods on
//! Chengdu ×8.
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin fig4
//! ```

use rntrajrec::experiments::Pipeline;
use rntrajrec::model::MethodSpec;
use rntrajrec_bench::{banner, dump_json, scale_from_env};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = scale_from_env();
    banner("Fig. 4 — elevated-road recovery (SR%k)", &scale);
    // Bias departures onto the corridor so the test split has enough hard
    // cases (the paper selects elevated trajectories from real data).
    let mut cfg = DatasetConfig::chengdu(8, scale.num_traj);
    cfg.corridor_fraction = 0.5;
    let pipeline = Pipeline::prepare(cfg, &scale);

    let ks = [0.5, 0.6, 0.7, 0.8, 0.9];
    let methods = MethodSpec::table3();
    println!(
        "{:<24} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "method", "SR%50", "SR%60", "SR%70", "SR%80", "SR%90"
    );
    let mut json = Vec::new();
    for m in &methods {
        let r = pipeline.train_and_eval(m, &scale);
        let curve = pipeline.sr_curve(&r, &ks);
        print!("{:<24}", r.label);
        for (_, sr) in &curve {
            print!(" {:>7.3}", sr);
        }
        println!();
        json.push(serde_json::json!({ "method": r.label, "curve": curve }));
    }
    dump_json("fig4", &json);
}
