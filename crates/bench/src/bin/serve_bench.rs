//! Serving throughput benchmark: requests/sec and p50/p99 latency of the
//! micro-batching engine across batch-size and worker-count settings, plus
//! the per-trajectory latency of tape-free inference versus the tape-based
//! `EndToEnd::predict`. Writes `results/BENCH_serve.json`.
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin serve_bench          # full
//! SCALE=quick cargo run --release -p rntrajrec-bench --bin serve_bench
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec_bench::dump_json;
use rntrajrec_models::{FeatureExtractor, SampleInput};
use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
use rntrajrec_serve::{EngineConfig, RecoveryEngine, ServingModel};
use rntrajrec_synth::{SimConfig, Simulator};

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let quick = matches!(std::env::var("SCALE").as_deref(), Ok("quick"));
    let (latency_reps, sweep_requests) = if quick { (4, 48) } else { (16, 240) };

    // Weights are untrained: latency is weight-independent (same note as
    // the Fig. 6 inference benchmark).
    let city = SyntheticCity::generate(CityConfig::tiny());
    let rtree = RTree::build(&city.net);
    let grid = city.net.grid(50.0);
    let fx = FeatureExtractor::new(&city.net, &rtree, grid);
    let mut sim = Simulator::new(&city.net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let inputs: Vec<SampleInput> = (0..24)
        .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
        .collect();

    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);

    println!("=== rntrajrec-serve throughput benchmark ===");
    println!(
        "city: {} segments; {} request templates; SCALE={}",
        city.net.num_segments(),
        inputs.len(),
        if quick { "quick" } else { "full" }
    );

    // --- 1. Per-trajectory latency: tape vs. tape-free -------------------
    let mut rng_pred = StdRng::seed_from_u64(11);
    let t = Instant::now();
    for _ in 0..latency_reps {
        for input in &inputs {
            std::hint::black_box(model.predict(input, &mut rng_pred));
        }
    }
    let tape_ms = t.elapsed().as_secs_f64() * 1000.0 / (latency_reps * inputs.len()) as f64;

    let t = Instant::now();
    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec serves"));
    let precompute_ms = t.elapsed().as_secs_f64() * 1000.0;

    let t = Instant::now();
    for _ in 0..latency_reps {
        for input in &inputs {
            std::hint::black_box(serving.recover(input));
        }
    }
    let tapefree_ms = t.elapsed().as_secs_f64() * 1000.0 / (latency_reps * inputs.len()) as f64;

    let speedup = tape_ms / tapefree_ms;
    println!("\n--- per-trajectory latency ---");
    println!("tape-based EndToEnd::predict : {tape_ms:9.3} ms");
    println!("tape-free ServingModel::recover: {tapefree_ms:7.3} ms  (x{speedup:.1} faster)");
    println!("one-time X_road precompute   : {precompute_ms:9.3} ms");

    // --- 2. Engine throughput sweep --------------------------------------
    println!("\n--- engine sweep ({sweep_requests} closed-loop requests, 8 clients) ---");
    println!(
        "{:>8} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "workers", "batch", "req/s", "p50 (ms)", "p99 (ms)", "mean batch"
    );
    let mut sweep = Vec::new();
    for &workers in &[1usize, 2, 4] {
        for &max_batch in &[1usize, 4, 8, 16] {
            let engine = RecoveryEngine::start(
                Arc::clone(&serving),
                EngineConfig {
                    max_batch,
                    max_delay: Duration::from_millis(2),
                    workers,
                },
            );
            let clients = 8usize;
            let per_client = sweep_requests / clients;
            let t = Instant::now();
            let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * per_client);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let engine = &engine;
                        let inputs = &inputs;
                        s.spawn(move || {
                            let mut ms = Vec::with_capacity(per_client);
                            for k in 0..per_client {
                                let input = inputs[(c + k) % inputs.len()].clone();
                                let r = engine.recover(input);
                                ms.push(r.latency.as_secs_f64() * 1000.0);
                            }
                            ms
                        })
                    })
                    .collect();
                for h in handles {
                    latencies_ms.extend(h.join().expect("client thread"));
                }
            });
            let wall = t.elapsed().as_secs_f64();
            let rps = latencies_ms.len() as f64 / wall;
            latencies_ms.sort_by(|a, b| a.total_cmp(b));
            let p50 = percentile(&latencies_ms, 0.50);
            let p99 = percentile(&latencies_ms, 0.99);
            let stats = engine.stats();
            println!(
                "{workers:>8} {max_batch:>7} {rps:>10.1} {p50:>10.3} {p99:>10.3} {:>10.2}",
                stats.mean_batch
            );
            sweep.push(serde_json::json!({
                "workers": workers,
                "max_batch": max_batch,
                "requests": latencies_ms.len(),
                "requests_per_sec": rps,
                "p50_ms": p50,
                "p99_ms": p99,
                "mean_batch": stats.mean_batch,
                "flushed_full": stats.flushed_full,
                "flushed_deadline": stats.flushed_deadline,
            }));
        }
    }

    let json = serde_json::json!({
        "tape_predict_ms": tape_ms,
        "tapefree_recover_ms": tapefree_ms,
        "speedup": speedup,
        "road_precompute_ms": precompute_ms,
        "sweep": sweep,
    });
    dump_json("BENCH_serve", &json);

    if speedup <= 1.0 {
        eprintln!("WARNING: tape-free path slower than tape predict — investigate");
        std::process::exit(1);
    }
}
