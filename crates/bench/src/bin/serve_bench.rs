//! Serving throughput benchmark: requests/sec and p50/p99 latency of the
//! micro-batching engine across batch-size and worker-count settings, the
//! per-trajectory latency of tape-free inference versus the tape-based
//! `EndToEnd::predict`, a **city-scale intra-op thread sweep** (kernel
//! parallelism via `NN_THREADS` / `rntrajrec_nn::pool`), and the
//! matmul-invocation counts **before and after batched fusion** of both
//! halves of the model — the per-member sequential decode versus the
//! batched path that stacks same-step states into one matmul per head
//! (`city_scale.decoder_fusion`), and the per-member GPS-Former encoder
//! pass versus the stacked batched encoder with segment-scoped GraphNorm
//! (`city_scale.encoder_fusion`) — with batched ≡ sequential bit-identity
//! asserted for both — plus the **segment-head study**
//! (`city_scale.segment_head`): masked-column sparse head FLOPs versus the
//! dense head (bit-identical recovery asserted, ≥3× fewer head FLOPs gated
//! in `check_bench`), the scalar vs AVX2 kernel-backend wall and ULP
//! drift, and the int8-quantized head's end-to-end recovery drift — and
//! the **span-recorder overhead** on the traced batched path
//! (`city_scale.tracing`, gated ≤ 2% in `check_bench`) — and the
//! **open-loop bursty streaming load** (`open_loop_bursty`): seeded
//! compound-Poisson bursts against `POST /v2/recover/stream`, measuring
//! time-to-first-step under continuous batching versus the closed-batch
//! full-response latency (p99 TTFS < closed-batch p99 gated in
//! `check_bench`) — and the **two-shard isolation study** (`two_shard`):
//! concurrent traffic against a two-city [`ShardRouter`] while the beta
//! shard's model is hot-swapped twice from a packed artifact, gated on
//! zero failed/invalid responses and a loose cross-shard p99 ratio in
//! `check_bench`. Writes `results/BENCH_serve.json`.
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin serve_bench          # full
//! SCALE=quick cargo run --release -p rntrajrec-bench --bin serve_bench
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec::wire::{v2, RecoverRequest, RecoverResponse};
use rntrajrec_bench::dump_json;
use rntrajrec_models::{BatchMember, FeatureExtractor, SampleInput, SegmentHead};
use rntrajrec_nn::kernels::backend::{self, Backend};
use rntrajrec_nn::{infer, kernels, pool};
use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
use rntrajrec_serve::http::client;
use rntrajrec_serve::{
    CityShard, EngineConfig, HttpConfig, HttpServer, QueryContext, RecoveryEngine, ServingModel,
    ShardRouter,
};
use rntrajrec_synth::{SimConfig, Simulator, TrajSample};

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let quick = matches!(std::env::var("SCALE").as_deref(), Ok("quick"));
    let (latency_reps, sweep_requests) = if quick { (4, 48) } else { (16, 240) };

    // Weights are untrained: latency is weight-independent (same note as
    // the Fig. 6 inference benchmark).
    let city = SyntheticCity::generate(CityConfig::tiny());
    let rtree = RTree::build(&city.net);
    let grid = city.net.grid(50.0);
    let fx = FeatureExtractor::new(&city.net, &rtree, grid);
    let mut sim = Simulator::new(&city.net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let inputs: Vec<SampleInput> = (0..24)
        .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
        .collect();

    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);

    println!("=== rntrajrec-serve throughput benchmark ===");
    println!(
        "city: {} segments; {} request templates; SCALE={}",
        city.net.num_segments(),
        inputs.len(),
        if quick { "quick" } else { "full" }
    );

    // --- 1. Per-trajectory latency: tape vs. tape-free -------------------
    let mut rng_pred = StdRng::seed_from_u64(11);
    let t = Instant::now();
    for _ in 0..latency_reps {
        for input in &inputs {
            std::hint::black_box(model.predict(input, &mut rng_pred));
        }
    }
    let tape_ms = t.elapsed().as_secs_f64() * 1000.0 / (latency_reps * inputs.len()) as f64;

    let t = Instant::now();
    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec serves"));
    let precompute_ms = t.elapsed().as_secs_f64() * 1000.0;

    let t = Instant::now();
    for _ in 0..latency_reps {
        for input in &inputs {
            std::hint::black_box(serving.recover(input));
        }
    }
    let tapefree_ms = t.elapsed().as_secs_f64() * 1000.0 / (latency_reps * inputs.len()) as f64;

    let speedup = tape_ms / tapefree_ms;
    println!("\n--- per-trajectory latency ---");
    println!("tape-based EndToEnd::predict : {tape_ms:9.3} ms");
    println!("tape-free ServingModel::recover: {tapefree_ms:7.3} ms  (x{speedup:.1} faster)");
    println!("one-time X_road precompute   : {precompute_ms:9.3} ms");

    // --- 2. Engine throughput sweep --------------------------------------
    println!("\n--- engine sweep ({sweep_requests} closed-loop requests, 8 clients) ---");
    println!(
        "{:>8} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "workers", "batch", "req/s", "p50 (ms)", "p99 (ms)", "mean batch"
    );
    let mut sweep = Vec::new();
    for &workers in &[1usize, 2, 4] {
        for &max_batch in &[1usize, 4, 8, 16] {
            let engine = RecoveryEngine::start(
                Arc::clone(&serving),
                EngineConfig {
                    max_batch,
                    max_delay: Duration::from_millis(2),
                    workers,
                    // Pin kernels to one thread: this sweep isolates
                    // worker/batch scaling from intra-op parallelism.
                    threads_per_worker: 1,
                    queue_capacity: None,
                    ..EngineConfig::default()
                },
            );
            let clients = 8usize;
            let per_client = sweep_requests / clients;
            let t = Instant::now();
            let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * per_client);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let engine = &engine;
                        let inputs = &inputs;
                        s.spawn(move || {
                            let mut ms = Vec::with_capacity(per_client);
                            for k in 0..per_client {
                                let input = inputs[(c + k) % inputs.len()].clone();
                                let r = engine.recover(input);
                                ms.push(r.latency.as_secs_f64() * 1000.0);
                            }
                            ms
                        })
                    })
                    .collect();
                for h in handles {
                    latencies_ms.extend(h.join().expect("client thread"));
                }
            });
            let wall = t.elapsed().as_secs_f64();
            let rps = latencies_ms.len() as f64 / wall;
            latencies_ms.sort_by(|a, b| a.total_cmp(b));
            let p50 = percentile(&latencies_ms, 0.50);
            let p99 = percentile(&latencies_ms, 0.99);
            let stats = engine.stats();
            println!(
                "{workers:>8} {max_batch:>7} {rps:>10.1} {p50:>10.3} {p99:>10.3} {:>10.2}",
                stats.mean_batch
            );
            sweep.push(serde_json::json!({
                "workers": workers,
                "max_batch": max_batch,
                "threads_per_worker": 1,
                "requests": latencies_ms.len(),
                "requests_per_sec": rps,
                "p50_ms": p50,
                "p99_ms": p99,
                "mean_batch": stats.mean_batch,
                "flushed_full": stats.flushed_full,
                "flushed_deadline": stats.flushed_deadline,
            }));
        }
    }

    // --- 3. City-scale intra-op thread sweep ------------------------------
    // A larger road network and hidden size, where the per-request hot
    // path (decoder `[1,d]×[d,|V|]` logits, GAT aggregation, GridGNN
    // precompute) has enough work for kernel-level parallelism to pay.
    let (blocks, big_dim, city_reps) = if quick { (8, 32, 2) } else { (14, 64, 8) };
    let big_city = SyntheticCity::generate(CityConfig {
        blocks_x: blocks,
        blocks_y: blocks,
        ..CityConfig::default()
    });
    let big_rtree = RTree::build(&big_city.net);
    let big_grid = big_city.net.grid(50.0);
    let big_fx = FeatureExtractor::new(&big_city.net, &big_rtree, big_grid);
    let mut big_sim = Simulator::new(&big_city.net, SimConfig::default());
    let mut big_rng = StdRng::seed_from_u64(17);
    let big_inputs: Vec<SampleInput> = (0..12)
        .map(|_| big_fx.extract(&big_sim.sample(&mut big_rng, 8)))
        .collect();
    let big_model = EndToEnd::build(&MethodSpec::RnTrajRec, &big_city.net, &big_grid, big_dim, 7);

    // 3a. Decoder-step matmul invocations per request (fusion baseline:
    // the per-member sequential decode).
    let road = big_model.precompute_road().expect("RNTrajRec precomputes");
    let encs: Vec<_> = big_inputs
        .iter()
        .map(|input| {
            big_model
                .encoder
                .infer_one(&big_model.store, input, Some(&road))
                .expect("infer path")
        })
        .collect();
    let decode_seq = || -> Vec<Vec<(usize, f32)>> {
        encs.iter()
            .zip(&big_inputs)
            .map(|(enc, input)| {
                big_model
                    .decoder
                    .infer_run(&big_model.store, &enc.per_point, &enc.traj, input)
            })
            .collect()
    };
    let members: Vec<BatchMember> = encs
        .iter()
        .zip(&big_inputs)
        .map(|(enc, sample)| BatchMember {
            per_point: &enc.per_point,
            traj: &enc.traj,
            sample,
        })
        .collect();

    let prof = kernels::profile_scope("decoder_sequential");
    let sequential = decode_seq();
    let seq_matmuls = prof.finish().matmuls;
    let decoder_steps: usize = big_inputs.iter().map(|i| i.target_len()).sum();
    // Lock-step depth of the fused decode: the longest member.
    let batch_steps = big_inputs.iter().map(|i| i.target_len()).max().unwrap_or(0);
    let matmuls_per_request = seq_matmuls as f64 / big_inputs.len() as f64;
    let steps_per_request = decoder_steps as f64 / big_inputs.len() as f64;
    let matmuls_per_step = seq_matmuls as f64 / decoder_steps.max(1) as f64;

    // 3b. Fused batched decode: one stacked matmul per head per step for
    // the whole micro-batch, bit-identical to the sequential loop.
    let prof = kernels::profile_scope("decoder_batched");
    let batched = big_model
        .decoder
        .recover_batch_infer(&big_model.store, &members);
    let fused_matmuls = prof.finish().matmuls;
    assert_eq!(
        batched, sequential,
        "fused batched decode diverged from sequential recovery"
    );
    let seq_per_batch_step = seq_matmuls as f64 / batch_steps.max(1) as f64;
    let fused_per_batch_step = fused_matmuls as f64 / batch_steps.max(1) as f64;
    assert!(
        fused_per_batch_step <= 12.0,
        "fused decode should run ~one matmul per head per step, got {fused_per_batch_step:.1}"
    );

    let fusion_reps = if quick { 3 } else { 10 };
    let t = Instant::now();
    for _ in 0..fusion_reps {
        std::hint::black_box(decode_seq());
    }
    let seq_decode_ms =
        t.elapsed().as_secs_f64() * 1000.0 / (fusion_reps * big_inputs.len()) as f64;
    let t = Instant::now();
    for _ in 0..fusion_reps {
        std::hint::black_box(
            big_model
                .decoder
                .recover_batch_infer(&big_model.store, &members),
        );
    }
    let fused_decode_ms =
        t.elapsed().as_secs_f64() * 1000.0 / (fusion_reps * big_inputs.len()) as f64;
    let fusion_speedup = seq_decode_ms / fused_decode_ms;

    // 3c. Encoder fusion: the per-member GPS-Former pass versus one fused
    // batched pass (`TrajEncoder::infer_batch`) — every Linear/attention
    // projection one stacked matmul for the whole batch, GraphNorm
    // statistics scoped per member so results stay bit-identical.
    let big_refs: Vec<&SampleInput> = big_inputs.iter().collect();
    let encode_seq = || -> Vec<_> {
        big_refs
            .iter()
            .map(|input| {
                big_model
                    .encoder
                    .infer_one(&big_model.store, input, Some(&road))
                    .expect("infer path")
            })
            .collect()
    };
    let prof = kernels::profile_scope("encoder_sequential");
    let enc_sequential = encode_seq();
    let enc_seq_matmuls = prof.finish().matmuls;
    let prof = kernels::profile_scope("encoder_batched");
    let enc_batched = big_model
        .encoder
        .infer_batch(&big_model.store, &big_refs, Some(&road))
        .expect("infer path");
    let enc_fused_matmuls = prof.finish().matmuls;
    for (i, (got, want)) in enc_batched.iter().zip(&enc_sequential).enumerate() {
        assert_eq!(
            got.per_point.data, want.per_point.data,
            "fused batched encoder diverged from per-member encoding (member {i})"
        );
        assert_eq!(got.traj.data, want.traj.data, "traj diverged (member {i})");
    }
    let enc_matmul_ratio = enc_seq_matmuls as f64 / enc_fused_matmuls.max(1) as f64;
    assert!(
        enc_matmul_ratio >= 4.0,
        "encoder fusion should collapse per-member/per-point projections into \
         stacked calls (got {enc_seq_matmuls} -> {enc_fused_matmuls})"
    );

    let t = Instant::now();
    for _ in 0..fusion_reps {
        std::hint::black_box(encode_seq());
    }
    let seq_encode_ms =
        t.elapsed().as_secs_f64() * 1000.0 / (fusion_reps * big_inputs.len()) as f64;
    let t = Instant::now();
    for _ in 0..fusion_reps {
        std::hint::black_box(
            big_model
                .encoder
                .infer_batch(&big_model.store, &big_refs, Some(&road))
                .expect("infer path"),
        );
    }
    let fused_encode_ms =
        t.elapsed().as_secs_f64() * 1000.0 / (fusion_reps * big_inputs.len()) as f64;
    let enc_speedup = seq_encode_ms / fused_encode_ms;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n--- city-scale intra-op thread sweep ({} segments, d={big_dim}, {cores} core(s)) ---",
        big_city.net.num_segments()
    );
    println!(
        "decoder fusion baseline: {matmuls_per_request:.1} matmuls/request over {steps_per_request:.1} steps ({matmuls_per_step:.1} matmuls/decoder step)"
    );
    println!(
        "decoder fusion (B={}): {seq_per_batch_step:.1} -> {fused_per_batch_step:.1} matmuls/decoder step; decode {seq_decode_ms:.3} -> {fused_decode_ms:.3} ms/request (x{fusion_speedup:.1})",
        big_inputs.len()
    );
    println!(
        "encoder fusion (B={}): {enc_seq_matmuls} -> {enc_fused_matmuls} matmuls/batch (x{enc_matmul_ratio:.1}); encode {seq_encode_ms:.3} -> {fused_encode_ms:.3} ms/request (x{enc_speedup:.1}, bit-identical asserted)",
        big_inputs.len()
    );

    // 3d. Segment head: masked-column sparse head vs the dense head, the
    // scalar/AVX2 kernel backends, and the int8-quantized head — all over
    // the same fused batched decode at city scale.
    //
    // FLOP attribution is exact: the two decodes share every non-head
    // kernel call bit-for-bit (outputs are asserted identical), so the
    // profiled FLOP difference is exactly the head FLOPs the sparse path
    // skips. The dense head is one `[B_t,d]x[d,|V|]` matmul per lock-step
    // step, `2·d·|V|` FLOPs per (member, step) in total.
    let n_segments = big_city.net.num_segments();
    let member_steps: u64 = big_inputs.iter().map(|i| i.target_len() as u64).sum();
    let prof = kernels::profile_scope("segment_head_dense");
    let dense_paths =
        big_model
            .decoder
            .recover_batch_infer_with(&big_model.store, &members, SegmentHead::Dense);
    let dense_prof = prof.finish();
    let prof = kernels::profile_scope("segment_head_sparse");
    let sparse_paths =
        big_model
            .decoder
            .recover_batch_infer_with(&big_model.store, &members, SegmentHead::Sparse);
    let sparse_prof = prof.finish();
    assert_eq!(
        dense_paths, sparse_paths,
        "sparse segment head changed recovery output"
    );
    let head_dense_flops = 2 * big_dim as u64 * n_segments as u64 * member_steps;
    assert!(
        dense_prof.flops >= sparse_prof.flops
            && dense_prof.flops - sparse_prof.flops <= head_dense_flops,
        "FLOP attribution inconsistent: dense decode {} vs sparse decode {} (head <= {head_dense_flops})",
        dense_prof.flops,
        sparse_prof.flops
    );
    let head_sparse_flops = head_dense_flops - (dense_prof.flops - sparse_prof.flops);
    let head_flop_reduction = head_dense_flops as f64 / head_sparse_flops.max(1) as f64;
    let skip_ratio = 1.0 - head_sparse_flops as f64 / head_dense_flops as f64;
    println!(
        "segment head (B={}, |V|={n_segments}): dense {head_dense_flops} -> sparse {head_sparse_flops} head FLOPs \
         over {member_steps} member-steps (x{head_flop_reduction:.1} fewer, {:.1}% of columns skipped, bit-identical recovery asserted)",
        big_inputs.len(),
        skip_ratio * 100.0
    );

    // Backend sweep over the sparse-head batched decode: wall per decode
    // and profiled FLOPs/step per backend (identical by construction —
    // backends change instruction selection, not the work counted).
    let avx2_supported = backend::is_supported(Backend::Avx2Fma);
    let decode_sparse = || {
        big_model
            .decoder
            .recover_batch_infer_with(&big_model.store, &members, SegmentHead::Sparse)
    };
    let time_backend = |bk: Backend| {
        backend::with_backend(bk, || {
            std::hint::black_box(decode_sparse()); // warm
            let prof = kernels::profile_scope("segment_head_backend");
            for _ in 0..fusion_reps {
                std::hint::black_box(decode_sparse());
            }
            let p = prof.finish();
            (
                p.wall.as_secs_f64() * 1000.0 / fusion_reps as f64,
                p.flops as f64 / fusion_reps as f64 / member_steps.max(1) as f64,
            )
        })
    };
    let (scalar_ms, scalar_flops_per_step) = time_backend(Backend::Scalar);
    let avx2 = avx2_supported.then(|| time_backend(Backend::Avx2Fma));

    // Cross-backend numeric drift on a representative city-scale matmul
    // (`[B,d]·[|V|,d]^T` scores against the road embedding): max ULP
    // distance, ignoring cancellation-dominated elements that agree
    // within 1e-4 absolute.
    let max_ulp = avx2_supported.then(|| {
        let trajs: Vec<&rntrajrec_nn::Tensor> = members.iter().map(|m| m.traj).collect();
        let h0 = infer::concat_rows(&trajs);
        let scores = |bk| backend::with_backend(bk, || infer::matmul_nt(&h0, &road));
        let want = scores(Backend::Scalar);
        let got = scores(Backend::Avx2Fma);
        let key = |x: f32| {
            let b = x.to_bits() as i32;
            if b < 0 {
                i64::from(i32::MIN) - i64::from(b)
            } else {
                i64::from(b)
            }
        };
        want.data
            .iter()
            .zip(&got.data)
            .filter(|(w, g)| (*w - *g).abs() > 1e-4)
            .map(|(&w, &g)| key(w).abs_diff(key(g)))
            .max()
            .unwrap_or(0)
    });
    match (avx2, max_ulp) {
        (Some((avx2_ms, _)), Some(ulp)) => println!(
            "segment head backends: scalar {scalar_ms:.3} ms/decode, avx2 {avx2_ms:.3} ms/decode \
             (x{:.2}); max cross-backend ULP {ulp} on [B,d]x[|V|,d]^T scores",
            scalar_ms / avx2_ms
        ),
        _ => println!(
            "segment head backends: scalar {scalar_ms:.3} ms/decode; AVX2+FMA not supported on \
             this host — backend comparison skipped"
        ),
    }

    // Int8 head: per-channel weight quantization, i32 accumulation,
    // dequantized epilogue. Drift is measured end-to-end on recovery
    // outputs against the f32 sparse head.
    let q = big_model.decoder.quantized_segment_head(&big_model.store);
    let prof = kernels::profile_scope("segment_head_quant");
    let quant_paths = big_model.decoder.recover_batch_infer_with(
        &big_model.store,
        &members,
        SegmentHead::Quantized(&q),
    );
    let quant_prof = prof.finish();
    let t = Instant::now();
    for _ in 0..fusion_reps {
        std::hint::black_box(big_model.decoder.recover_batch_infer_with(
            &big_model.store,
            &members,
            SegmentHead::Quantized(&q),
        ));
    }
    let quant_ms = t.elapsed().as_secs_f64() * 1000.0 / fusion_reps as f64;
    let total_positions: usize = sparse_paths.iter().map(Vec::len).sum();
    let mut seg_agree = 0usize;
    let mut max_rate_drift = 0.0f64;
    for (qp, fp) in quant_paths.iter().zip(&sparse_paths) {
        assert_eq!(qp.len(), fp.len(), "quantized head changed path length");
        for ((qs, qr), (fs, fr)) in qp.iter().zip(fp) {
            if qs == fs {
                seg_agree += 1;
            }
            max_rate_drift = max_rate_drift.max((f64::from(*qr) - f64::from(*fr)).abs());
        }
    }
    let segment_agreement = seg_agree as f64 / total_positions.max(1) as f64;
    println!(
        "segment head int8: {quant_ms:.3} ms/decode, segment agreement {:.1}% over {total_positions} \
         positions, max rate drift {max_rate_drift:.4}",
        segment_agreement * 100.0
    );

    let segment_head_backends = serde_json::json!({
        "active_default": backend::active_name(),
        "avx2_supported": avx2_supported,
        "scalar_decode_ms": scalar_ms,
        "scalar_flops_per_step": scalar_flops_per_step,
        "avx2_decode_ms": avx2.map(|(ms, _)| ms),
        "avx2_flops_per_step": avx2.map(|(_, f)| f),
        "scalar_vs_avx2_speedup": avx2.map(|(ms, _)| scalar_ms / ms),
        "max_ulp_vs_scalar": max_ulp,
    });
    let segment_head_quant = serde_json::json!({
        "decode_ms": quant_ms,
        "flops": quant_prof.flops,
        "segment_agreement": segment_agreement,
        "max_rate_drift": max_rate_drift,
        "positions": total_positions,
    });
    let segment_head = serde_json::json!({
        "batch": big_inputs.len(),
        "segments": n_segments,
        "member_steps": member_steps,
        "head_dense_flops": head_dense_flops,
        "head_sparse_flops": head_sparse_flops,
        "flop_reduction": head_flop_reduction,
        "masked_col_skip_ratio": skip_ratio,
        "flops_per_step_dense": head_dense_flops as f64 / member_steps.max(1) as f64,
        "flops_per_step_sparse": head_sparse_flops as f64 / member_steps.max(1) as f64,
        "bit_identical": true,
        "backends": segment_head_backends,
        "quant": segment_head_quant,
    });

    // 3b. Single-request recovery latency at 1/2/4 intra-op threads.
    let big_serving = Arc::new(ServingModel::new(big_model).expect("RNTrajRec serves"));
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "threads", "recover (ms)", "precompute(ms)", "speedup"
    );
    let mut intra_sweep = Vec::new();
    let mut base_ms = 0.0f64;
    let mut reference: Option<Vec<Vec<(usize, f32)>>> = None;
    for &threads in &[1usize, 2, 4] {
        pool::set_num_threads(threads);
        // Warm the pool (thread spawn, first-touch) outside the timing.
        let _ = big_serving.recover(&big_inputs[0]);
        let t = Instant::now();
        for _ in 0..city_reps {
            for input in &big_inputs {
                std::hint::black_box(big_serving.recover(input));
            }
        }
        let ms = t.elapsed().as_secs_f64() * 1000.0 / (city_reps * big_inputs.len()) as f64;
        let t = Instant::now();
        let xroad = big_serving.model().precompute_road().expect("precompute");
        let pre_ms = t.elapsed().as_secs_f64() * 1000.0;
        std::hint::black_box(xroad);
        if threads == 1 {
            base_ms = ms;
        }
        let thread_speedup = base_ms / ms;
        println!("{threads:>10} {ms:>14.3} {pre_ms:>14.3} {thread_speedup:>9.2}x");
        // Determinism spot-check: recoveries must be bit-identical to the
        // 1-thread reference.
        let outputs: Vec<Vec<(usize, f32)>> =
            big_inputs.iter().map(|i| big_serving.recover(i)).collect();
        match &reference {
            None => reference = Some(outputs),
            Some(want) => assert_eq!(want, &outputs, "thread count changed results"),
        }
        intra_sweep.push(serde_json::json!({
            "threads": threads,
            "recover_ms": ms,
            "road_precompute_ms": pre_ms,
            "speedup_vs_1_thread": thread_speedup,
        }));
    }
    pool::set_num_threads(1);
    if cores < 4 {
        println!(
            "(note: only {cores} core(s) visible — thread-scaling numbers are not meaningful here)"
        );
    }

    // --- 3c'. Tracing overhead on the batched city-scale path -----------
    // The observability acceptance bar: span recording enabled vs disabled
    // on the fused batched recovery. Trials alternate the two settings and
    // take the minimum of each (robust to scheduler noise on shared CI
    // hosts); the gate in `check_bench` is overhead ≤ 2%.
    // The gated number is the recorder's *marginal cost per batch*
    // relative to batch time: count the spans and kernel events one
    // traced batch records, microbenchmark the per-operation recorder
    // cost in tight loops (stable to a few percent of microseconds even
    // on a noisy runner), and divide by the batch wall time. A direct
    // enabled-vs-disabled A/B of ~20ms windows cannot resolve a 2% gate
    // on a shared 1-core runner — adjacent-window noise alone spans
    // several percent and preemption spikes reach +30% — so the A/B
    // numbers below are reported for context, not gated.
    let overhead_trials = if quick { 8 } else { 16 };
    let batch_refs: Vec<&SampleInput> = big_inputs.iter().collect();
    let _ = std::hint::black_box(big_serving.recover_batch(&batch_refs)); // warm

    // 1) Recorder operations per traced batch.
    rntrajrec_obs::clear();
    rntrajrec_obs::set_enabled(true);
    let prof = kernels::profile_scope("tracing_overhead_count");
    std::hint::black_box(big_serving.recover_batch(&batch_refs));
    let batch_kernels = prof.finish();
    rntrajrec_obs::set_enabled(false);
    let spans_per_batch = rntrajrec_obs::drain().len() as u64;
    let events_per_batch = batch_kernels.matmuls;

    // 2) Per-operation recorder cost (min of repeated tight loops; every
    // probe span is a root, so each close also pays a store flush —
    // an overestimate of the nested-span common case, which is fine on
    // the conservative side of a <2% gate).
    rntrajrec_obs::set_enabled(true);
    let probe_reps: u32 = 20_000;
    let span_ns = (0..3)
        .map(|_| {
            let t = Instant::now();
            for i in 0..probe_reps {
                let _ =
                    std::hint::black_box(rntrajrec_obs::span_indexed("tracing_overhead_probe", i));
            }
            rntrajrec_obs::clear();
            t.elapsed().as_nanos() as f64 / probe_reps as f64
        })
        .fold(f64::INFINITY, f64::min);
    let event_ns = (0..3)
        .map(|_| {
            let outer = rntrajrec_obs::span("tracing_overhead_probe_outer");
            let t = Instant::now();
            for _ in 0..probe_reps {
                rntrajrec_obs::kernel_event(1, 1024);
            }
            let ns = t.elapsed().as_nanos() as f64 / probe_reps as f64;
            drop(outer);
            rntrajrec_obs::clear();
            ns
        })
        .fold(f64::INFINITY, f64::min);
    rntrajrec_obs::set_enabled(false);

    // 3) Context: direct A/B windows (informational only, see above).
    let measure = |on: bool| {
        rntrajrec_obs::set_enabled(on);
        let t = Instant::now();
        std::hint::black_box(big_serving.recover_batch(&batch_refs));
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        rntrajrec_obs::set_enabled(false);
        if on {
            rntrajrec_obs::clear();
        }
        ms
    };
    let mut disabled_ms = Vec::with_capacity(overhead_trials);
    let mut enabled_ms = Vec::with_capacity(overhead_trials);
    for trial in 0..overhead_trials {
        if trial % 2 == 0 {
            disabled_ms.push(measure(false));
            enabled_ms.push(measure(true));
        } else {
            enabled_ms.push(measure(true));
            disabled_ms.push(measure(false));
        }
    }
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(|a, b| a.total_cmp(b));
        let n = xs.len();
        if n.is_multiple_of(2) {
            (xs[n / 2 - 1] + xs[n / 2]) / 2.0
        } else {
            xs[n / 2]
        }
    };
    let disabled_med = median(&mut disabled_ms);
    let enabled_med = median(&mut enabled_ms);

    let recorder_ns_per_batch =
        spans_per_batch as f64 * span_ns + events_per_batch as f64 * event_ns;
    let tracing_overhead_pct = recorder_ns_per_batch / (disabled_med * 1e6) * 100.0;
    println!(
        "tracing overhead (B={}): {spans_per_batch} spans x {span_ns:.0} ns + {events_per_batch} \
         kernel events x {event_ns:.0} ns = {:.1} us/batch over {disabled_med:.3} ms \
         ({tracing_overhead_pct:.3}%); A/B medians {disabled_med:.3} ms off / {enabled_med:.3} ms on",
        batch_refs.len(),
        recorder_ns_per_batch / 1000.0,
    );
    let tracing = serde_json::json!({
        "batch": batch_refs.len(),
        "spans_per_batch": spans_per_batch,
        "kernel_events_per_batch": events_per_batch,
        "span_ns": span_ns,
        "kernel_event_ns": event_ns,
        "recorder_us_per_batch": recorder_ns_per_batch / 1000.0,
        "disabled_ms": disabled_med,
        "enabled_ms": enabled_med,
        "overhead_pct": tracing_overhead_pct,
    });

    // --- 3c''. Chaos fault-point overhead, disarmed ----------------------
    // The resilience acceptance bar: every fault point costs one relaxed
    // atomic load when chaos is off, and that must stay invisible on the
    // hot path. Same estimator shape as the tracing gate above (a direct
    // A/B cannot resolve ≤2% on a shared runner): the hottest point is
    // `kernel.dispatch` — one evaluation per matmul — so the marginal
    // cost is matmuls/batch × the microbenchmarked disarmed-point cost,
    // over the batch wall time. Gated ≤ 2% absolute in `check_bench`.
    rntrajrec_chaos::disarm();
    let chaos_point_ns = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..probe_reps {
                std::hint::black_box(rntrajrec_chaos::point("kernel.dispatch")).ok();
            }
            t.elapsed().as_nanos() as f64 / probe_reps as f64
        })
        .fold(f64::INFINITY, f64::min);
    let chaos_ns_per_batch = events_per_batch as f64 * chaos_point_ns;
    let chaos_overhead_pct = chaos_ns_per_batch / (disabled_med * 1e6) * 100.0;
    println!(
        "chaos-off overhead (B={}): {events_per_batch} point evals x {chaos_point_ns:.2} ns = \
         {:.1} us/batch over {disabled_med:.3} ms ({chaos_overhead_pct:.3}%)",
        batch_refs.len(),
        chaos_ns_per_batch / 1000.0,
    );
    let chaos = serde_json::json!({
        "batch": batch_refs.len(),
        "point_evals_per_batch": events_per_batch,
        "point_ns": chaos_point_ns,
        "disarmed_us_per_batch": chaos_ns_per_batch / 1000.0,
        "overhead_pct": chaos_overhead_pct,
    });

    // --- 4. HTTP round-trip: network-layer overhead vs in-process --------
    // The same wire requests through (a) the in-process engine dispatch
    // and (b) a real TCP socket + HTTP parse + JSON round-trip, with
    // bit-identity asserted between the two. The spread is the cost of
    // the network front-end itself.
    let (http_reqs_n, http_reps) = if quick { (16, 1) } else { (64, 3) };
    let http_city = SyntheticCity::generate(CityConfig::tiny());
    let http_grid = http_city.net.grid(50.0);
    let http_model = EndToEnd::build(&MethodSpec::RnTrajRec, &http_city.net, &http_grid, 16, 7);
    let http_serving = Arc::new(ServingModel::new(http_model).expect("RNTrajRec serves"));
    let mut http_sim = Simulator::new(&http_city.net, SimConfig::default());
    let mut http_rng = StdRng::seed_from_u64(29);
    let samples: Vec<TrajSample> = (0..http_reqs_n)
        .map(|_| http_sim.sample(&mut http_rng, 8))
        .collect();
    let wire_reqs: Vec<String> = samples
        .iter()
        .map(|s| {
            let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
            serde_json::to_string(&req).expect("request serializes")
        })
        .collect();
    let ctx = Arc::new(QueryContext::new(http_city.net, 50.0));
    let http_engine = Arc::new(RecoveryEngine::start(
        Arc::clone(&http_serving),
        EngineConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            workers: 2,
            threads_per_worker: 1,
            queue_capacity: Some(256),
            ..EngineConfig::default()
        },
    ));
    let server = HttpServer::start(
        Arc::clone(&http_engine),
        Arc::clone(&ctx),
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            ..HttpConfig::default()
        },
        None,
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut inproc_ms: Vec<f64> = Vec::with_capacity(http_reps * http_reqs_n);
    let mut http_ms: Vec<f64> = Vec::with_capacity(http_reps * http_reqs_n);
    for rep in 0..http_reps {
        for (i, body) in wire_reqs.iter().enumerate() {
            let req = RecoverRequest::from_json(body).expect("round-trips");
            let t = Instant::now();
            let want = http_engine
                .recover(ctx.sample_input(&req).expect("valid request"))
                .path;
            inproc_ms.push(t.elapsed().as_secs_f64() * 1000.0);

            let t = Instant::now();
            // The retrying client (capped exp backoff + jitter honoring
            // Retry-After) — no retry fires on this unloaded server, so
            // the latency sample is still a single round-trip.
            let resp = client::request_with_retry(
                addr,
                "POST",
                "/v1/recover",
                Some(body),
                &client::RetryPolicy::default(),
            )
            .expect("http roundtrip");
            http_ms.push(t.elapsed().as_secs_f64() * 1000.0);
            assert_eq!(resp.status, 200, "recover failed: {}", resp.body);
            let parsed = RecoverResponse::from_json(&resp.body).expect("well-formed");
            assert_eq!(
                parsed.path(),
                want,
                "HTTP recovery diverged from in-process dispatch (rep {rep}, request {i})"
            );
        }
    }
    server.shutdown();
    inproc_ms.sort_by(|a, b| a.total_cmp(b));
    http_ms.sort_by(|a, b| a.total_cmp(b));
    let inproc_p50 = percentile(&inproc_ms, 0.50);
    let inproc_p99 = percentile(&inproc_ms, 0.99);
    let http_p50 = percentile(&http_ms, 0.50);
    let http_p99 = percentile(&http_ms, 0.99);
    println!(
        "\n--- HTTP round-trip ({} requests, closed loop) ---",
        http_ms.len()
    );
    println!("in-process dispatch : p50 {inproc_p50:8.3} ms   p99 {inproc_p99:8.3} ms");
    println!("HTTP (TCP + JSON)   : p50 {http_p50:8.3} ms   p99 {http_p99:8.3} ms");
    println!(
        "network overhead    : p50 {:+8.3} ms  (bit-identical results asserted)",
        http_p50 - inproc_p50
    );
    let http_roundtrip = serde_json::json!({
        "requests": http_ms.len(),
        "inprocess_p50_ms": inproc_p50,
        "inprocess_p99_ms": inproc_p99,
        "http_p50_ms": http_p50,
        "http_p99_ms": http_p99,
        "network_overhead_p50_ms": http_p50 - inproc_p50,
        "bit_identical": true,
    });

    // --- 5. Open-loop bursty streaming load: time-to-first-step ----------
    // Compound-Poisson bursts (an exponential gap, then 1..=burst_max
    // requests with a few ms of intra-burst jitter) against the
    // city-scale model. Within a burst the arrivals are open loop —
    // clients fire on the seeded schedule and do NOT wait for earlier
    // completions — so followers land while the leader's batch is
    // decoding: the mid-decode admission window. Every streaming client
    // opens `POST /v2/recover/stream` and timestamps its first chunk —
    // time-to-first-step (TTFS). Each burst replays on the identical
    // schedule against a closed-batch engine (`continuous: false`,
    // buffered `POST /v2/recover`), where nothing arrives before the
    // full response. The replays run back to back per burst, with a
    // drain barrier in between, so CPU-contention spikes on a shared CI
    // core land on both engines symmetrically instead of on whichever
    // engine a free-running schedule happened to hit. `check_bench`
    // gates streamed p99 TTFS under bursts below the closed-batch
    // full-response p99 — the latency claim continuous batching exists
    // to make.
    let (burst_count, burst_max) = if quick {
        (20usize, 4usize)
    } else {
        (48usize, 4usize)
    };
    let mut load_rng = StdRng::seed_from_u64(71);
    // (pre-burst idle gap, per-member arrival offsets within the burst)
    let bursts: Vec<(Duration, Vec<Duration>)> = (0..burst_count)
        .map(|_| {
            let u: f64 = load_rng.gen_range(f64::EPSILON..1.0);
            let gap = Duration::from_secs_f64(-u.ln() / 50.0);
            let k = load_rng.gen_range(1..=burst_max);
            let mut offsets = vec![Duration::ZERO];
            for _ in 1..k {
                offsets.push(Duration::from_secs_f64(load_rng.gen_range(0.001..0.008)));
            }
            (gap, offsets)
        })
        .collect();
    let n_load: usize = bursts.iter().map(|(_, o)| o.len()).sum();
    // Much longer trajectories than the fusion study (256 decode steps vs
    // 33): the decode phase is the admission window, and it is also what
    // a closed-batch newcomer has to sit out in full — with a sub-ms
    // decode, burst followers land between batches and both engines
    // behave identically.
    let load_samples: Vec<TrajSample> = {
        let mut load_sim = Simulator::new(
            &big_city.net,
            SimConfig {
                target_len: 256,
                ..SimConfig::default()
            },
        );
        let mut sample_rng = StdRng::seed_from_u64(43);
        (0..16)
            .map(|_| load_sim.sample(&mut sample_rng, 8))
            .collect()
    };
    let load_reqs: Vec<String> = load_samples
        .iter()
        .map(|s| {
            let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
            serde_json::to_string(&req).expect("request serializes")
        })
        .collect();
    let load_ctx = Arc::new(QueryContext::new(big_city.net, 50.0));
    // Expected per-request paths: the engines are deterministic, so
    // concurrent admission (mid-decode or not) must not change answers.
    let want_paths: Vec<Vec<(usize, f32)>> = load_reqs
        .iter()
        .map(|body| {
            let req = RecoverRequest::from_json(body).expect("round-trips");
            big_serving.recover(&load_ctx.sample_input(&req).expect("valid request"))
        })
        .collect();

    // One worker on purpose: a burst's followers then contend with the
    // leader's running batch instead of draining to an idle worker — the
    // closed engine makes them sit out the whole decode, the continuous
    // one splices them in between steps. max_batch is comfortably above
    // the largest burst so admission never hits the room ceiling.
    let load_engine = |continuous: bool| {
        Arc::new(RecoveryEngine::start(
            Arc::clone(&big_serving),
            EngineConfig {
                max_batch: 16,
                max_delay: Duration::from_millis(2),
                workers: 1,
                threads_per_worker: 1,
                queue_capacity: None,
                continuous,
                ..EngineConfig::default()
            },
        ))
    };
    let start_server = |engine: &Arc<RecoveryEngine>| {
        HttpServer::start(
            Arc::clone(engine),
            Arc::clone(&load_ctx),
            HttpConfig {
                addr: "127.0.0.1:0".to_string(),
                ..HttpConfig::default()
            },
            None,
        )
        .expect("bind ephemeral port")
    };
    let stream_engine = load_engine(true);
    let closed_engine = load_engine(false);
    let stream_server = start_server(&stream_engine);
    let closed_server = start_server(&closed_engine);

    let mut stream_ttfs: Vec<f64> = Vec::with_capacity(n_load);
    let mut stream_total: Vec<f64> = Vec::with_capacity(n_load);
    let mut closed_total: Vec<f64> = Vec::with_capacity(n_load);
    for (e, (gap, offsets)) in bursts.iter().enumerate() {
        std::thread::sleep(*gap);
        for streaming in [true, false] {
            let addr = if streaming {
                stream_server.local_addr()
            } else {
                closed_server.local_addr()
            };
            let burst_start = Instant::now();
            let results: Vec<(Option<f64>, f64)> = std::thread::scope(|s| {
                let handles: Vec<_> = offsets
                    .iter()
                    .enumerate()
                    .map(|(j, &off)| {
                        let i = (e * burst_max + j) % load_reqs.len();
                        let body = &load_reqs[i];
                        let want = &want_paths[i];
                        s.spawn(move || {
                            if let Some(wait) = off.checked_sub(burst_start.elapsed()) {
                                std::thread::sleep(wait);
                            }
                            let sent = Instant::now();
                            if streaming {
                                let mut first = None;
                                let mut events = Vec::new();
                                let resp =
                                    client::post_stream(addr, "/v2/recover/stream", body, |line| {
                                        if first.is_none() {
                                            first = Some(sent.elapsed());
                                        }
                                        events.push(
                                            v2::Event::from_json(line).expect("well-formed event"),
                                        );
                                    })
                                    .expect("stream roundtrip");
                                let total = sent.elapsed();
                                assert_eq!(resp.status, 200, "stream refused: {}", resp.body);
                                let (last, steps) = events.split_last().expect("terminal event");
                                let v2::Event::Summary(sum) = last else {
                                    panic!("stream ended without summary (request {i}): {last:?}");
                                };
                                assert!(
                                    steps.iter().all(|ev| !ev.is_terminal()),
                                    "terminal event mid-stream (request {i})"
                                );
                                let got: Vec<(usize, f32)> = sum
                                    .segments
                                    .iter()
                                    .copied()
                                    .zip(sum.rates.iter().copied())
                                    .collect();
                                assert_eq!(&got, want, "streamed recovery diverged (request {i})");
                                (
                                    first.map(|d| d.as_secs_f64() * 1000.0),
                                    total.as_secs_f64() * 1000.0,
                                )
                            } else {
                                let resp = client::request(addr, "POST", "/v2/recover", Some(body))
                                    .expect("http roundtrip");
                                let total = sent.elapsed();
                                assert_eq!(resp.status, 200, "recover failed: {}", resp.body);
                                let parsed =
                                    RecoverResponse::from_json(&resp.body).expect("well-formed");
                                assert_eq!(
                                    &parsed.path(),
                                    want,
                                    "closed-batch recovery diverged (request {i})"
                                );
                                (None, total.as_secs_f64() * 1000.0)
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("load client"))
                    .collect()
            });
            for (ttfs, total) in results {
                if streaming {
                    if let Some(t) = ttfs {
                        stream_ttfs.push(t);
                    }
                    stream_total.push(total);
                } else {
                    closed_total.push(total);
                }
            }
        }
    }
    stream_server.shutdown();
    closed_server.shutdown();
    let admitted = stream_engine.stats().admitted;
    stream_ttfs.sort_by(|a, b| a.total_cmp(b));
    stream_total.sort_by(|a, b| a.total_cmp(b));
    closed_total.sort_by(|a, b| a.total_cmp(b));

    let ttfs_p50 = percentile(&stream_ttfs, 0.50);
    let ttfs_p99 = percentile(&stream_ttfs, 0.99);
    let stream_total_p50 = percentile(&stream_total, 0.50);
    let stream_total_p99 = percentile(&stream_total, 0.99);
    let closed_p50 = percentile(&closed_total, 0.50);
    let closed_p99 = percentile(&closed_total, 0.99);
    println!(
        "\n--- open-loop bursty streaming load ({n_load} requests over {burst_count} bursts, \
         paired replay) ---"
    );
    println!(
        "streamed (continuous): TTFS p50 {ttfs_p50:8.3} ms  p99 {ttfs_p99:8.3} ms; \
         total p50 {stream_total_p50:8.3} ms  p99 {stream_total_p99:8.3} ms  \
         ({admitted} mid-decode admissions)"
    );
    println!(
        "closed batch         : full response p50 {closed_p50:8.3} ms  p99 {closed_p99:8.3} ms"
    );
    println!(
        "p99 TTFS / closed-batch p99: {:.2}x (bit-identical results asserted on both sides)",
        ttfs_p99 / closed_p99.max(1e-9)
    );
    let open_loop_bursty = serde_json::json!({
        "requests": n_load,
        "bursts": burst_count,
        "burst_max": burst_max,
        "mid_decode_admissions": admitted,
        "stream_ttfs_p50_ms": ttfs_p50,
        "stream_ttfs_p99_ms": ttfs_p99,
        "stream_total_p50_ms": stream_total_p50,
        "stream_total_p99_ms": stream_total_p99,
        "closed_total_p50_ms": closed_p50,
        "closed_total_p99_ms": closed_p99,
        "ttfs_p99_vs_closed_p99": ttfs_p99 / closed_p99.max(1e-9),
        "bit_identical": true,
    });

    // --- 6. Two-shard isolation + hot reload under load ------------------
    // A router owning two city shards (beta = alpha's grid translated
    // 50 km east, so the bounding boxes are disjoint): concurrent
    // closed-loop traffic against both, with the beta shard's model
    // hot-swapped twice from a packed artifact mid-run. On a 1-core
    // runner the gate is correctness-shaped, not wall-clock-shaped:
    // every response 200 + bit-identical to in-process dispatch on its
    // own shard (reloads included — the artifact packs the same
    // config/seed, so answers stay checkable across the swap), and a
    // very loose cross-shard p99 ratio that only catches one shard
    // starving the other outright.
    let (shard_reqs_per_client, shard_clients) = if quick { (8usize, 2usize) } else { (24, 2) };
    let alpha_city = SyntheticCity::generate(CityConfig::tiny());
    let beta_cfg = CityConfig {
        origin_x: 50_000.0,
        ..CityConfig::tiny()
    };
    let beta_city = SyntheticCity::generate(beta_cfg.clone());
    let build_shard = |name: &str, city: SyntheticCity, seed: u64| {
        let grid = city.net.grid(50.0);
        let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, seed);
        let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec serves"));
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(101));
        let reqs: Vec<String> = (0..8)
            .map(|_| {
                let s = sim.sample(&mut rng, 8);
                let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
                serde_json::to_string(&req).expect("request serializes")
            })
            .collect();
        let ctx = Arc::new(QueryContext::new(city.net, 50.0));
        let engine = Arc::new(RecoveryEngine::start(
            Arc::clone(&serving),
            EngineConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                workers: 1,
                threads_per_worker: 1,
                queue_capacity: None,
                ..EngineConfig::default()
            },
        ));
        let want: Vec<Vec<(usize, f32)>> = reqs
            .iter()
            .map(|body| {
                let req = RecoverRequest::from_json(body).expect("round-trips");
                engine
                    .recover(ctx.sample_input(&req).expect("valid request"))
                    .path
            })
            .collect();
        (CityShard::new(name, engine, ctx, None), reqs, want)
    };
    let (alpha_shard, alpha_reqs, alpha_want) = build_shard("alpha", alpha_city, 7);
    let (beta_shard, beta_reqs, beta_want) = build_shard("beta", beta_city, 7);
    let shard_router = Arc::new(ShardRouter::new(vec![alpha_shard, beta_shard]));
    let shard_server = HttpServer::start_router(
        Arc::clone(&shard_router),
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            ..HttpConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let shard_addr = shard_server.local_addr();

    // The beta reload artifact: identical config/seed, bumped version.
    let beta_artifact = rntrajrec_artifact::pack_fresh("beta", "bench-v2", &beta_cfg, 50.0, 16, 7);
    let beta_artifact_path =
        std::env::temp_dir().join(format!("rntrajrec_bench_{}_beta.rnta", std::process::id()));
    beta_artifact
        .write_to(&beta_artifact_path)
        .expect("write beta artifact");

    let shard_traffic = |reqs: &[String], want: &[Vec<(usize, f32)>]| -> Vec<f64> {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..shard_clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut ms = Vec::with_capacity(shard_reqs_per_client);
                        for k in 0..shard_reqs_per_client {
                            let i = (c + k) % reqs.len();
                            let t = Instant::now();
                            let resp =
                                client::request(shard_addr, "POST", "/v1/recover", Some(&reqs[i]))
                                    .expect("http roundtrip");
                            ms.push(t.elapsed().as_secs_f64() * 1000.0);
                            assert_eq!(resp.status, 200, "sharded recover failed: {}", resp.body);
                            let parsed =
                                RecoverResponse::from_json(&resp.body).expect("well-formed");
                            assert_eq!(
                                parsed.path(),
                                want[i],
                                "sharded recovery diverged from in-process dispatch"
                            );
                        }
                        ms
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard client"))
                .collect()
        })
    };
    // Both shards under concurrent load, with two hot swaps of beta's
    // model mid-traffic from the reload thread.
    let (mut alpha_ms, mut beta_ms, reloads_done) = std::thread::scope(|s| {
        let alpha = s.spawn(|| shard_traffic(&alpha_reqs, &alpha_want));
        let beta = s.spawn(|| shard_traffic(&beta_reqs, &beta_want));
        let reloader = s.spawn(|| {
            let mut done = 0u64;
            for _ in 0..2 {
                std::thread::sleep(Duration::from_millis(10));
                let body = format!(
                    "{{\"city\":\"beta\",\"path\":\"{}\"}}",
                    beta_artifact_path.display()
                );
                let resp = client::request(shard_addr, "POST", "/admin/reload", Some(&body))
                    .expect("reload roundtrip");
                assert_eq!(resp.status, 200, "hot reload refused: {}", resp.body);
                done += 1;
            }
            done
        });
        (
            alpha.join().expect("alpha traffic"),
            beta.join().expect("beta traffic"),
            reloader.join().expect("reloader"),
        )
    });
    std::fs::remove_file(&beta_artifact_path).ok();
    let (alpha_failed, beta_failed) = {
        let stats = |name: &str| {
            shard_router
                .by_name(name)
                .expect("shard exists")
                .engine()
                .stats()
        };
        (stats("alpha").failed, stats("beta").failed)
    };
    shard_server.shutdown();
    alpha_ms.sort_by(|a, b| a.total_cmp(b));
    beta_ms.sort_by(|a, b| a.total_cmp(b));
    let alpha_p50 = percentile(&alpha_ms, 0.50);
    let alpha_p99 = percentile(&alpha_ms, 0.99);
    let beta_p50 = percentile(&beta_ms, 0.50);
    let beta_p99 = percentile(&beta_ms, 0.99);
    let shard_p99_ratio = beta_p99.max(alpha_p99) / beta_p99.min(alpha_p99).max(1e-9);
    println!(
        "\n--- two-shard isolation ({} requests/shard, 2 hot swaps of beta mid-run) ---",
        alpha_ms.len()
    );
    println!("alpha: p50 {alpha_p50:8.3} ms  p99 {alpha_p99:8.3} ms  ({alpha_failed} failed)");
    println!("beta : p50 {beta_p50:8.3} ms  p99 {beta_p99:8.3} ms  ({beta_failed} failed)");
    println!(
        "cross-shard p99 ratio {shard_p99_ratio:.2}x; {reloads_done} reloads, zero invalid \
         responses (bit-identical per shard asserted)"
    );
    let two_shard = serde_json::json!({
        "requests_per_shard": alpha_ms.len(),
        "reloads_under_load": reloads_done,
        "alpha_p50_ms": alpha_p50,
        "alpha_p99_ms": alpha_p99,
        "beta_p50_ms": beta_p50,
        "beta_p99_ms": beta_p99,
        "cross_shard_p99_ratio": shard_p99_ratio,
        "alpha_failed": alpha_failed,
        "beta_failed": beta_failed,
        "bit_identical": true,
    });

    let decoder_baseline = serde_json::json!({
        "matmuls_per_request": matmuls_per_request,
        "decoder_steps_per_request": steps_per_request,
        "matmuls_per_decoder_step": matmuls_per_step,
    });
    let decoder_fusion = serde_json::json!({
        "batch": big_inputs.len(),
        "matmuls_per_decoder_step_sequential": seq_per_batch_step,
        "matmuls_per_decoder_step_batched": fused_per_batch_step,
        "sequential_decode_ms_per_request": seq_decode_ms,
        "batched_decode_ms_per_request": fused_decode_ms,
        "speedup": fusion_speedup,
        "bit_identical": true,
    });
    let encoder_fusion = serde_json::json!({
        "batch": big_inputs.len(),
        "matmuls_per_batch_sequential": enc_seq_matmuls,
        "matmuls_per_batch_batched": enc_fused_matmuls,
        "matmul_ratio": enc_matmul_ratio,
        "sequential_encode_ms_per_request": seq_encode_ms,
        "batched_encode_ms_per_request": fused_encode_ms,
        "speedup": enc_speedup,
        "bit_identical": true,
    });
    let city_scale = serde_json::json!({
        "segments": n_segments,
        "dim": big_dim,
        "intra_op_sweep": intra_sweep,
        "decoder_fusion_baseline": decoder_baseline,
        "decoder_fusion": decoder_fusion,
        "encoder_fusion": encoder_fusion,
        "segment_head": segment_head,
        "tracing": tracing,
        "chaos": chaos,
    });
    let json = serde_json::json!({
        "tape_predict_ms": tape_ms,
        "tapefree_recover_ms": tapefree_ms,
        "speedup": speedup,
        "road_precompute_ms": precompute_ms,
        "sweep": sweep,
        "cores": cores,
        "city_scale": city_scale,
        "http_roundtrip": http_roundtrip,
        "open_loop_bursty": open_loop_bursty,
        "two_shard": two_shard,
    });
    dump_json("BENCH_serve", &json);

    if speedup <= 1.0 {
        eprintln!("WARNING: tape-free path slower than tape predict — investigate");
        std::process::exit(1);
    }
}
