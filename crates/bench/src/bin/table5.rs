//! Table V: ablation study on Chengdu ×8 and Porto ×8 — w/o GRL, w/o GF,
//! w/o GAT, w/o GN, w/o GCL vs. the full model (plus the extra
//! constraint-mask ablation).
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin table5
//! ```

use rntrajrec::experiments::run_comparison;
use rntrajrec::model::MethodSpec;
use rntrajrec_bench::{banner, dump_json, print_table, scale_from_env};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let mut scale = scale_from_env();
    // 7 RNTrajRec-family trainings per dataset: halve the data budget to
    // keep the ablation sweep tractable on CPU.
    scale.num_traj = (scale.num_traj / 2).max(30);
    banner("Table V — ablation study", &scale);
    let mut methods = MethodSpec::table5();
    methods.push(MethodSpec::RnTrajRecNoMask);
    let configs = vec![
        (
            "Chengdu (eps_tau = eps_rho * 8)",
            DatasetConfig::chengdu(8, scale.num_traj),
        ),
        (
            "Porto (eps_tau = eps_rho * 8)",
            DatasetConfig::porto(8, scale.num_traj),
        ),
    ];
    let mut all = Vec::new();
    for (title, config) in configs {
        let (_pipeline, results) = run_comparison(config, &methods, &scale);
        print_table(title, &results);
        all.push((title.to_string(), results));
    }
    let json: Vec<_> = all
        .iter()
        .map(|(t, rs)| serde_json::json!({ "dataset": t, "rows": rs }))
        .collect();
    dump_json("table5", &json);
}
