//! Table II: dataset statistics for the five named synthetic datasets.
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin table2
//! ```

use rntrajrec_bench::{banner, scale_from_env};
use rntrajrec_synth::{DatasetConfig, SplitDataset};

fn main() {
    let scale = scale_from_env();
    banner("Table II — dataset statistics", &scale);
    let n = scale.num_traj;
    let configs = vec![
        DatasetConfig::shanghai_l(16, n),
        DatasetConfig::chengdu(8, n),
        DatasetConfig::porto(8, n),
        DatasetConfig::shanghai(8, n),
        DatasetConfig::chengdu_few(8, n),
    ];
    println!(
        "{:<12} {:>8} {:>10} {:>14} {:>12} {:>8} {:>8}",
        "dataset", "#traj", "#segments", "area (km²)", "avg tt (s)", "ϵρ (s)", "ϵτ (s)"
    );
    for cfg in configs {
        let ds = SplitDataset::generate(cfg);
        let st = ds.stats();
        println!(
            "{:<12} {:>8} {:>10} {:>7.1}x{:<6.1} {:>12.1} {:>8.0} {:>8.0}",
            st.name,
            st.num_trajectories,
            st.num_segments,
            st.area_km2.0,
            st.area_km2.1,
            st.avg_travel_time_s,
            st.eps_rho_s,
            st.eps_tau_s
        );
    }
    println!("\npaper (for shape comparison): Shanghai-L 34986 segs 23.0x30.8 km ϵρ=10s;");
    println!("Chengdu 8781 segs 8.3x8.3 km ϵρ=12s; Porto 12613 segs 6.8x7.2 km ϵρ=15s.");
}
