//! Table IV: additional datasets — Shanghai ×8 and Chengdu-Few ×8
//! (data-scarcity robustness).
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin table4
//! ```

use rntrajrec::experiments::run_comparison;
use rntrajrec::model::MethodSpec;
use rntrajrec_bench::{banner, dump_json, print_table, scale_from_env};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = scale_from_env();
    banner(
        "Table IV — additional Shanghai and Chengdu-Few datasets",
        &scale,
    );
    let methods = MethodSpec::table3();
    // Chengdu-Few keeps the Chengdu city but ~20 % of the trajectories;
    // run_comparison overrides num_trajectories with the scale, so divide
    // explicitly here.
    let mut few = DatasetConfig::chengdu_few(8, scale.num_traj * 5);
    few.num_trajectories = (scale.num_traj / 5).max(10);
    let mut few_scale = scale.clone();
    few_scale.num_traj = few.num_trajectories;

    let mut all = Vec::new();
    let (_p, results) =
        run_comparison(DatasetConfig::shanghai(8, scale.num_traj), &methods, &scale);
    print_table("Shanghai (eps_tau = eps_rho * 8)", &results);
    all.push(("Shanghai x8".to_string(), results));

    let (_p, results) = run_comparison(few, &methods, &few_scale);
    print_table("Chengdu-Few (eps_tau = eps_rho * 8)", &results);
    all.push(("Chengdu-Few x8".to_string(), results));

    let json: Vec<_> = all
        .iter()
        .map(|(t, rs)| serde_json::json!({ "dataset": t, "rows": rs }))
        .collect();
    dump_json("table4", &json);
}
