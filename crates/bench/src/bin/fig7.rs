//! Fig. 7: parameter analysis on Chengdu ×8 —
//! (a) road-network representation backbone (GridGNN vs GCN/GIN/GAT),
//! (b) number of GPSFormer blocks N,
//! (c) receptive field δ,
//! (d) influence bandwidth γ.
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin fig7
//! ```

use rntrajrec::experiments::{sweep_extraction, sweep_n_blocks, Pipeline};
use rntrajrec::model::MethodSpec;
use rntrajrec_bench::{banner, dump_json, scale_from_env};
use rntrajrec_models::GnnBackbone;
use rntrajrec_synth::DatasetConfig;

fn main() {
    let mut scale = scale_from_env();
    // 18 RNTrajRec trainings: halve the data budget to keep the sweep
    // tractable (trends, not absolute numbers, are the target).
    scale.num_traj = (scale.num_traj / 2).max(30);
    banner("Fig. 7 — parameter analysis", &scale);
    let config = DatasetConfig::chengdu(8, scale.num_traj);
    let pipeline = Pipeline::prepare(config.clone(), &scale);
    let mut json = serde_json::Map::new();

    // (a) Road-network representation method.
    println!("--- (a) road network representation ---");
    let backbones = [
        ("GridGNN", MethodSpec::RnTrajRec),
        ("GAT", MethodSpec::RnTrajRecPlainGnn(GnnBackbone::Gat)),
        ("GIN", MethodSpec::RnTrajRecPlainGnn(GnnBackbone::Gin)),
        ("GCN", MethodSpec::RnTrajRecPlainGnn(GnnBackbone::Gcn)),
    ];
    let mut part = Vec::new();
    for (name, spec) in backbones {
        let r = pipeline.train_and_eval(&spec, &scale);
        println!("  {:<10} acc {:.4}  F1 {:.4}", name, r.accuracy, r.f1);
        part.push(serde_json::json!({ "backbone": name, "accuracy": r.accuracy, "f1": r.f1 }));
    }
    json.insert("a_backbones".into(), part.into());

    // (b) Number of GPSFormer blocks.
    println!("--- (b) number of GPSFormer blocks N ---");
    let ns = [1usize, 2, 3];
    let mut part = Vec::new();
    for (n, r) in sweep_n_blocks(&pipeline, &ns, &scale) {
        println!("  N={n}  acc {:.4}  F1 {:.4}", r.accuracy, r.f1);
        part.push(serde_json::json!({ "n": n, "accuracy": r.accuracy, "f1": r.f1 }));
    }
    json.insert("b_n_blocks".into(), part.into());

    // (c) Receptive field δ (features re-extracted per value).
    println!("--- (c) receptive field delta (m) ---");
    let deltas: Vec<(f64, f64)> = [100.0, 400.0, 800.0].iter().map(|&d| (d, 30.0)).collect();
    let mut part = Vec::new();
    for ((d, _), r) in sweep_extraction(config.clone(), &deltas, &scale) {
        println!("  delta={d:<5} acc {:.4}  F1 {:.4}", r.accuracy, r.f1);
        part.push(serde_json::json!({ "delta_m": d, "accuracy": r.accuracy, "f1": r.f1 }));
    }
    json.insert("c_delta".into(), part.into());

    // (d) Influence bandwidth γ.
    println!("--- (d) influence bandwidth gamma (m) ---");
    let gammas: Vec<(f64, f64)> = [10.0, 30.0, 50.0].iter().map(|&g| (400.0, g)).collect();
    let mut part = Vec::new();
    for ((_, g), r) in sweep_extraction(config, &gammas, &scale) {
        println!("  gamma={g:<5} acc {:.4}  F1 {:.4}", r.accuracy, r.f1);
        part.push(serde_json::json!({ "gamma_m": g, "accuracy": r.accuracy, "f1": r.f1 }));
    }
    json.insert("d_gamma".into(), part.into());

    dump_json("fig7", &json);
}
