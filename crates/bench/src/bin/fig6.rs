//! Fig. 6: efficiency study — accuracy vs. per-trajectory inference time
//! vs. parameter count on Chengdu ×8, including RNTrajRec with N ∈ {1,2}
//! and RNTrajRec* (w/o GRL) with N ∈ {1,2}.
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin fig6
//! ```

use rntrajrec::experiments::Pipeline;
use rntrajrec::model::MethodSpec;
use rntrajrec_bench::{banner, dump_json, scale_from_env};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = scale_from_env();
    banner(
        "Fig. 6 — efficiency study (accuracy / inference time / #params)",
        &scale,
    );
    let pipeline = Pipeline::prepare(DatasetConfig::chengdu(8, scale.num_traj), &scale);

    let mut methods = MethodSpec::table3();
    methods.extend([
        MethodSpec::RnTrajRecWoGrlN(1),
        MethodSpec::RnTrajRecWoGrlN(2),
        MethodSpec::RnTrajRecN(1),
    ]);
    println!(
        "{:<24} {:>8} {:>12} {:>12} {:>12}",
        "method", "acc", "infer (ms)", "#params", "train (s)"
    );
    let mut json = Vec::new();
    for m in &methods {
        let r = pipeline.train_and_eval(m, &scale);
        println!(
            "{:<24} {:>8.4} {:>12.2} {:>12} {:>12.1}",
            r.label, r.accuracy, r.infer_ms, r.num_params, r.train_secs
        );
        json.push(serde_json::json!({
            "method": r.label,
            "accuracy": r.accuracy,
            "infer_ms": r.infer_ms,
            "num_params": r.num_params,
            "train_secs": r.train_secs,
        }));
    }
    dump_json("fig6", &json);
}
