//! Bench-regression gate over `results/BENCH_serve.json`.
//!
//! Compares a freshly generated record against the committed baseline and
//! fails (exit 1) when a load-bearing performance claim regressed:
//!
//! * **Deterministic counters** (decoder matmuls per step, the
//!   sequential-vs-batched fusion ratio) are gated tightly — they cannot
//!   be noisy, only broken.
//! * **Wall-clock speedups** (tape vs tape-free, fused-decode speedup)
//!   are gated loosely (shared CI runners are noisy) but still catch
//!   gross regressions, and keep their absolute floors.
//! * **Bit-identity flags** must stay `true` — those are correctness, not
//!   performance.
//!
//! The committed baseline lives at `crates/bench/baselines/BENCH_serve.json`
//! (`results/` is gitignored — regenerate the baseline by copying a fresh
//! `SCALE=quick` record over it when a PR legitimately moves performance).
//!
//! ```bash
//! SCALE=quick cargo run --release -p rntrajrec-bench --bin serve_bench
//! cargo run --release -p rntrajrec-bench --bin check_bench -- \
//!     crates/bench/baselines/BENCH_serve.json results/BENCH_serve.json
//! ```

use std::process::ExitCode;

use serde::Value;

/// Walk a dotted path through nested objects.
fn lookup<'a>(v: &'a Value, path: &str) -> Option<&'a Value> {
    path.split('.').try_fold(v, |v, key| v.get(key))
}

fn num(v: &Value, path: &str) -> Option<f64> {
    lookup(v, path)?.as_f64()
}

struct Gate {
    failures: u32,
    checks: u32,
}

impl Gate {
    /// One comparison: `fresh_value` from `path`, required to satisfy
    /// `ok`, reported against the baseline's value at the same path.
    fn check(
        &mut self,
        name: &str,
        baseline: Option<f64>,
        fresh: Option<f64>,
        ok: impl Fn(f64, f64) -> bool,
        rule: &str,
    ) {
        self.checks += 1;
        match (baseline, fresh) {
            (Some(b), Some(f)) => {
                let pass = ok(b, f);
                println!(
                    "{} {name}: baseline {b:.4}, fresh {f:.4}  [{rule}]",
                    if pass { "PASS" } else { "FAIL" },
                );
                if !pass {
                    self.failures += 1;
                }
            }
            _ => {
                println!("FAIL {name}: missing (baseline {baseline:?}, fresh {fresh:?})  [{rule}]");
                self.failures += 1;
            }
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    // Default paths resolve from the workspace root (where CI runs) via
    // the crate manifest, so the binary also works from crate dirs.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let baseline_path = args
        .next()
        .unwrap_or_else(|| format!("{root}/crates/bench/baselines/BENCH_serve.json"));
    let fresh_path = args
        .next()
        .unwrap_or_else(|| format!("{root}/results/BENCH_serve.json"));

    let read = |path: &str| -> Value {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
    };
    let baseline = read(&baseline_path);
    let fresh = read(&fresh_path);
    println!("=== bench regression gate ===");
    println!("baseline: {baseline_path}");
    println!("fresh:    {fresh_path}\n");

    let mut gate = Gate {
        failures: 0,
        checks: 0,
    };

    // Deterministic: decoder matmuls per step after fusion. A tiny
    // additive slack absorbs batch-composition rounding, nothing more.
    let key = "city_scale.decoder_fusion.matmuls_per_decoder_step_batched";
    gate.check(
        key,
        num(&baseline, key),
        num(&fresh, key),
        |b, f| f <= b + 0.5 && f <= 12.0,
        "fresh <= baseline + 0.5 and <= 12",
    );

    // Deterministic: how many matmuls fusion eliminates per step
    // (sequential / batched ratio must not shrink much).
    let seq_key = "city_scale.decoder_fusion.matmuls_per_decoder_step_sequential";
    let ratio = |v: &Value| {
        let s = num(v, seq_key)?;
        let b = num(v, key)?;
        (b > 0.0).then_some(s / b)
    };
    gate.check(
        "decoder fusion matmul ratio (sequential/batched)",
        ratio(&baseline),
        ratio(&fresh),
        |b, f| f >= b * 0.9,
        "fresh >= 0.9 x baseline",
    );

    // Wall clock, loose: fused decode speedup over sequential decode.
    let key = "city_scale.decoder_fusion.speedup";
    gate.check(
        key,
        num(&baseline, key),
        num(&fresh, key),
        |b, f| f >= (b * 0.5).min(0.9),
        "fresh >= min(0.5 x baseline, 0.9)",
    );

    // Deterministic: stacked matmul invocations of the fused batched
    // encoder. A small additive slack absorbs benign refactors (an extra
    // head or projection), nothing like a per-member or per-point
    // regression (those multiply the count by B or B·L).
    let key = "city_scale.encoder_fusion.matmuls_per_batch_batched";
    gate.check(
        key,
        num(&baseline, key),
        num(&fresh, key),
        |b, f| f <= b + 8.0,
        "fresh <= baseline + 8",
    );

    // Deterministic: how many matmul launches encoder fusion eliminates
    // (sequential / batched ratio must not shrink much).
    let ratio = |v: &Value| {
        let s = num(v, "city_scale.encoder_fusion.matmuls_per_batch_sequential")?;
        let b = num(v, key)?;
        (b > 0.0).then_some(s / b)
    };
    gate.check(
        "encoder fusion matmul ratio (sequential/batched)",
        ratio(&baseline),
        ratio(&fresh),
        |b, f| f >= b * 0.9,
        "fresh >= 0.9 x baseline",
    );

    // Wall clock, loose: fused encode speedup over per-member encoding.
    let key = "city_scale.encoder_fusion.speedup";
    gate.check(
        key,
        num(&baseline, key),
        num(&fresh, key),
        |b, f| f >= (b * 0.5).min(0.9),
        "fresh >= min(0.5 x baseline, 0.9)",
    );

    // Wall clock, loose: tape-free inference speedup over the tape path.
    // serve_bench itself already hard-fails below 1.0.
    gate.check(
        "speedup (tape vs tape-free)",
        num(&baseline, "speedup"),
        num(&fresh, "speedup"),
        |b, f| f >= 1.0 && f >= b * 0.4,
        "fresh >= 1.0 and >= 0.4 x baseline",
    );

    // Deterministic: the masked-column sparse segment head must keep its
    // algorithmic FLOP reduction over the dense `[B,d]x[d,|V|]` head.
    // The 3x floor is the acceptance bar; the baseline-relative term
    // catches mask-coverage regressions that stay above the floor.
    let key = "city_scale.segment_head.flop_reduction";
    gate.check(
        key,
        num(&baseline, key),
        num(&fresh, key),
        |b, f| f >= 3.0 && f >= b * 0.8,
        "fresh >= 3.0 and >= 0.8 x baseline",
    );

    // Absolute bar: AVX2+FMA may legitimately re-round (fused multiply
    // -add), but cross-backend drift on the city-scale score matmul must
    // stay within a small ULP budget. Skipped (informational) when the
    // runner lacks AVX2+FMA — the field is null there.
    {
        let key = "city_scale.segment_head.backends.max_ulp_vs_scalar";
        match lookup(&fresh, key) {
            Some(v) if v.is_null() => {
                println!("INFO {key}: runner lacks AVX2+FMA — ULP gate skipped")
            }
            v => {
                gate.checks += 1;
                match v.and_then(Value::as_f64) {
                    Some(f) if f <= 256.0 => {
                        println!("PASS {key}: fresh {f:.0}  [fresh <= 256]")
                    }
                    f => {
                        println!("FAIL {key}: fresh {f:?}  [fresh <= 256]");
                        gate.failures += 1;
                    }
                }
            }
        }
    }

    // Absolute bars: int8 segment-head accuracy drift on recovery outputs
    // (the quantized path trades bit-identity for throughput; the trade
    // must stay small end-to-end).
    let key = "city_scale.segment_head.quant.segment_agreement";
    gate.check(
        key,
        num(&baseline, key),
        num(&fresh, key),
        |_, f| f >= 0.95,
        "fresh >= 0.95",
    );
    let key = "city_scale.segment_head.quant.max_rate_drift";
    gate.check(
        key,
        num(&baseline, key),
        num(&fresh, key),
        |_, f| f <= 0.05,
        "fresh <= 0.05",
    );

    // Absolute bar: span recording must stay effectively free on the
    // batched serving path. The threshold is absolute (≤ 2%), not
    // baseline-relative — the baseline may be negative noise.
    {
        let key = "city_scale.tracing.overhead_pct";
        gate.checks += 1;
        match (num(&baseline, key), num(&fresh, key)) {
            (b, Some(f)) if f <= 2.0 => {
                println!("PASS {key}: baseline {b:?}, fresh {f:.3}  [fresh <= 2.0]")
            }
            (b, f) => {
                println!("FAIL {key}: baseline {b:?}, fresh {f:?}  [fresh <= 2.0]");
                gate.failures += 1;
            }
        }
    }

    // Same absolute bar for the chaos fault points: disarmed injection
    // must stay invisible on the batched serving path. The baseline may
    // predate the section (first rollout), so only the fresh record is
    // required to carry it.
    {
        let key = "city_scale.chaos.overhead_pct";
        gate.checks += 1;
        match (num(&baseline, key), num(&fresh, key)) {
            (b, Some(f)) if f <= 2.0 => {
                println!("PASS {key}: baseline {b:?}, fresh {f:.3}  [fresh <= 2.0]")
            }
            (b, f) => {
                println!("FAIL {key}: baseline {b:?}, fresh {f:?}  [fresh <= 2.0]");
                gate.failures += 1;
            }
        }
    }

    // Continuous batching's latency claim: under bursty open-loop load,
    // the p99 time-to-first-step of the streamed path must beat the
    // closed-batch engine's full-response p99 on the same arrival
    // schedule. Both numbers come from the fresh record (same runner,
    // same run), so the comparison is noise-robust; the baseline may
    // predate the section (first rollout).
    {
        let ttfs_key = "open_loop_bursty.stream_ttfs_p99_ms";
        let closed_key = "open_loop_bursty.closed_total_p99_ms";
        gate.checks += 1;
        match (num(&fresh, ttfs_key), num(&fresh, closed_key)) {
            (Some(t), Some(c)) if t < c => println!(
                "PASS {ttfs_key}: fresh {t:.3} < closed-batch p99 {c:.3}  [TTFS p99 < closed p99]"
            ),
            (t, c) => {
                println!(
                    "FAIL {ttfs_key}: fresh {t:?} vs closed-batch p99 {c:?}  [TTFS p99 < closed p99]"
                );
                gate.failures += 1;
            }
        }
    }

    // Two-shard isolation: correctness-shaped gates (a 1-core runner
    // makes wall clock meaningless here). Both shards must finish their
    // concurrent run with zero engine-level failures, the beta shard
    // must have survived two hot swaps mid-traffic, and the cross-shard
    // p99 ratio only catches one shard starving the other outright. The
    // baseline may predate the section (first rollout), so only the
    // fresh record is required to carry it.
    {
        for (key, bound, rule) in [
            ("two_shard.alpha_failed", 0.0, "fresh == 0"),
            ("two_shard.beta_failed", 0.0, "fresh == 0"),
        ] {
            gate.checks += 1;
            match num(&fresh, key) {
                Some(f) if f == bound => println!("PASS {key}: fresh {f:.0}  [{rule}]"),
                f => {
                    println!("FAIL {key}: fresh {f:?}  [{rule}]");
                    gate.failures += 1;
                }
            }
        }
        let key = "two_shard.reloads_under_load";
        gate.checks += 1;
        match num(&fresh, key) {
            Some(f) if f >= 2.0 => println!("PASS {key}: fresh {f:.0}  [fresh >= 2]"),
            f => {
                println!("FAIL {key}: fresh {f:?}  [fresh >= 2]");
                gate.failures += 1;
            }
        }
        let key = "two_shard.cross_shard_p99_ratio";
        gate.checks += 1;
        match num(&fresh, key) {
            Some(f) if f <= 50.0 => println!("PASS {key}: fresh {f:.2}  [fresh <= 50]"),
            f => {
                println!("FAIL {key}: fresh {f:?}  [fresh <= 50]");
                gate.failures += 1;
            }
        }
    }

    // Correctness flags must never flip.
    for key in [
        "city_scale.decoder_fusion.bit_identical",
        "city_scale.encoder_fusion.bit_identical",
        "city_scale.segment_head.bit_identical",
        "http_roundtrip.bit_identical",
        "open_loop_bursty.bit_identical",
        "two_shard.bit_identical",
    ] {
        let flag = |v: &Value| lookup(v, key).and_then(Value::as_bool);
        gate.checks += 1;
        // The baseline may predate the section (first rollout of a new
        // bench); the fresh record must carry it and it must be true.
        match (flag(&baseline), flag(&fresh)) {
            (Some(true) | None, Some(true)) => println!("PASS {key}: true"),
            (b, f) => {
                println!("FAIL {key}: baseline {b:?}, fresh {f:?}  [must be true]");
                gate.failures += 1;
            }
        }
    }

    // Informational (not gated — pure network overhead depends on the
    // runner's loopback stack).
    if let (Some(b), Some(f)) = (
        num(&baseline, "http_roundtrip.network_overhead_p50_ms"),
        num(&fresh, "http_roundtrip.network_overhead_p50_ms"),
    ) {
        println!("INFO http_roundtrip.network_overhead_p50_ms: baseline {b:.3}, fresh {f:.3}");
    }

    println!(
        "\n{}: {} checks, {} failed",
        if gate.failures == 0 {
            "OK"
        } else {
            "REGRESSED"
        },
        gate.checks,
        gate.failures
    );
    if gate.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
