//! The headline result in the large-data regime: with enough training
//! trajectories the learned recovery models overtake the two-stage
//! Linear + HMM baseline (the paper's Table III ordering), and the
//! road-network-aware encoder leads the learned pack. Chengdu ×8, three
//! representative methods.
//!
//! ```bash
//! cargo run --release -p rntrajrec-bench --bin headline
//! ```

use rntrajrec::experiments::{ExperimentScale, Pipeline};
use rntrajrec::model::MethodSpec;
use rntrajrec_bench::{dump_json, print_table};
use rntrajrec_synth::DatasetConfig;

fn main() {
    let scale = ExperimentScale {
        num_traj: 2500,
        dim: 24,
        epochs: 8,
        batch: 8,
        max_eval: 25,
        seed: 7,
        lr: 3e-3,
    };
    println!("=== Headline — Chengdu x8 in the large-data regime ===");
    println!(
        "scale: {} trajectories, d={}, {} epochs\n",
        scale.num_traj, scale.dim, scale.epochs
    );
    let pipeline = Pipeline::prepare(DatasetConfig::chengdu(8, scale.num_traj), &scale);
    let methods = [
        MethodSpec::LinearHmm,
        MethodSpec::MTrajRec,
        MethodSpec::RnTrajRec,
    ];
    let mut results = Vec::new();
    for m in &methods {
        let r = pipeline.train_and_eval(m, &scale);
        println!("finished {} (train {:.0}s)", r.label, r.train_secs);
        results.push(r);
    }
    print_table(
        "Chengdu (eps_tau = eps_rho * 8), 2500 trajectories",
        &results,
    );
    dump_json("headline", &results);
}
