//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every experiment binary (`table2` … `fig7`) reads a scale from the
//! `SCALE` environment variable (`quick`, `medium` — the default — or
//! `paper`), prints the table to stdout, and writes a machine-readable
//! JSON record to `results/<name>.json`.

use std::io::Write;
use std::path::PathBuf;

use rntrajrec::experiments::{ExperimentScale, MethodResult};

/// Parse the run scale from `SCALE` (default: `medium`).
///
/// * `quick` — smoke-test sizes (seconds per method).
/// * `medium` — the EXPERIMENTS.md default (tens of seconds per method).
/// * `paper` — largest CPU-feasible sizes (minutes per method).
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("SCALE").as_deref() {
        Ok("quick") => ExperimentScale::quick(),
        Ok("paper") => ExperimentScale {
            num_traj: 4000,
            dim: 32,
            epochs: 10,
            batch: 8,
            max_eval: 40,
            seed: 7,
            lr: 3e-3,
        },
        Ok("medium") | Err(_) => ExperimentScale {
            num_traj: 600,
            dim: 24,
            epochs: 14,
            batch: 8,
            max_eval: 20,
            seed: 7,
            lr: 3e-3,
        },
        Ok(other) => panic!("unknown SCALE '{other}' (use quick|medium|paper)"),
    }
}

/// Human-readable scale banner.
pub fn banner(name: &str, scale: &ExperimentScale) {
    println!("=== {name} ===");
    println!(
        "scale: {} trajectories, d={}, {} epochs, batch {}, eval {} (set SCALE=quick|medium|paper)\n",
        scale.num_traj, scale.dim, scale.epochs, scale.batch, scale.max_eval
    );
}

/// Print one comparison table in the paper's column order.
pub fn print_table(title: &str, results: &[MethodResult]) {
    println!("\n--- {title} ---");
    println!(
        "{:<24} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "method", "recall", "prec", "F1", "acc", "MAE(m)", "RMSE(m)"
    );
    for r in results {
        println!(
            "{:<24} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>9.2} {:>9.2}",
            r.label, r.recall, r.precision, r.f1, r.accuracy, r.mae_m, r.rmse_m
        );
    }
}

/// Write a JSON record under the workspace-root `results/` directory
/// (anchored via the crate manifest, so binaries, benches and tests all
/// write to the same place regardless of the invocation directory).
pub fn dump_json(name: &str, value: &impl serde::Serialize) {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let dir = dir.canonicalize().unwrap_or(dir);
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(value).unwrap_or_default()
        );
        println!("[results written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_helpers_do_not_panic() {
        let r = MethodResult {
            label: "test".into(),
            recall: 0.5,
            precision: 0.5,
            f1: 0.5,
            accuracy: 0.5,
            mae_m: 100.0,
            rmse_m: 150.0,
            train_secs: 1.0,
            infer_ms: 2.0,
            num_params: 10,
            sr_cases: vec![],
        };
        print_table("t", &[r]);
        let s = ExperimentScale::quick();
        banner("t", &s);
    }
}
