//! Criterion micro-benchmarks for the unified `rntrajrec_nn::kernels`
//! layer: matmul and GAT-aggregate scaling at 1/2/4 intra-op threads.
//! Also writes machine-readable timings to `results/BENCH_kernels.json`
//! (skipped under `cargo test`'s `--test` quick mode).
//!
//! ```bash
//! cargo bench -p rntrajrec-bench --bench kernels
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rntrajrec_bench::dump_json;
use rntrajrec_nn::{kernels, pool, GraphCsr, Tensor};

/// A named benchmark routine.
type Case<'a> = (&'a str, Box<dyn Fn() + 'a>);

const THREADS: [usize; 3] = [1, 2, 4];

struct Fixtures {
    /// Decoder-logits shape: `[1, d] × [d, |V|]` (column-partitioned).
    logits_a: Tensor,
    logits_b: Tensor,
    /// Encoder-projection shape: `[n, d] × [d, d]` (row-partitioned).
    proj_a: Tensor,
    proj_b: Tensor,
    /// Road-graph GAT aggregation.
    csr: Arc<GraphCsr>,
    alphas: Tensor,
    feats: Tensor,
}

fn fixtures() -> Fixtures {
    let mut rng = StdRng::seed_from_u64(42);
    let (v, d, n) = (4096usize, 64usize, 4096usize);
    let lists: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let deg = rng.gen_range(2usize..=6);
            (0..deg).map(|_| rng.gen_range(0..n)).collect()
        })
        .collect();
    let csr = Arc::new(GraphCsr::from_neighbor_lists(&lists, true));
    let e = csr.num_edges();
    Fixtures {
        logits_a: Tensor::uniform(1, d, 1.0, &mut rng),
        logits_b: Tensor::uniform(d, v, 1.0, &mut rng),
        proj_a: Tensor::uniform(n, d, 1.0, &mut rng),
        proj_b: Tensor::uniform(d, d, 1.0, &mut rng),
        csr,
        alphas: Tensor::uniform(e, 1, 1.0, &mut rng),
        feats: Tensor::uniform(n, d, 1.0, &mut rng),
    }
}

/// Mean ns/iter of `f` over a calibrated ~200 ms loop (one warm-up run).
fn time_ns(f: &dyn Fn()) -> f64 {
    f();
    let warm = Instant::now();
    let mut warm_iters = 0u64;
    while warm.elapsed() < Duration::from_millis(50) {
        f();
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per = warm.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let iters = ((0.2 / per.max(1e-9)) as u64).clamp(1, 100_000);
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test" || a == "--list");
    let fx = fixtures();
    let mut c = Criterion::default();

    let cases: Vec<Case> = vec![
        (
            "matmul_1x64x4096",
            Box::new(|| {
                black_box(kernels::matmul(&fx.logits_a, &fx.logits_b));
            }),
        ),
        (
            "matmul_4096x64x64",
            Box::new(|| {
                black_box(kernels::matmul(&fx.proj_a, &fx.proj_b));
            }),
        ),
        (
            "gat_neighbor_sum_4096n",
            Box::new(|| {
                black_box(kernels::neighbor_sum(&fx.alphas, &fx.feats, &fx.csr));
            }),
        ),
        (
            "gat_segmented_softmax_4096n",
            Box::new(|| {
                black_box(kernels::segmented_softmax(&fx.alphas, &fx.csr));
            }),
        ),
    ];

    let mut results = Vec::new();
    let mut group = c.benchmark_group("kernels");
    for (name, f) in &cases {
        let mut per_thread = Vec::new();
        let mut base_ns = 0.0f64;
        for &threads in &THREADS {
            pool::set_num_threads(threads);
            group.bench_function(&format!("{name}/t{threads}"), |b| b.iter(f.as_ref()));
            if !quick {
                let ns = time_ns(f.as_ref());
                if threads == 1 {
                    base_ns = ns;
                }
                per_thread.push(serde_json::json!({
                    "threads": threads,
                    "ns_per_iter": ns,
                    "speedup_vs_1_thread": base_ns / ns,
                }));
            }
        }
        pool::set_num_threads(1);
        if !quick {
            results.push(serde_json::json!({
                "kernel": name,
                "sweep": per_thread,
            }));
        }
    }
    group.finish();

    if !quick {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let json = serde_json::json!({
            "cores": cores,
            "kernels": results,
        });
        dump_json("BENCH_kernels", &json);
    }
}
