//! Criterion benchmark for Fig. 6's x-axis: per-trajectory inference time
//! of every end-to-end method (encoder + greedy decode). Weights are
//! untrained — latency is weight-independent.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use rntrajrec::experiments::ExperimentScale;
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec_models::{FeatureExtractor, SampleInput};
use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
use rntrajrec_synth::{SimConfig, Simulator};

fn bench_inference(c: &mut Criterion) {
    let city = SyntheticCity::generate(CityConfig::tiny());
    let rtree = RTree::build(&city.net);
    let grid = city.net.grid(50.0);
    let fx = FeatureExtractor::new(&city.net, &rtree, grid);
    let mut sim = Simulator::new(&city.net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let input: SampleInput = fx.extract(&sim.sample(&mut rng, 8));
    let scale = ExperimentScale::quick();

    let methods = [
        MethodSpec::T2vec,
        MethodSpec::Transformer,
        MethodSpec::MTrajRec,
        MethodSpec::T3s,
        MethodSpec::Gts,
        MethodSpec::NeuTraj,
        MethodSpec::RnTrajRecN(1),
        MethodSpec::RnTrajRec,
    ];
    let mut g = c.benchmark_group("inference_per_trajectory");
    for spec in methods {
        let model = EndToEnd::build(&spec, &city.net, &grid, scale.dim, 7);
        let name = spec.label().replace([' ', '(', ')', '+'], "_");
        g.bench_function(&name, |b| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| black_box(model.predict(&input, &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
