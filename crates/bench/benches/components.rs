//! Criterion micro-benchmarks for every performance-relevant substrate:
//! spatial index, shortest paths, map matching, simulation, feature
//! extraction, and the neural building blocks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use rntrajrec_geo::XY;
use rntrajrec_mapmatch::{HmmConfig, HmmMatcher};
use rntrajrec_models::{
    FeatureExtractor, GatLayer, GridGnn, GridGnnConfig, TransformerEncoderLayer,
};
use rntrajrec_nn::{ParamStore, Tape, Tensor};
use rntrajrec_roadnet::{CityConfig, RTree, SegmentId, ShortestPaths, SyntheticCity};
use rntrajrec_synth::{SimConfig, Simulator};

fn bench_spatial(c: &mut Criterion) {
    let city = SyntheticCity::generate(CityConfig::default());
    let rtree = RTree::build(&city.net);
    let center = city.net.bbox().center();
    let mut g = c.benchmark_group("spatial");
    g.bench_function("rtree_within_400m", |b| {
        b.iter(|| black_box(rtree.within_radius(&city.net, &center, 400.0)))
    });
    g.bench_function("rtree_nearest", |b| {
        b.iter(|| black_box(rtree.nearest(&city.net, &XY::new(center.x + 13.0, center.y - 31.0))))
    });
    g.bench_function("rtree_build", |b| {
        b.iter(|| black_box(RTree::build(&city.net)))
    });
    g.finish();
}

fn bench_shortest_paths(c: &mut Criterion) {
    let city = SyntheticCity::generate(CityConfig::default());
    let mut sp = ShortestPaths::new(&city.net);
    let n = city.net.num_segments() as u32;
    let mut g = c.benchmark_group("shortest_paths");
    g.bench_function("dijkstra_full", |b| {
        b.iter(|| {
            sp.run(&city.net, SegmentId(0), None, f64::INFINITY);
            black_box(sp.gap_m(SegmentId(n - 1)))
        })
    });
    g.bench_function("dijkstra_capped_2km", |b| {
        b.iter(|| {
            sp.run(&city.net, SegmentId(0), None, 2000.0);
            black_box(sp.gap_m(SegmentId(n / 2)))
        })
    });
    g.finish();
}

fn bench_mapmatch(c: &mut Criterion) {
    let city = SyntheticCity::generate(CityConfig::tiny());
    let rtree = RTree::build(&city.net);
    let mut sim = Simulator::new(&city.net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(5);
    let sample = sim.sample_dense(&mut rng, SegmentId(0));
    let mut matcher = HmmMatcher::new(&city.net, &rtree, HmmConfig::default());
    c.bench_function("hmm_match_33pt_dense", |b| {
        b.iter(|| black_box(matcher.match_trajectory(&sample.raw)))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let city = SyntheticCity::generate(CityConfig::tiny());
    let mut g = c.benchmark_group("simulation");
    g.bench_function("simulate_one_trajectory", |b| {
        b.iter_batched(
            || {
                (
                    Simulator::new(&city.net, SimConfig::default()),
                    StdRng::seed_from_u64(9),
                )
            },
            |(mut sim, mut rng)| black_box(sim.sample(&mut rng, 8)),
            BatchSize::SmallInput,
        )
    });
    let rtree = RTree::build(&city.net);
    let grid = city.net.grid(50.0);
    let fx = FeatureExtractor::new(&city.net, &rtree, grid);
    let mut sim = Simulator::new(&city.net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(10);
    let sample = sim.sample(&mut rng, 8);
    g.bench_function("feature_extraction", |b| {
        b.iter(|| black_box(fx.extract(&sample)))
    });
    g.finish();
}

fn bench_nn_blocks(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("nn_blocks");

    // Dense matmul + backward through a 64x64 product.
    g.bench_function("matmul64_fwd_bwd", |b| {
        let mut store = ParamStore::new();
        let w = store.add("w", 64, 64, rntrajrec_nn::Init::Xavier, &mut rng);
        let x = Tensor::uniform(64, 64, 1.0, &mut rng);
        b.iter(|| {
            let mut tape = Tape::new();
            let xi = tape.leaf(x.clone());
            let wi = tape.param(&store, w);
            let y = tape.matmul(xi, wi);
            let loss = tape.mean_all(y);
            store.zero_grad();
            tape.backward(loss, &mut store);
            black_box(tape.len())
        })
    });

    // Transformer encoder layer forward on [32, 32].
    let mut store = ParamStore::new();
    let layer = TransformerEncoderLayer::new(&mut store, &mut rng, "t", 32, 4, 64);
    let x = Tensor::uniform(32, 32, 1.0, &mut rng);
    g.bench_function("transformer_layer_fwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xi = tape.leaf(x.clone());
            black_box(layer.forward(&mut tape, &store, xi))
        })
    });

    // GAT layer over the tiny city graph.
    let city = SyntheticCity::generate(CityConfig::tiny());
    let mut store = ParamStore::new();
    let gat = GatLayer::new(&mut store, &mut rng, "g", 32, 32, 4);
    let lists: Vec<Vec<usize>> = city
        .net
        .segment_ids()
        .map(|id| {
            city.net
                .neighbors_undirected(id)
                .iter()
                .map(|s| s.index())
                .collect()
        })
        .collect();
    let csr = std::sync::Arc::new(rntrajrec_nn::GraphCsr::from_neighbor_lists(&lists, true));
    let h = Tensor::uniform(city.net.num_segments(), 32, 1.0, &mut rng);
    g.bench_function("gat_layer_city_fwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let hi = tape.leaf(h.clone());
            black_box(gat.forward(&mut tape, &store, hi, &csr))
        })
    });

    // Full GridGNN forward (the per-batch road representation).
    let grid = city.net.grid(50.0);
    let mut store = ParamStore::new();
    let gg = GridGnn::new(
        &mut store,
        &mut rng,
        &city.net,
        &grid,
        GridGnnConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            ..Default::default()
        },
    );
    g.bench_function("gridgnn_fwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            black_box(gg.forward(&mut tape, &store))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spatial,
    bench_shortest_paths,
    bench_mapmatch,
    bench_simulation,
    bench_nn_blocks
);
criterion_main!(benches);
