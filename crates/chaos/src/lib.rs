//! Deterministic fault injection for resilience testing.
//!
//! The serving stack declares named **fault points** at the places where a
//! production deployment actually fails — accepting a connection, reading a
//! request, assembling a batch, dispatching a kernel, writing a response —
//! and this crate decides, per call, whether that point should misbehave.
//! Three fault kinds cover the failure taxonomy the self-healing machinery
//! must survive:
//!
//! - **panic** — the calling thread unwinds (exercises worker supervision
//!   and per-member fallback isolation),
//! - **error** — the point returns a typed [`InjectedFault`] the caller
//!   propagates like any other error (exercises error paths end to end),
//! - **delay** — the calling thread sleeps a configured duration
//!   (exercises watchdogs, deadlines, and brownout controllers).
//!
//! Faults are drawn from a **seeded, per-point deterministic sequence**:
//! the `k`-th evaluation of a given point always produces the same
//! decision for the same `(seed, point, k)`, regardless of thread
//! interleaving across points, so a failing chaos run replays exactly from
//! its seed. Configuration comes from the `CHAOS_FAULTS` / `CHAOS_SEED`
//! environment variables (see [`configure_from_env`]) or programmatically
//! via [`configure`].
//!
//! When no faults are armed — the production configuration — every
//! [`point`] call is a single relaxed atomic load and an immediate return,
//! mirroring the `rntrajrec_obs` disabled fast path.
//!
//! # Spec grammar
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := point '=' kind ('@' prob)? ('x' limit)?
//! kind    := 'panic' | 'error' | 'delay:' millis
//! ```
//!
//! Example: `engine.worker=panic@0.25x2;kernel.dispatch=delay:5@0.01`
//! panics the engine worker on ~25% of batches but at most twice, and adds
//! a 5 ms stall to ~1% of kernel dispatches.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Duration;

/// What an armed fault point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind the calling thread with a panic.
    Panic,
    /// Return a typed [`InjectedFault`] from [`point`].
    Error,
    /// Sleep the calling thread for the given duration, then succeed.
    Delay(Duration),
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Error => write!(f, "error"),
            FaultKind::Delay(d) => write!(f, "delay:{}", d.as_millis()),
        }
    }
}

/// The typed error an `error`-kind fault point returns; carries the point
/// name so callers and logs can attribute the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Name of the fault point that fired.
    pub point: &'static str,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos: injected error at {}", self.point)
    }
}

impl std::error::Error for InjectedFault {}

/// One armed fault point.
#[derive(Debug)]
struct Fault {
    kind: FaultKind,
    /// Probability per evaluation, in `[0, 1]`.
    prob: f64,
    /// Stop firing after this many injections (`None` = unbounded).
    limit: Option<u64>,
    /// Per-point seed: `splitmix64(global_seed ^ fnv1a(name))`.
    seed: u64,
    /// Evaluations so far; the `k`-th evaluation draws
    /// `splitmix64(seed + k)`, so the decision sequence at a point is a
    /// pure function of `(seed, k)` — deterministic under concurrency.
    draws: AtomicU64,
    /// Successful injections so far (bounded by `limit`).
    fired: AtomicU64,
}

#[derive(Debug, Default)]
struct Config {
    faults: HashMap<&'static str, Fault>,
    seed: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn config() -> &'static RwLock<Config> {
    static CONFIG: std::sync::OnceLock<RwLock<Config>> = std::sync::OnceLock::new();
    CONFIG.get_or_init(|| RwLock::new(Config::default()))
}

/// SplitMix64 — the standard 64-bit mixer; good equidistribution from
/// sequential inputs, which is exactly the `seed + k` use here.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the point name: stable, dependency-free name hashing.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Uniform in `[0, 1)` from the top 53 bits.
#[inline]
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Is any fault armed? One relaxed load — the entire disabled-path cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Evaluate a fault point. The no-faults fast path is a single relaxed
/// atomic load. When the point is armed and its draw fires:
/// `panic` unwinds here, `delay` sleeps here and then returns `Ok`, and
/// `error` returns the typed [`InjectedFault`] for the caller to
/// propagate.
#[inline]
pub fn point(name: &'static str) -> Result<(), InjectedFault> {
    if !ENABLED.load(Ordering::Relaxed) {
        return Ok(());
    }
    hit(name)
}

/// [`point`] for infallible call sites (kernel dispatch, accept loops):
/// an injected `error` escalates to a panic so the fault still surfaces
/// through the nearest isolation boundary instead of being dropped.
#[inline]
pub fn point_infallible(name: &'static str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    if let Err(fault) = hit(name) {
        panic!("{fault} (escalated at infallible point)");
    }
}

#[cold]
fn hit(name: &'static str) -> Result<(), InjectedFault> {
    let cfg = config().read().unwrap_or_else(|e| e.into_inner());
    let Some(fault) = cfg.faults.get(name) else {
        return Ok(());
    };
    let k = fault.draws.fetch_add(1, Ordering::Relaxed);
    if u01(splitmix64(fault.seed.wrapping_add(k))) >= fault.prob {
        return Ok(());
    }
    // Respect the injection cap without racing past it: only the winners
    // of the fetch_update actually fire.
    let won = fault
        .fired
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            match fault.limit {
                Some(limit) if n >= limit => None,
                _ => Some(n + 1),
            }
        })
        .is_ok();
    if !won {
        return Ok(());
    }
    match fault.kind {
        FaultKind::Panic => {
            drop(cfg);
            panic!("chaos: injected panic at {name}");
        }
        FaultKind::Delay(d) => {
            drop(cfg);
            std::thread::sleep(d);
            Ok(())
        }
        FaultKind::Error => Err(InjectedFault { point: name }),
    }
}

/// Parse and arm a fault spec (see the crate docs for the grammar) under
/// the given deterministic seed, replacing any previous configuration.
/// An empty spec disarms everything, like [`disarm`].
///
/// # Errors
/// A human-readable message naming the malformed entry.
pub fn configure(spec: &str, seed: u64) -> Result<(), String> {
    let mut faults = HashMap::new();
    for entry in spec
        .split([';', ','])
        .map(str::trim)
        .filter(|e| !e.is_empty())
    {
        let (name, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("chaos spec entry '{entry}': expected point=kind[@prob][xN]"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("chaos spec entry '{entry}': empty point name"));
        }
        let (kind_prob, limit) = match rest.rsplit_once('x') {
            Some((head, lim)) if lim.chars().all(|c| c.is_ascii_digit()) && !lim.is_empty() => {
                (head, Some(lim.parse::<u64>().map_err(|e| e.to_string())?))
            }
            _ => (rest, None),
        };
        let (kind_str, prob) = match kind_prob.split_once('@') {
            Some((k, p)) => (
                k,
                p.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("chaos spec entry '{entry}': bad probability '{p}'"))?,
            ),
            None => (kind_prob, 1.0),
        };
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!(
                "chaos spec entry '{entry}': probability {prob} outside [0,1]"
            ));
        }
        let kind = match kind_str.trim() {
            "panic" => FaultKind::Panic,
            "error" => FaultKind::Error,
            other => match other.strip_prefix("delay:") {
                Some(ms) => {
                    FaultKind::Delay(Duration::from_millis(ms.trim().parse::<u64>().map_err(
                        |_| format!("chaos spec entry '{entry}': bad delay millis '{ms}'"),
                    )?))
                }
                None => {
                    return Err(format!(
                        "chaos spec entry '{entry}': unknown kind '{other}' (panic|error|delay:MS)"
                    ))
                }
            },
        };
        // Point names are &'static in the API; specs arrive as owned
        // strings, so leak each distinct configured name once. Bounded by
        // the number of distinct names ever configured in the process.
        let name: &'static str = Box::leak(name.to_string().into_boxed_str());
        faults.insert(
            name,
            Fault {
                kind,
                prob,
                limit,
                seed: splitmix64(seed ^ fnv1a(name)),
                draws: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            },
        );
    }
    let armed = !faults.is_empty();
    let mut cfg = config().write().unwrap_or_else(|e| e.into_inner());
    cfg.faults = faults;
    cfg.seed = seed;
    ENABLED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Arm faults from the environment: `CHAOS_FAULTS` holds the spec,
/// `CHAOS_SEED` the replay seed (default 0). Returns whether anything was
/// armed; unset/empty `CHAOS_FAULTS` leaves chaos disabled.
///
/// # Errors
/// Propagates [`configure`] parse errors — a misspelled fault spec should
/// fail loudly at boot, not silently run a clean experiment.
pub fn configure_from_env() -> Result<bool, String> {
    let spec = match std::env::var("CHAOS_FAULTS") {
        Ok(s) if !s.trim().is_empty() => s,
        _ => return Ok(false),
    };
    let seed = match std::env::var("CHAOS_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("CHAOS_SEED '{s}' is not a u64"))?,
        Err(_) => 0,
    };
    configure(&spec, seed)?;
    Ok(enabled())
}

/// Disarm every fault point and restore the zero-cost fast path.
pub fn disarm() {
    let mut cfg = config().write().unwrap_or_else(|e| e.into_inner());
    cfg.faults.clear();
    ENABLED.store(false, Ordering::Relaxed);
}

/// Snapshot of one armed fault point's live counters, for `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct PointStats {
    /// Fault point name.
    pub point: &'static str,
    /// Configured fault kind, rendered with the spec grammar.
    pub kind: String,
    /// Configured per-evaluation probability.
    pub prob: f64,
    /// Evaluations so far.
    pub draws: u64,
    /// Injections so far.
    pub fired: u64,
}

/// Live counters for every armed point, sorted by name (stable output for
/// `/metrics` and logs). Empty when disarmed.
pub fn snapshot() -> Vec<PointStats> {
    let cfg = config().read().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<PointStats> = cfg
        .faults
        .iter()
        .map(|(name, f)| PointStats {
            point: name,
            kind: f.kind.to_string(),
            prob: f.prob,
            draws: f.draws.load(Ordering::Relaxed),
            fired: f.fired.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by_key(|s| s.point);
    out
}

/// The seed the current configuration was armed with (0 when disarmed).
pub fn seed() -> u64 {
    config().read().unwrap_or_else(|e| e.into_inner()).seed
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chaos state is process-global; serialize the tests that mutate it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_points_are_free_and_ok() {
        let _g = lock();
        disarm();
        assert!(!enabled());
        for _ in 0..1000 {
            assert!(point("engine.worker").is_ok());
        }
    }

    #[test]
    fn error_points_fire_deterministically_for_a_seed() {
        let _g = lock();
        let run = |seed: u64| -> Vec<bool> {
            configure("p.err=error@0.5", seed).unwrap();
            let v = (0..64).map(|_| point("p.err").is_err()).collect();
            disarm();
            v
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay the same decisions");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().any(|&e| e) && a.iter().any(|&e| !e));
    }

    #[test]
    fn limit_caps_injections() {
        let _g = lock();
        configure("p.lim=error@1.0x3", 1).unwrap();
        let errs = (0..50).filter(|_| point("p.lim").is_err()).count();
        assert_eq!(errs, 3);
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].fired, 3);
        assert_eq!(snap[0].draws, 50);
        disarm();
    }

    #[test]
    fn panic_kind_unwinds_and_infallible_escalates_errors() {
        let _g = lock();
        configure("p.boom=panic@1.0;p.esc=error@1.0", 2).unwrap();
        let caught = std::panic::catch_unwind(|| point("p.boom"));
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| point_infallible("p.esc"));
        assert!(caught.is_err());
        disarm();
    }

    #[test]
    fn delay_kind_sleeps_then_succeeds() {
        let _g = lock();
        configure("p.slow=delay:20@1.0", 3).unwrap();
        let t0 = std::time::Instant::now();
        assert!(point("p.slow").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(15));
        disarm();
    }

    #[test]
    fn unarmed_points_pass_when_others_are_armed() {
        let _g = lock();
        configure("p.other=panic@1.0", 4).unwrap();
        assert!(point("p.unarmed").is_ok());
        disarm();
    }

    #[test]
    fn spec_parser_rejects_malformed_entries() {
        let _g = lock();
        for bad in [
            "nokind",
            "p=weird",
            "p=panic@1.5",
            "p=panic@zero",
            "p=delay:abc",
            "=panic",
        ] {
            assert!(
                configure(bad, 0).is_err(),
                "spec '{bad}' should be rejected"
            );
        }
        // The failed configure must not leave stale faults armed.
        assert!(configure("", 0).is_ok());
        assert!(!enabled());
    }

    #[test]
    fn env_roundtrip_parses_spec_and_seed() {
        let _g = lock();
        std::env::set_var("CHAOS_FAULTS", "p.env=delay:1@0.5");
        std::env::set_var("CHAOS_SEED", "99");
        assert!(configure_from_env().unwrap());
        assert!(enabled());
        assert_eq!(seed(), 99);
        std::env::remove_var("CHAOS_FAULTS");
        std::env::remove_var("CHAOS_SEED");
        disarm();
    }
}
