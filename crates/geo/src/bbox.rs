//! Axis-aligned bounding boxes in the local planar frame.

use crate::XY;

/// Axis-aligned bounding box in metres (local planar frame).
///
/// Used by the R-tree in `rntrajrec-roadnet` and by range queries during
/// sub-graph generation (Section IV-C: "locate the road segments within at
/// most δ meters away from p").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl BBox {
    /// An "empty" box that unions correctly with anything.
    pub fn empty() -> Self {
        Self {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    pub fn from_point(p: &XY) -> Self {
        Self {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    pub fn from_points<'a, I: IntoIterator<Item = &'a XY>>(points: I) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.expand_point(p);
        }
        b
    }

    /// Grow in place to contain `p`.
    pub fn expand_point(&mut self, p: &XY) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grow in place to contain `other`.
    pub fn expand(&mut self, other: &BBox) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Box inflated by `margin` metres on every side.
    pub fn inflated(&self, margin: f64) -> BBox {
        BBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    pub fn center(&self) -> XY {
        XY::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    pub fn contains(&self, p: &XY) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Minimum distance from `p` to this box (0 if inside).
    pub fn dist_to_point(&self, p: &XY) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Area of the union box minus own area — the R-tree insertion heuristic.
    pub fn enlargement(&self, other: &BBox) -> f64 {
        let mut u = *self;
        u.expand(other);
        u.area() - self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BBox {
        BBox::from_points([XY::new(0.0, 0.0), XY::new(10.0, 5.0)].iter())
    }

    #[test]
    fn from_points_covers_all() {
        let b = sample();
        assert_eq!((b.min_x, b.min_y, b.max_x, b.max_y), (0.0, 0.0, 10.0, 5.0));
        assert!(b.contains(&XY::new(5.0, 2.5)));
        assert!(!b.contains(&XY::new(-1.0, 2.5)));
    }

    #[test]
    fn empty_unions_correctly() {
        let mut e = BBox::empty();
        e.expand(&sample());
        assert_eq!(e, sample());
        assert_eq!(BBox::empty().area(), 0.0);
    }

    #[test]
    fn intersection_cases() {
        let b = sample();
        let far = BBox::from_point(&XY::new(100.0, 100.0));
        let touching = BBox::from_points([XY::new(10.0, 5.0), XY::new(20.0, 9.0)].iter());
        assert!(!b.intersects(&far));
        assert!(b.intersects(&touching));
        assert!(b.intersects(&b));
    }

    #[test]
    fn dist_to_point_inside_is_zero() {
        let b = sample();
        assert_eq!(b.dist_to_point(&XY::new(3.0, 3.0)), 0.0);
    }

    #[test]
    fn dist_to_point_outside() {
        let b = sample();
        // 3 m right of the box, aligned vertically.
        assert!((b.dist_to_point(&XY::new(13.0, 2.0)) - 3.0).abs() < 1e-12);
        // Diagonal corner distance.
        let d = b.dist_to_point(&XY::new(13.0, 9.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inflation_grows_symmetrically() {
        let b = sample().inflated(2.0);
        assert_eq!(
            (b.min_x, b.min_y, b.max_x, b.max_y),
            (-2.0, -2.0, 12.0, 7.0)
        );
    }

    #[test]
    fn enlargement_zero_for_contained() {
        let b = sample();
        let inner = BBox::from_point(&XY::new(1.0, 1.0));
        assert_eq!(b.enlargement(&inner), 0.0);
        assert!(inner.enlargement(&b) > 0.0);
    }
}
