//! Polylines (road-segment geometry) and point-to-segment projection.

use crate::{BBox, XY};

/// The result of projecting a point onto a single line segment or polyline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentProjection {
    /// Closest point on the geometry.
    pub point: XY,
    /// Distance from the query point to `point`, in metres.
    pub dist: f64,
    /// Fraction of the *total geometry length* at which `point` lies,
    /// in `[0, 1]`. This is exactly the paper's *moving ratio* `r_j`
    /// (Definition 2) when the geometry is a road segment.
    pub frac: f64,
}

/// A point expressed as a position along a polyline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointOnPolyline {
    pub point: XY,
    /// Metres travelled from the start of the polyline.
    pub offset_m: f64,
}

/// Project `p` onto the segment `a -> b`.
///
/// Returns the closest point, its distance to `p` and the clamped parameter
/// `t ∈ [0,1]` along the segment.
pub fn project_on_segment(p: &XY, a: &XY, b: &XY) -> (XY, f64, f64) {
    let ab = *b - *a;
    let len2 = ab.x * ab.x + ab.y * ab.y;
    let t = if len2 <= f64::EPSILON {
        0.0
    } else {
        (((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len2).clamp(0.0, 1.0)
    };
    let q = a.lerp(b, t);
    (q, p.dist(&q), t)
}

/// A piecewise-linear curve in the local planar frame.
///
/// Road-segment geometry in `rntrajrec-roadnet` is stored as a `Polyline`.
/// Guaranteed to contain at least two vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<XY>,
    /// Cumulative length up to each vertex; `cum[0] == 0`,
    /// `cum[n-1] == total length`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Build a polyline from at least two vertices.
    ///
    /// # Panics
    /// Panics if fewer than two points are supplied.
    pub fn new(points: Vec<XY>) -> Self {
        assert!(points.len() >= 2, "polyline needs at least two vertices");
        let mut cum = Vec::with_capacity(points.len());
        cum.push(0.0);
        for w in points.windows(2) {
            let d = w[0].dist(&w[1]);
            cum.push(cum.last().unwrap() + d);
        }
        Self { points, cum }
    }

    /// Straight segment between two points.
    pub fn segment(a: XY, b: XY) -> Self {
        Self::new(vec![a, b])
    }

    pub fn points(&self) -> &[XY] {
        &self.points
    }

    pub fn first(&self) -> XY {
        self.points[0]
    }

    pub fn last(&self) -> XY {
        *self.points.last().unwrap()
    }

    /// Total length in metres.
    pub fn length(&self) -> f64 {
        *self.cum.last().unwrap()
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.points.iter())
    }

    /// Point at `offset_m` metres from the start (clamped to the ends).
    pub fn point_at_offset(&self, offset_m: f64) -> XY {
        let total = self.length();
        if total <= 0.0 {
            return self.points[0];
        }
        let off = offset_m.clamp(0.0, total);
        // Binary search for the segment containing `off`.
        let i = match self.cum.binary_search_by(|c| c.partial_cmp(&off).unwrap()) {
            Ok(i) => i.min(self.points.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.points.len() - 2),
        };
        let seg_len = self.cum[i + 1] - self.cum[i];
        let t = if seg_len <= f64::EPSILON {
            0.0
        } else {
            (off - self.cum[i]) / seg_len
        };
        self.points[i].lerp(&self.points[i + 1], t)
    }

    /// Point at fraction `frac ∈ [0,1]` of the total length — the paper's
    /// moving-ratio-to-location mapping (`r_j = 0.5` is the midpoint).
    pub fn point_at_fraction(&self, frac: f64) -> XY {
        self.point_at_offset(frac.clamp(0.0, 1.0) * self.length())
    }

    /// Project `p` onto the polyline: closest point over all segments.
    pub fn project(&self, p: &XY) -> SegmentProjection {
        let mut best = SegmentProjection {
            point: self.points[0],
            dist: f64::INFINITY,
            frac: 0.0,
        };
        let total = self.length().max(f64::EPSILON);
        for i in 0..self.points.len() - 1 {
            let (q, d, t) = project_on_segment(p, &self.points[i], &self.points[i + 1]);
            if d < best.dist {
                let off = self.cum[i] + t * (self.cum[i + 1] - self.cum[i]);
                best = SegmentProjection {
                    point: q,
                    dist: d,
                    frac: (off / total).clamp(0.0, 1.0),
                };
            }
        }
        best
    }

    /// Walk the polyline emitting a point every `step_m` metres (including
    /// both endpoints). Used by the trajectory simulator for dense sampling.
    pub fn sample_every(&self, step_m: f64) -> Vec<PointOnPolyline> {
        assert!(step_m > 0.0, "step must be positive");
        let total = self.length();
        let mut out = Vec::with_capacity((total / step_m) as usize + 2);
        let mut off = 0.0;
        while off < total {
            out.push(PointOnPolyline {
                point: self.point_at_offset(off),
                offset_m: off,
            });
            off += step_m;
        }
        out.push(PointOnPolyline {
            point: self.last(),
            offset_m: total,
        });
        out
    }

    /// Reversed copy (for modelling two-way roads as paired directed segments).
    pub fn reversed(&self) -> Polyline {
        let mut pts = self.points.clone();
        pts.reverse();
        Polyline::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        // 100 m east then 50 m north.
        Polyline::new(vec![
            XY::new(0.0, 0.0),
            XY::new(100.0, 0.0),
            XY::new(100.0, 50.0),
        ])
    }

    #[test]
    fn length_is_sum_of_segments() {
        assert_eq!(l_shape().length(), 150.0);
        assert_eq!(
            Polyline::segment(XY::new(0.0, 0.0), XY::new(3.0, 4.0)).length(),
            5.0
        );
    }

    #[test]
    fn point_at_offset_interpolates() {
        let l = l_shape();
        assert_eq!(l.point_at_offset(0.0), XY::new(0.0, 0.0));
        assert_eq!(l.point_at_offset(50.0), XY::new(50.0, 0.0));
        assert_eq!(l.point_at_offset(125.0), XY::new(100.0, 25.0));
        assert_eq!(l.point_at_offset(150.0), XY::new(100.0, 50.0));
        // Clamping beyond the ends.
        assert_eq!(l.point_at_offset(-10.0), XY::new(0.0, 0.0));
        assert_eq!(l.point_at_offset(1e9), XY::new(100.0, 50.0));
    }

    #[test]
    fn fraction_and_offset_agree() {
        let l = l_shape();
        assert_eq!(l.point_at_fraction(0.5), l.point_at_offset(75.0));
    }

    #[test]
    fn project_onto_interior() {
        let l = l_shape();
        let pr = l.project(&XY::new(30.0, 7.0));
        assert_eq!(pr.point, XY::new(30.0, 0.0));
        assert!((pr.dist - 7.0).abs() < 1e-12);
        assert!((pr.frac - 30.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn project_clamps_to_endpoints() {
        let l = l_shape();
        let pr = l.project(&XY::new(-5.0, -5.0));
        assert_eq!(pr.point, XY::new(0.0, 0.0));
        assert_eq!(pr.frac, 0.0);
        let pr = l.project(&XY::new(120.0, 80.0));
        assert_eq!(pr.point, XY::new(100.0, 50.0));
        assert_eq!(pr.frac, 1.0);
    }

    #[test]
    fn project_picks_nearest_of_two_arms() {
        let l = l_shape();
        // Near the vertical arm.
        let pr = l.project(&XY::new(96.0, 30.0));
        assert_eq!(pr.point, XY::new(100.0, 30.0));
    }

    #[test]
    fn sample_every_covers_ends() {
        let l = l_shape();
        let samples = l.sample_every(40.0);
        assert_eq!(samples.first().unwrap().offset_m, 0.0);
        assert_eq!(samples.last().unwrap().offset_m, 150.0);
        assert_eq!(samples.last().unwrap().point, XY::new(100.0, 50.0));
        // 0,40,80,120 + final -> 5 points
        assert_eq!(samples.len(), 5);
    }

    #[test]
    fn reversed_preserves_length() {
        let l = l_shape();
        let r = l.reversed();
        assert_eq!(r.length(), l.length());
        assert_eq!(r.first(), l.last());
        assert_eq!(r.last(), l.first());
    }

    #[test]
    fn degenerate_segment_projection() {
        let (q, d, t) =
            project_on_segment(&XY::new(1.0, 1.0), &XY::new(0.0, 0.0), &XY::new(0.0, 0.0));
        assert_eq!(q, XY::new(0.0, 0.0));
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(t, 0.0);
    }
}
