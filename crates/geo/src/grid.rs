//! The m×n equal-sized grid partition of the study area (Section IV-B).
//!
//! GridGNN "partitions the road network into m×n equal-sized grid cells" and
//! represents each road segment as the sequence of grid cells it passes
//! through. The same grid also supplies the `(x_i, y_i)` grid index that is
//! concatenated into the GPS-point features (Section IV-C) and the grid/time
//! input of the Transformer baseline.

use crate::{Polyline, XY};

/// A grid-cell index: `col` grows east (x), `row` grows north (y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridCell {
    pub col: u32,
    pub row: u32,
}

/// Specification of the uniform grid over the study area.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    pub min_x: f64,
    pub min_y: f64,
    /// Side length of a square cell, in metres (the paper uses 50 m).
    pub cell_m: f64,
    pub cols: u32,
    pub rows: u32,
}

impl GridSpec {
    /// Cover `[min_x, min_x+width] × [min_y, min_y+height]` with square cells
    /// of side `cell_m`.
    pub fn cover(min_x: f64, min_y: f64, width: f64, height: f64, cell_m: f64) -> Self {
        assert!(cell_m > 0.0 && width > 0.0 && height > 0.0);
        Self {
            min_x,
            min_y,
            cell_m,
            cols: (width / cell_m).ceil().max(1.0) as u32,
            rows: (height / cell_m).ceil().max(1.0) as u32,
        }
    }

    /// Total number of cells (`m·n` in the paper's embedding table Σ_grid).
    pub fn num_cells(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Cell containing `p` (clamped to the grid bounds, so out-of-area GPS
    /// noise still maps to a valid border cell).
    pub fn cell_of(&self, p: &XY) -> GridCell {
        let col = ((p.x - self.min_x) / self.cell_m).floor();
        let row = ((p.y - self.min_y) / self.cell_m).floor();
        GridCell {
            col: col.clamp(0.0, (self.cols - 1) as f64) as u32,
            row: row.clamp(0.0, (self.rows - 1) as f64) as u32,
        }
    }

    /// Flat index for embedding lookup (`lookup(g.x, g.y)` in Eq. (1)).
    pub fn flat_index(&self, c: GridCell) -> usize {
        c.row as usize * self.cols as usize + c.col as usize
    }

    /// Centre of a cell.
    pub fn cell_center(&self, c: GridCell) -> XY {
        XY::new(
            self.min_x + (c.col as f64 + 0.5) * self.cell_m,
            self.min_y + (c.row as f64 + 0.5) * self.cell_m,
        )
    }

    /// The ordered, de-duplicated sequence of cells a polyline passes through
    /// — the sequence `S_i = ⟨g̃¹,…,g̃^φ⟩` of Eq. (1).
    ///
    /// Implemented by walking the polyline at quarter-cell resolution, which
    /// is exact for cells of ≥ 4 sample points per crossing and never skips a
    /// cell for the road geometries used here (axis-aligned and diagonal
    /// streets).
    pub fn cells_on_polyline(&self, line: &Polyline) -> Vec<GridCell> {
        let step = (self.cell_m / 4.0).max(0.5);
        let mut out: Vec<GridCell> = Vec::new();
        for s in line.sample_every(step) {
            let c = self.cell_of(&s.point);
            if out.last() != Some(&c) {
                // De-duplicate consecutive repeats but allow genuine revisits.
                if !out.contains(&c) || out.last() != Some(&c) {
                    out.push(c);
                }
            }
        }
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::cover(0.0, 0.0, 1000.0, 500.0, 50.0)
    }

    #[test]
    fn cover_dimensions() {
        let g = grid();
        assert_eq!(g.cols, 20);
        assert_eq!(g.rows, 10);
        assert_eq!(g.num_cells(), 200);
    }

    #[test]
    fn cover_rounds_up() {
        let g = GridSpec::cover(0.0, 0.0, 101.0, 49.0, 50.0);
        assert_eq!(g.cols, 3);
        assert_eq!(g.rows, 1);
    }

    #[test]
    fn cell_of_basic_and_clamped() {
        let g = grid();
        assert_eq!(g.cell_of(&XY::new(0.0, 0.0)), GridCell { col: 0, row: 0 });
        assert_eq!(g.cell_of(&XY::new(75.0, 60.0)), GridCell { col: 1, row: 1 });
        // Clamping out-of-bounds points onto the border cells.
        assert_eq!(
            g.cell_of(&XY::new(-10.0, -10.0)),
            GridCell { col: 0, row: 0 }
        );
        assert_eq!(g.cell_of(&XY::new(1e6, 1e6)), GridCell { col: 19, row: 9 });
    }

    #[test]
    fn flat_index_row_major_unique() {
        let g = grid();
        let mut seen = std::collections::HashSet::new();
        for row in 0..g.rows {
            for col in 0..g.cols {
                assert!(seen.insert(g.flat_index(GridCell { col, row })));
            }
        }
        assert_eq!(seen.len(), g.num_cells());
        assert!(seen.iter().all(|&i| i < g.num_cells()));
    }

    #[test]
    fn cell_center_round_trips() {
        let g = grid();
        let c = GridCell { col: 7, row: 3 };
        assert_eq!(g.cell_of(&g.cell_center(c)), c);
    }

    #[test]
    fn cells_on_horizontal_polyline() {
        let g = grid();
        // 0..200 m east at y=25 crosses cells (0..=4, row 0) — endpoint at
        // x=200 touches col 4.
        let line = Polyline::segment(XY::new(0.0, 25.0), XY::new(200.0, 25.0));
        let cells = g.cells_on_polyline(&line);
        let cols: Vec<u32> = cells.iter().map(|c| c.col).collect();
        assert_eq!(cols, vec![0, 1, 2, 3, 4]);
        assert!(cells.iter().all(|c| c.row == 0));
    }

    #[test]
    fn cells_on_l_shaped_polyline() {
        let g = grid();
        let line = Polyline::new(vec![
            XY::new(25.0, 25.0),
            XY::new(125.0, 25.0),
            XY::new(125.0, 125.0),
        ]);
        let cells = g.cells_on_polyline(&line);
        assert_eq!(cells.first(), Some(&GridCell { col: 0, row: 0 }));
        assert_eq!(cells.last(), Some(&GridCell { col: 2, row: 2 }));
        // Path is monotone: no duplicates at all.
        let mut dedup = cells.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), cells.len());
    }

    #[test]
    fn short_segment_single_cell() {
        let g = grid();
        let line = Polyline::segment(XY::new(10.0, 10.0), XY::new(12.0, 11.0));
        assert_eq!(
            g.cells_on_polyline(&line),
            vec![GridCell { col: 0, row: 0 }]
        );
    }
}
