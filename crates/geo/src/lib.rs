//! Geodesy and planar-geometry primitives for the RNTrajRec reproduction.
//!
//! The paper works with raw GPS points (latitude/longitude, WGS-84) and with
//! distances measured in metres on the road network. Everything downstream
//! (road graph, simulator, map matching, sub-graph generation) is far easier
//! and faster in a local planar frame, so this crate provides:
//!
//! * [`GeoPoint`] — a latitude/longitude pair with spherical (haversine)
//!   distance, matching the paper's "spherical distance" in Eq. (5).
//! * [`Projection`] — a local equirectangular projection mapping geographic
//!   coordinates to metre-valued planar [`XY`] coordinates. For city-scale
//!   extents (≤ ~50 km, cf. Table II) the projection error versus haversine
//!   is far below GPS noise (property-tested below 0.5 %).
//! * [`XY`] / segment / polyline helpers — projections of points onto
//!   segments, interpolation along polylines, bounding boxes.
//! * [`GridSpec`] — the m×n equal-sized grid partition used by GridGNN
//!   (Section IV-B) including the grid-cell sequence a polyline passes
//!   through (the `S_i` sequence of Eq. (1)).

mod bbox;
mod grid;
mod point;
mod polyline;

pub use bbox::BBox;
pub use grid::{GridCell, GridSpec};
pub use point::{GeoPoint, Projection, EARTH_RADIUS_M, XY};
pub use polyline::{PointOnPolyline, Polyline, SegmentProjection};
