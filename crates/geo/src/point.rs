//! Geographic and planar point types.

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 latitude/longitude pair, in degrees.
///
/// Latitude is positive north, longitude positive east. This is the type of
/// the *raw GPS points* `p_i` in the paper's Definition 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    pub lat: f64,
    pub lng: f64,
}

impl GeoPoint {
    pub fn new(lat: f64, lng: f64) -> Self {
        Self { lat, lng }
    }

    /// Great-circle (haversine) distance to `other`, in metres.
    ///
    /// This is the "spherical distance" the paper uses in Eq. (5) when
    /// weighting road segments around a GPS point.
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lng1) = (self.lat.to_radians(), self.lng.to_radians());
        let (lat2, lng2) = (other.lat.to_radians(), other.lng.to_radians());
        let dlat = lat2 - lat1;
        let dlng = lng2 - lng1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

/// A point in a local planar frame, in metres.
///
/// `x` grows east, `y` grows north. Produced by [`Projection::to_xy`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct XY {
    pub x: f64,
    pub y: f64,
}

impl XY {
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance in metres.
    pub fn dist(&self, other: &XY) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt in hot comparisons).
    pub fn dist2(&self, other: &XY) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: &XY, t: f64) -> XY {
        XY::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }
}

impl std::ops::Sub for XY {
    type Output = XY;
    fn sub(self, rhs: XY) -> XY {
        XY::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Add for XY {
    type Output = XY;
    fn add(self, rhs: XY) -> XY {
        XY::new(self.x + rhs.x, self.y + rhs.y)
    }
}

/// Local equirectangular projection anchored at a reference point.
///
/// Maps [`GeoPoint`]s to metre-valued [`XY`] coordinates:
/// `x = R · Δλ · cos(φ₀)`, `y = R · Δφ` (radians). For the city-scale areas
/// in Table II (≤ 23 km × 31 km) the error against haversine is well under
/// 0.5 %, i.e. far below the GPS noise (≈ 5 m radius) the paper models.
#[derive(Debug, Clone, Copy)]
pub struct Projection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl Projection {
    pub fn new(origin: GeoPoint) -> Self {
        Self {
            origin,
            cos_lat0: origin.lat.to_radians().cos(),
        }
    }

    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Project a geographic point into the local planar frame.
    pub fn to_xy(&self, p: &GeoPoint) -> XY {
        let dlat = (p.lat - self.origin.lat).to_radians();
        let dlng = (p.lng - self.origin.lng).to_radians();
        XY::new(EARTH_RADIUS_M * dlng * self.cos_lat0, EARTH_RADIUS_M * dlat)
    }

    /// Inverse projection back to latitude/longitude.
    pub fn to_geo(&self, p: &XY) -> GeoPoint {
        let dlat = p.y / EARTH_RADIUS_M;
        let dlng = p.x / (EARTH_RADIUS_M * self.cos_lat0);
        GeoPoint::new(
            self.origin.lat + dlat.to_degrees(),
            self.origin.lng + dlng.to_degrees(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GeoPoint::new(31.23, 121.47);
        assert_eq!(p.haversine_m(&p), 0.0);
    }

    #[test]
    fn haversine_known_distance() {
        // One degree of latitude is ~111.2 km.
        let a = GeoPoint::new(31.0, 121.0);
        let b = GeoPoint::new(32.0, 121.0);
        let d = a.haversine_m(&b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn haversine_symmetric() {
        let a = GeoPoint::new(31.1, 121.2);
        let b = GeoPoint::new(31.4, 121.9);
        assert!((a.haversine_m(&b) - b.haversine_m(&a)).abs() < 1e-9);
    }

    #[test]
    fn projection_round_trip() {
        let proj = Projection::new(GeoPoint::new(31.2, 121.5));
        let p = GeoPoint::new(31.25, 121.55);
        let back = proj.to_geo(&proj.to_xy(&p));
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lng - p.lng).abs() < 1e-9);
    }

    #[test]
    fn projection_close_to_haversine_at_city_scale() {
        let origin = GeoPoint::new(31.2, 121.5);
        let proj = Projection::new(origin);
        // ~15 km east and ~10 km north of origin.
        let p = GeoPoint::new(31.29, 121.66);
        let planar = proj.to_xy(&origin).dist(&proj.to_xy(&p));
        let sphere = origin.haversine_m(&p);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 0.005, "relative error {rel_err}");
    }

    #[test]
    fn xy_lerp_endpoints_and_middle() {
        let a = XY::new(0.0, 0.0);
        let b = XY::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), XY::new(5.0, 10.0));
    }

    #[test]
    fn xy_dist2_matches_dist() {
        let a = XY::new(1.0, 2.0);
        let b = XY::new(4.0, 6.0);
        assert!((a.dist(&b).powi(2) - a.dist2(&b)).abs() < 1e-9);
        assert_eq!(a.dist(&b), 5.0);
    }
}
