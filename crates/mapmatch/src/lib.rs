//! Map matching and classic trajectory post-processing.
//!
//! Three roles in the reproduction:
//!
//! 1. **Ground truth**: the paper obtains training targets by running
//!    HMM map matching ([Newson & Krumm 2009]) on dense raw traces followed
//!    by linear interpolation. [`HmmMatcher`] implements that algorithm.
//! 2. **Two-stage baselines**: `Linear + HMM` (Table III) interpolates the
//!    low-sample input to the target rate and map-matches it;
//!    `DHTR + HMM` replaces interpolation with a learned seq2seq predictor
//!    plus a [`KalmanSmoother`] (the neural part lives in
//!    `rntrajrec-models`).
//! 3. **Constraint-mask support**: emission weighting `exp(-d²/β²)` shared
//!    with the decoder's mask (Section V).
//!
//! [Newson & Krumm 2009]: https://doi.org/10.1145/1653771.1653818

mod hmm;
mod interp;
mod kalman;

pub use hmm::{HmmConfig, HmmMatcher};
pub use interp::linear_interpolate;
pub use kalman::KalmanSmoother;

use rntrajrec_roadnet::{RTree, RoadNetwork};
use rntrajrec_synth::{MatchedTrajectory, RawTrajectory};

/// The `Linear + HMM` two-stage baseline (Table III, first row):
/// linearly interpolate the low-sample raw trajectory to the ϵρ rate, then
/// HMM-map-match the densified trace.
pub fn linear_hmm(
    net: &RoadNetwork,
    rtree: &RTree,
    raw: &RawTrajectory,
    eps_rho_s: f64,
    target_len: usize,
    config: &HmmConfig,
) -> MatchedTrajectory {
    let dense = linear_interpolate(raw, eps_rho_s, target_len);
    let mut matcher = HmmMatcher::new(net, rtree, config.clone());
    matcher.match_trajectory(&dense)
}
