//! Constant-velocity Kalman filter + RTS smoother (for the DHTR baseline).
//!
//! DHTR [19] refines the seq2seq-predicted dense trajectory with a Kalman
//! filter before map matching. The paper cites Kalman (1960) without more
//! detail, so we use the standard 2-D constant-velocity model:
//! state `[x, y, vx, vy]`, position observations, white-noise acceleration.

use rntrajrec_geo::XY;

/// 4-state constant-velocity Kalman smoother over planar positions.
#[derive(Debug, Clone)]
pub struct KalmanSmoother {
    /// Process noise spectral density (m²/s³); larger = trusts motion less.
    pub process_noise: f64,
    /// Observation noise standard deviation (m).
    pub obs_noise_std: f64,
}

impl Default for KalmanSmoother {
    fn default() -> Self {
        Self {
            process_noise: 1.0,
            obs_noise_std: 15.0,
        }
    }
}

type Vec4 = [f64; 4];
type Mat4 = [[f64; 4]; 4];

impl KalmanSmoother {
    /// Forward filter + Rauch–Tung–Striebel backward smoother.
    ///
    /// `dt` is the (uniform) sampling interval. Returns smoothed positions;
    /// inputs of length < 3 are returned unchanged (nothing to smooth).
    pub fn smooth(&self, points: &[XY], dt: f64) -> Vec<XY> {
        if points.len() < 3 {
            return points.to_vec();
        }
        let n = points.len();
        let f = transition(dt);
        let q = process_cov(dt, self.process_noise);
        let r = self.obs_noise_std * self.obs_noise_std;

        // Forward pass, storing predicted & filtered (mean, cov).
        let mut xs_pred: Vec<Vec4> = Vec::with_capacity(n);
        let mut ps_pred: Vec<Mat4> = Vec::with_capacity(n);
        let mut xs_filt: Vec<Vec4> = Vec::with_capacity(n);
        let mut ps_filt: Vec<Mat4> = Vec::with_capacity(n);

        let mut x: Vec4 = [points[0].x, points[0].y, 0.0, 0.0];
        let mut p: Mat4 = diag([r, r, 100.0, 100.0]);
        for (i, z) in points.iter().enumerate() {
            let (x_pred, p_pred) = if i == 0 {
                (x, p)
            } else {
                let xp = mat_vec(&f, &x);
                let pp = mat_add(&mat_mul(&mat_mul(&f, &p), &transpose(&f)), &q);
                (xp, pp)
            };
            xs_pred.push(x_pred);
            ps_pred.push(p_pred);

            // Update with position observation H = [I2 0].
            let s = [
                [p_pred[0][0] + r, p_pred[0][1]],
                [p_pred[1][0], p_pred[1][1] + r],
            ];
            let s_inv = inv2(&s);
            // K = P Hᵀ S⁻¹ (4×2).
            let mut k = [[0.0; 2]; 4];
            for a in 0..4 {
                for b in 0..2 {
                    k[a][b] = p_pred[a][0] * s_inv[0][b] + p_pred[a][1] * s_inv[1][b];
                }
            }
            let innov = [z.x - x_pred[0], z.y - x_pred[1]];
            for a in 0..4 {
                x[a] = x_pred[a] + k[a][0] * innov[0] + k[a][1] * innov[1];
            }
            // P = (I - K H) P_pred.
            let mut kh = [[0.0; 4]; 4];
            for a in 0..4 {
                kh[a][0] = k[a][0];
                kh[a][1] = k[a][1];
            }
            let mut imkh = identity();
            for a in 0..4 {
                for b in 0..4 {
                    imkh[a][b] -= kh[a][b];
                }
            }
            p = mat_mul(&imkh, &p_pred);
            xs_filt.push(x);
            ps_filt.push(p);
        }

        // RTS backward pass.
        let mut xs_smooth = xs_filt.clone();
        let mut ps_smooth = ps_filt.clone();
        for i in (0..n - 1).rev() {
            // C = P_filt[i] Fᵀ P_pred[i+1]⁻¹.
            let p_pred_inv = inv4(&ps_pred[i + 1]);
            let c = mat_mul(&mat_mul(&ps_filt[i], &transpose(&f)), &p_pred_inv);
            let dx: Vec4 = std::array::from_fn(|a| xs_smooth[i + 1][a] - xs_pred[i + 1][a]);
            let corr = mat_vec(&c, &dx);
            for a in 0..4 {
                xs_smooth[i][a] = xs_filt[i][a] + corr[a];
            }
            let dp = mat_sub(&ps_smooth[i + 1], &ps_pred[i + 1]);
            let cpct = mat_mul(&mat_mul(&c, &dp), &transpose(&c));
            ps_smooth[i] = mat_add(&ps_filt[i], &cpct);
        }
        xs_smooth.iter().map(|x| XY::new(x[0], x[1])).collect()
    }
}

fn transition(dt: f64) -> Mat4 {
    let mut f = identity();
    f[0][2] = dt;
    f[1][3] = dt;
    f
}

fn process_cov(dt: f64, q: f64) -> Mat4 {
    // White-noise acceleration model.
    let (dt2, dt3) = (dt * dt, dt * dt * dt);
    let mut m = [[0.0; 4]; 4];
    m[0][0] = q * dt3 / 3.0;
    m[1][1] = q * dt3 / 3.0;
    m[0][2] = q * dt2 / 2.0;
    m[2][0] = q * dt2 / 2.0;
    m[1][3] = q * dt2 / 2.0;
    m[3][1] = q * dt2 / 2.0;
    m[2][2] = q * dt;
    m[3][3] = q * dt;
    m
}

fn identity() -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn diag(d: Vec4) -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = d[i];
    }
    m
}

fn transpose(a: &Mat4) -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            m[i][j] = a[j][i];
        }
    }
    m
}

fn mat_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..4 {
                m[i][j] += aik * b[k][j];
            }
        }
    }
    m
}

fn mat_add(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut m = *a;
    for i in 0..4 {
        for j in 0..4 {
            m[i][j] += b[i][j];
        }
    }
    m
}

fn mat_sub(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut m = *a;
    for i in 0..4 {
        for j in 0..4 {
            m[i][j] -= b[i][j];
        }
    }
    m
}

fn mat_vec(a: &Mat4, v: &Vec4) -> Vec4 {
    std::array::from_fn(|i| (0..4).map(|j| a[i][j] * v[j]).sum())
}

fn inv2(s: &[[f64; 2]; 2]) -> [[f64; 2]; 2] {
    let det = s[0][0] * s[1][1] - s[0][1] * s[1][0];
    let d = 1.0 / det;
    [[s[1][1] * d, -s[0][1] * d], [-s[1][0] * d, s[0][0] * d]]
}

/// Gauss–Jordan inverse; covariance matrices here are well-conditioned.
fn inv4(a: &Mat4) -> Mat4 {
    let mut aug = [[0.0f64; 8]; 4];
    for i in 0..4 {
        aug[i][..4].copy_from_slice(&a[i]);
        aug[i][4 + i] = 1.0;
    }
    for col in 0..4 {
        // Partial pivot.
        let pivot = (col..4)
            .max_by(|&x, &y| aug[x][col].abs().total_cmp(&aug[y][col].abs()))
            .unwrap();
        aug.swap(col, pivot);
        let d = aug[col][col];
        for x in aug[col].iter_mut() {
            *x /= d;
        }
        let pivot_row = aug[col];
        for (row, r) in aug.iter_mut().enumerate() {
            if row != col {
                let f = r[col];
                for (x, &p) in r.iter_mut().zip(&pivot_row) {
                    *x -= f * p;
                }
            }
        }
    }
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        out[i].copy_from_slice(&aug[i][4..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rntrajrec_synth::gauss;

    #[test]
    fn short_inputs_pass_through() {
        let ks = KalmanSmoother::default();
        let pts = vec![XY::new(0.0, 0.0), XY::new(1.0, 1.0)];
        assert_eq!(ks.smooth(&pts, 1.0), pts);
    }

    #[test]
    fn smoothing_reduces_noise_on_straight_line() {
        let ks = KalmanSmoother::default();
        let mut rng = StdRng::seed_from_u64(3);
        let dt = 10.0;
        let speed = 12.0;
        let truth: Vec<XY> = (0..40)
            .map(|i| XY::new(i as f64 * speed * dt, 0.0))
            .collect();
        let noisy: Vec<XY> = truth
            .iter()
            .map(|p| XY::new(p.x + 15.0 * gauss(&mut rng), p.y + 15.0 * gauss(&mut rng)))
            .collect();
        let smoothed = ks.smooth(&noisy, dt);
        let rmse = |pts: &[XY]| {
            (pts.iter().zip(&truth).map(|(a, b)| a.dist2(b)).sum::<f64>() / truth.len() as f64)
                .sqrt()
        };
        assert!(
            rmse(&smoothed) < 0.8 * rmse(&noisy),
            "smoother should cut noise: {} vs {}",
            rmse(&smoothed),
            rmse(&noisy)
        );
    }

    #[test]
    fn noise_free_input_nearly_unchanged() {
        let ks = KalmanSmoother {
            process_noise: 5.0,
            obs_noise_std: 5.0,
        };
        let dt = 10.0;
        let truth: Vec<XY> = (0..20).map(|i| XY::new(i as f64 * 100.0, 50.0)).collect();
        let smoothed = ks.smooth(&truth, dt);
        for (a, b) in smoothed.iter().zip(&truth) {
            assert!(a.dist(b) < 10.0, "deviation {}", a.dist(b));
        }
    }

    #[test]
    fn inv4_inverts() {
        let m: Mat4 = [
            [4.0, 1.0, 0.0, 0.5],
            [1.0, 3.0, 0.2, 0.0],
            [0.0, 0.2, 2.0, 0.1],
            [0.5, 0.0, 0.1, 1.0],
        ];
        let inv = inv4(&m);
        let prod = mat_mul(&m, &inv);
        for (i, row) in prod.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-9, "prod[{i}][{j}]={v}");
            }
        }
    }
}
