//! Newson–Krumm HMM map matching ([14] in the paper).
//!
//! Candidates come from the R-tree within `candidate_radius_m` of each raw
//! point. Emission probability is a zero-mean Gaussian of the point-to-
//! segment distance; transition probability is exponential in the absolute
//! difference between route distance and great-circle distance; decoding is
//! Viterbi in log space. Follows the original paper's parameterisation
//! (σ_z from GPS noise, β from route-circuitousness statistics).

use rntrajrec_geo::XY;
use rntrajrec_roadnet::{RTree, RadiusHit, RoadNetwork, RoadPosition, ShortestPaths};
use rntrajrec_synth::{MatchedPoint, MatchedTrajectory, RawTrajectory};

/// Parameters of the HMM matcher.
#[derive(Debug, Clone)]
pub struct HmmConfig {
    /// Emission (GPS) noise standard deviation σ_z, metres.
    pub sigma_z_m: f64,
    /// Transition scale β, metres.
    pub beta_m: f64,
    /// Candidate search radius, metres.
    pub candidate_radius_m: f64,
    /// Max candidates per point (nearest first).
    pub max_candidates: usize,
    /// Route-length search cap per candidate pair, as a multiple of the
    /// great-circle distance (plus a constant floor).
    pub route_cap_factor: f64,
}

impl Default for HmmConfig {
    fn default() -> Self {
        Self {
            sigma_z_m: 15.0,
            beta_m: 30.0,
            candidate_radius_m: 120.0,
            max_candidates: 12,
            route_cap_factor: 6.0,
        }
    }
}

/// HMM map matcher bound to one road network + spatial index.
pub struct HmmMatcher<'a> {
    net: &'a RoadNetwork,
    rtree: &'a RTree,
    sp: ShortestPaths,
    pub config: HmmConfig,
}

impl<'a> HmmMatcher<'a> {
    pub fn new(net: &'a RoadNetwork, rtree: &'a RTree, config: HmmConfig) -> Self {
        Self {
            net,
            rtree,
            sp: ShortestPaths::new(net),
            config,
        }
    }

    /// Viterbi-decode the most likely `(segment, ratio)` sequence for `raw`.
    ///
    /// Points with no candidate within the radius fall back to the globally
    /// nearest segment. A transition with no feasible route is allowed at a
    /// large fixed penalty (Newson–Krumm's "broken" case) so the decoder
    /// always returns a full-length trajectory.
    pub fn match_trajectory(&mut self, raw: &RawTrajectory) -> MatchedTrajectory {
        assert!(!raw.is_empty(), "cannot match an empty trajectory");
        let cands: Vec<Vec<RadiusHit>> =
            raw.points.iter().map(|p| self.candidates(&p.xy)).collect();

        const BROKEN: f64 = -1.0e4;
        let emit = |hit: &RadiusHit| -> f64 {
            let z = hit.projection.dist / self.config.sigma_z_m;
            -0.5 * z * z
        };

        // Viterbi tables.
        let mut score: Vec<Vec<f64>> = Vec::with_capacity(cands.len());
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(cands.len());
        score.push(cands[0].iter().map(emit).collect());
        back.push(vec![0; cands[0].len()]);

        for i in 1..cands.len() {
            let gc = raw.points[i - 1].xy.dist(&raw.points[i].xy);
            let cap = self.config.route_cap_factor * gc + 2_000.0;
            let prev = &cands[i - 1];
            let cur = &cands[i];
            let mut col = vec![f64::NEG_INFINITY; cur.len()];
            let mut bk = vec![0usize; cur.len()];
            // One bounded Dijkstra per previous candidate.
            for (pi, pc) in prev.iter().enumerate() {
                let base = score[i - 1][pi];
                if base <= f64::NEG_INFINITY / 2.0 {
                    continue;
                }
                self.sp.run(self.net, pc.seg, None, cap);
                for (ci, cc) in cur.iter().enumerate() {
                    let route = self.route_dist(pc, cc);
                    let trans = match route {
                        Some(d) => -((d - gc).abs() / self.config.beta_m),
                        None => BROKEN,
                    };
                    let s = base + trans + emit(cc);
                    if s > col[ci] {
                        col[ci] = s;
                        bk[ci] = pi;
                    }
                }
            }
            score.push(col);
            back.push(bk);
        }

        // Backtrack.
        let n = cands.len();
        let mut idx = (0..score[n - 1].len())
            .max_by(|&a, &b| score[n - 1][a].total_cmp(&score[n - 1][b]))
            .unwrap_or(0);
        let mut order = vec![0usize; n];
        for i in (0..n).rev() {
            order[i] = idx;
            idx = back[i][idx];
        }

        MatchedTrajectory {
            points: raw
                .points
                .iter()
                .zip(order.iter().enumerate())
                .map(|(p, (i, &ci))| {
                    let hit = &cands[i][ci];
                    MatchedPoint {
                        pos: RoadPosition::new(hit.seg, hit.projection.frac),
                        t: p.t,
                    }
                })
                .collect(),
        }
    }

    fn candidates(&self, p: &XY) -> Vec<RadiusHit> {
        let mut hits = self
            .rtree
            .within_radius(self.net, p, self.config.candidate_radius_m);
        hits.truncate(self.config.max_candidates);
        if hits.is_empty() {
            // Fallback: globally nearest segment keeps the chain alive.
            hits.extend(self.rtree.nearest(self.net, p));
        }
        hits
    }

    /// Directed route distance between candidate positions using the
    /// distances of the Dijkstra run currently loaded in `self.sp`
    /// (source = `from.seg`).
    fn route_dist(&self, from: &RadiusHit, to: &RadiusHit) -> Option<f64> {
        let from_pos = RoadPosition::new(from.seg, from.projection.frac);
        let to_pos = RoadPosition::new(to.seg, to.projection.frac);
        if from.seg == to.seg && to_pos.frac >= from_pos.frac {
            return Some((to_pos.frac - from_pos.frac) * self.net.segment(from.seg).length());
        }
        let gap = self.sp.gap_m(to.seg)?;
        Some(from_pos.remaining_m(self.net) + gap + to_pos.offset_m(self.net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rntrajrec_roadnet::{CityConfig, SegmentId, SyntheticCity};
    use rntrajrec_synth::{RawPoint, SimConfig, Simulator};

    fn setup() -> (SyntheticCity, RTree) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        (city, rtree)
    }

    /// Segment-level accuracy of a match against ground truth.
    fn accuracy(got: &MatchedTrajectory, truth: &MatchedTrajectory) -> f64 {
        let hits = got
            .points
            .iter()
            .zip(&truth.points)
            .filter(|(a, b)| a.pos.seg == b.pos.seg)
            .count();
        hits as f64 / truth.points.len() as f64
    }

    #[test]
    fn noise_free_dense_trace_is_recovered_exactly() {
        let (city, rtree) = setup();
        let cfg = SimConfig {
            gps_noise_std_m: 0.0,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&city.net, cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let mut matcher = HmmMatcher::new(&city.net, &rtree, HmmConfig::default());
        for origin in [SegmentId(0), city.elevated[0]] {
            let s = sim.sample_dense(&mut rng, origin);
            let got = matcher.match_trajectory(&s.raw);
            let acc = accuracy(&got, &s.target);
            assert!(acc > 0.95, "noise-free accuracy {acc} from {origin}");
        }
    }

    #[test]
    fn noisy_dense_trace_is_mostly_recovered() {
        let (city, rtree) = setup();
        let cfg = SimConfig {
            gps_noise_std_m: 10.0,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&city.net, cfg);
        let mut rng = StdRng::seed_from_u64(12);
        let mut matcher = HmmMatcher::new(&city.net, &rtree, HmmConfig::default());
        let mut total = 0.0;
        let n = 5;
        for i in 0..n {
            let s = sim.sample_dense(&mut rng, SegmentId(i * 7));
            let got = matcher.match_trajectory(&s.raw);
            total += accuracy(&got, &s.target);
        }
        let mean = total / n as f64;
        assert!(mean > 0.7, "mean noisy accuracy {mean}");
    }

    #[test]
    fn output_preserves_timestamps_and_length() {
        let (city, rtree) = setup();
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(13);
        let s = sim.sample_dense(&mut rng, SegmentId(3));
        let mut matcher = HmmMatcher::new(&city.net, &rtree, HmmConfig::default());
        let got = matcher.match_trajectory(&s.raw);
        assert_eq!(got.len(), s.raw.len());
        for (g, r) in got.points.iter().zip(&s.raw.points) {
            assert_eq!(g.t, r.t);
        }
    }

    #[test]
    fn far_away_point_falls_back_to_nearest() {
        let (city, rtree) = setup();
        let raw = RawTrajectory {
            points: vec![RawPoint {
                xy: XY::new(-5_000.0, -5_000.0),
                t: 0.0,
            }],
        };
        let mut matcher = HmmMatcher::new(&city.net, &rtree, HmmConfig::default());
        let got = matcher.match_trajectory(&raw);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn transitions_prefer_route_consistency() {
        // Two points along the same street must match to connected
        // segments, not to a parallel street.
        let (city, rtree) = setup();
        let seg = city.net.segment(SegmentId(0));
        let a = seg.geometry.point_at_fraction(0.3);
        let b = seg.geometry.point_at_fraction(0.9);
        let raw = RawTrajectory {
            points: vec![RawPoint { xy: a, t: 0.0 }, RawPoint { xy: b, t: 12.0 }],
        };
        let mut matcher = HmmMatcher::new(&city.net, &rtree, HmmConfig::default());
        let got = matcher.match_trajectory(&raw);
        assert_eq!(got.points[0].pos.seg, got.points[1].pos.seg);
    }

    #[test]
    fn linear_hmm_pipeline_runs_end_to_end() {
        let (city, rtree) = setup();
        let mut sim = Simulator::new(&city.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(14);
        let s = sim.sample(&mut rng, 8);
        let got = crate::linear_hmm(
            &city.net,
            &rtree,
            &s.raw,
            12.0,
            s.target.len(),
            &HmmConfig::default(),
        );
        assert_eq!(got.len(), s.target.len());
        // It should still beat random: some points correct.
        let acc = accuracy(&got, &s.target);
        assert!(acc > 0.05, "linear+hmm accuracy {acc}");
    }
}
