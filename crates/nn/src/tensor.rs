//! Dense 2-D row-major `f32` matrices.

use rand::Rng;

/// A dense 2-D matrix. Row-major storage: element `(r, c)` is
/// `data[r * cols + c]`. Vectors are `[1, C]`, scalars `[1, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// A `[1, C]` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        Self {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// A `[1, 1]` scalar.
    pub fn scalar(v: f32) -> Self {
        Self {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// Uniform init in `[-a, a]`.
    pub fn uniform(rows: usize, cols: usize, a: f32, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot uniform init: `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        Self::uniform(rows, cols, a, rng)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Scalar value of a `[1,1]` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar tensor");
        self.data[0]
    }

    /// Borrow row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Index of the maximum entry in row `r` (first index on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row_slice(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if all entries are finite (NaN guard for tests/training).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Max absolute element-wise difference (for tests).
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_shape() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.len(), 6);
        assert!(z.data.iter().all(|&x| x == 0.0));
        assert_eq!(Tensor::scalar(4.0).item(), 4.0);
        assert_eq!(Tensor::row(vec![1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_set_row_major() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 7.0);
        assert_eq!(t.get(1, 2), 7.0);
        assert_eq!(t.data[5], 7.0);
        assert_eq!(t.row_slice(1), &[0.0, 0.0, 7.0]);
    }

    #[test]
    fn argmax_row_picks_first_max() {
        let t = Tensor::from_vec(2, 3, vec![0.0, 5.0, 5.0, -1.0, -2.0, -3.0]);
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.argmax_row(1), 0);
    }

    #[test]
    fn xavier_scale_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(30, 30, &mut rng);
        let a = (6.0f32 / 60.0).sqrt();
        assert!(t.data.iter().all(|&x| x.abs() <= a));
        // Not all-zero.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn norm_is_frobenius() {
        let t = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(t.norm(), 5.0);
    }

    #[test]
    fn finite_guard() {
        let mut t = Tensor::zeros(1, 2);
        assert!(t.all_finite());
        t.data[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
