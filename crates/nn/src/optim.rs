//! Optimizers: Adam (the paper trains everything with Adam, §VI-A3) and SGD.

use crate::{ParamStore, Tensor};

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. Standard stabiliser for RNN/transformer
/// training at small batch sizes.
pub fn clip_global_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in &store.params {
        total += p.grad.data.iter().map(|x| x * x).sum::<f32>();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for p in &mut store.params {
            p.grad.data.iter_mut().for_each(|x| *x *= s);
        }
    }
    norm
}

/// Plain stochastic gradient descent (used by tests as the simplest sanity
/// optimizer).
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    pub fn step(&self, store: &mut ParamStore) {
        for p in &mut store.params {
            for (v, g) in p.value.data.iter_mut().zip(&p.grad.data) {
                *v -= self.lr * g;
            }
        }
    }
}

/// Adam (Kingma & Ba 2014) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// The paper's setting: learning rate `1e-3`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    pub fn step_count(&self) -> u64 {
        self.t
    }

    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in &mut store.params {
            let (rows, cols) = p.value.shape();
            let m = p.m.get_or_insert_with(|| Tensor::zeros(rows, cols));
            let v = p.v.get_or_insert_with(|| Tensor::zeros(rows, cols));
            for i in 0..p.value.data.len() {
                let g = p.grad.data[i];
                m.data[i] = self.beta1 * m.data[i] + (1.0 - self.beta1) * g;
                v.data[i] = self.beta2 * v.data[i] + (1.0 - self.beta2) * g * g;
                let mh = m.data[i] / b1t;
                let vh = v.data[i] / b2t;
                p.value.data[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, Tape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimise `(w - 3)²` — both optimizers must converge to w = 3.
    fn quadratic_loss(store: &ParamStore, w: crate::ParamId, tape: &mut Tape) -> crate::NodeId {
        let wn = tape.param(store, w);
        let t = tape.add_const(wn, -3.0);
        let sq = tape.mul(t, t);
        tape.mean_all(sq)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.add("w", 1, 1, Init::Zeros, &mut rng);
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            let mut tape = Tape::new();
            let loss = quadratic_loss(&store, w, &mut tape);
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.add("w", 1, 1, Init::Zeros, &mut rng);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let mut tape = Tape::new();
            let loss = quadratic_loss(&store, w, &mut tape);
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(
            (store.value(w).item() - 3.0).abs() < 1e-2,
            "w = {}",
            store.value(w).item()
        );
        assert_eq!(opt.step_count(), 200);
    }

    #[test]
    fn clip_reduces_large_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.add("w", 1, 2, Init::Zeros, &mut rng);
        store.accumulate_grad(w, &[3.0, 4.0]); // norm 5
        let pre = clip_global_norm(&mut store, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = store.grad(w);
        assert!((g.norm() - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((g.data[0] / g.data[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.add("w", 1, 2, Init::Zeros, &mut rng);
        store.accumulate_grad(w, &[0.3, 0.4]);
        clip_global_norm(&mut store, 1.0);
        assert_eq!(store.grad(w).data, vec![0.3, 0.4]);
    }
}
