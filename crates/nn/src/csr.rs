//! Immutable CSR adjacency shared by the fused graph-attention ops.

/// Compressed sparse rows: for node `i`, its neighbour list is
/// `targets[offsets[i]..offsets[i+1]]`. One *edge slot* `e` corresponds to
/// the pair `(segment_of(e), targets[e])` — the fused GAT ops
/// ([`crate::Op::EdgeScores`], [`crate::Op::SegmentedSoftmax`],
/// [`crate::Op::NeighborSum`]) operate on `[E, 1]` edge tensors laid out in
/// this order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphCsr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl GraphCsr {
    /// Build from per-node neighbour lists. With `self_loops`, node `i` is
    /// appended to its own list if absent (standard GAT practice; keeps
    /// isolated nodes well-defined under softmax).
    pub fn from_neighbor_lists(lists: &[Vec<usize>], self_loops: bool) -> Self {
        let n = lists.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for (i, list) in lists.iter().enumerate() {
            for &j in list {
                assert!(j < n, "neighbor {j} out of range for {n} nodes");
                targets.push(j);
            }
            if self_loops && !list.contains(&i) {
                targets.push(i);
            }
            offsets.push(targets.len());
        }
        Self { offsets, targets }
    }

    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Edge-slot range of node `i`.
    pub fn segment(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Neighbour at edge slot `e`.
    pub fn target(&self, e: usize) -> usize {
        self.targets[e]
    }

    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.targets[self.segment(i)]
    }

    /// Block-diagonal union of several graphs: nodes are renumbered by the
    /// running node offset of their block, edges stay within their block,
    /// and both node order and each node's neighbour order are preserved.
    /// Segment-local kernels (`edge_scores`, `segmented_softmax`,
    /// `neighbor_sum`) therefore compute, for every node of the union, the
    /// exact values they would compute on the node's own block — the basis
    /// of the batched encoder's fused GAT pass.
    pub fn block_diagonal<'a>(parts: impl IntoIterator<Item = &'a GraphCsr>) -> Self {
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        let mut node_off = 0usize;
        for part in parts {
            for i in 0..part.num_nodes() {
                for e in part.segment(i) {
                    targets.push(node_off + part.target(e));
                }
                offsets.push(targets.len());
            }
            node_off += part.num_nodes();
        }
        Self { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_self_loops() {
        let csr = GraphCsr::from_neighbor_lists(&[vec![1], vec![0, 1], vec![]], true);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.neighbors(0), &[1, 0]); // self appended
        assert_eq!(csr.neighbors(1), &[0, 1]); // already present
        assert_eq!(csr.neighbors(2), &[2]); // isolated node gets self
        assert_eq!(csr.num_edges(), 5);
    }

    #[test]
    fn builds_without_self_loops() {
        let csr = GraphCsr::from_neighbor_lists(&[vec![1], vec![0]], false);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.num_edges(), 2);
    }

    #[test]
    fn segments_partition_edges() {
        let csr = GraphCsr::from_neighbor_lists(&[vec![1, 2], vec![2], vec![0]], true);
        let mut covered = 0;
        for i in 0..csr.num_nodes() {
            covered += csr.segment(i).len();
        }
        assert_eq!(covered, csr.num_edges());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_neighbors() {
        let _ = GraphCsr::from_neighbor_lists(&[vec![5]], false);
    }

    #[test]
    fn block_diagonal_offsets_nodes_per_block() {
        let a = GraphCsr::from_neighbor_lists(&[vec![1], vec![0]], true);
        let b = GraphCsr::from_neighbor_lists(&[vec![]], true);
        let c = GraphCsr::from_neighbor_lists(&[vec![1, 2], vec![], vec![0]], false);
        let u = GraphCsr::block_diagonal([&a, &b, &c]);
        assert_eq!(u.num_nodes(), a.num_nodes() + b.num_nodes() + c.num_nodes());
        assert_eq!(u.num_edges(), a.num_edges() + b.num_edges() + c.num_edges());
        // Block a at node offset 0, b at 2, c at 3; neighbour order kept.
        assert_eq!(u.neighbors(0), &[1, 0]);
        assert_eq!(u.neighbors(1), &[0, 1]);
        assert_eq!(u.neighbors(2), &[2]);
        assert_eq!(u.neighbors(3), &[4, 5]);
        assert_eq!(u.neighbors(4), &[] as &[usize]);
        assert_eq!(u.neighbors(5), &[3]);
    }

    #[test]
    fn block_diagonal_of_nothing_is_empty() {
        let u = GraphCsr::block_diagonal([]);
        assert_eq!(u.num_nodes(), 0);
        assert_eq!(u.num_edges(), 0);
    }
}
