//! Immutable CSR adjacency shared by the fused graph-attention ops.

/// Compressed sparse rows: for node `i`, its neighbour list is
/// `targets[offsets[i]..offsets[i+1]]`. One *edge slot* `e` corresponds to
/// the pair `(segment_of(e), targets[e])` — the fused GAT ops
/// ([`crate::Op::EdgeScores`], [`crate::Op::SegmentedSoftmax`],
/// [`crate::Op::NeighborSum`]) operate on `[E, 1]` edge tensors laid out in
/// this order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphCsr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl GraphCsr {
    /// Build from per-node neighbour lists. With `self_loops`, node `i` is
    /// appended to its own list if absent (standard GAT practice; keeps
    /// isolated nodes well-defined under softmax).
    pub fn from_neighbor_lists(lists: &[Vec<usize>], self_loops: bool) -> Self {
        let n = lists.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for (i, list) in lists.iter().enumerate() {
            for &j in list {
                assert!(j < n, "neighbor {j} out of range for {n} nodes");
                targets.push(j);
            }
            if self_loops && !list.contains(&i) {
                targets.push(i);
            }
            offsets.push(targets.len());
        }
        Self { offsets, targets }
    }

    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Edge-slot range of node `i`.
    pub fn segment(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Neighbour at edge slot `e`.
    pub fn target(&self, e: usize) -> usize {
        self.targets[e]
    }

    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.targets[self.segment(i)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_self_loops() {
        let csr = GraphCsr::from_neighbor_lists(&[vec![1], vec![0, 1], vec![]], true);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.neighbors(0), &[1, 0]); // self appended
        assert_eq!(csr.neighbors(1), &[0, 1]); // already present
        assert_eq!(csr.neighbors(2), &[2]); // isolated node gets self
        assert_eq!(csr.num_edges(), 5);
    }

    #[test]
    fn builds_without_self_loops() {
        let csr = GraphCsr::from_neighbor_lists(&[vec![1], vec![0]], false);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.num_edges(), 2);
    }

    #[test]
    fn segments_partition_edges() {
        let csr = GraphCsr::from_neighbor_lists(&[vec![1, 2], vec![2], vec![0]], true);
        let mut covered = 0;
        for i in 0..csr.num_nodes() {
            covered += csr.segment(i).len();
        }
        assert_eq!(covered, csr.num_edges());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_neighbors() {
        let _ = GraphCsr::from_neighbor_lists(&[vec![5]], false);
    }
}
