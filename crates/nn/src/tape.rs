//! The reverse-mode autograd tape.
//!
//! Every operation eagerly computes its value and records an [`Op`] node;
//! [`Tape::backward`] walks the tape in reverse topological order (which is
//! simply reverse insertion order) accumulating gradients, and routes leaf
//! gradients into the [`ParamStore`].
//!
//! All numeric work — forward values *and* the backward matmuls — runs on
//! the unified [`crate::kernels`] layer, the same compute core the
//! tape-free [`crate::infer`] serving path uses. The tape adds only the
//! graph bookkeeping on top.

use std::sync::Arc;

use crate::{kernels, GraphCsr, ParamId, ParamStore, Tensor};

/// Index of a node on the tape.
pub type NodeId = usize;

/// The operation that produced a node. Parents are tape indices, which are
/// always smaller than the node's own index (the tape is a DAG by
/// construction).
#[derive(Debug, Clone)]
pub enum Op {
    /// Input: constant or parameter (gradient routed to the store).
    Leaf {
        param: Option<ParamId>,
    },
    /// Element-wise `a + b` (same shape).
    Add(NodeId, NodeId),
    /// Element-wise `a - b`.
    Sub(NodeId, NodeId),
    /// Element-wise (Hadamard) `a ⊙ b`.
    Mul(NodeId, NodeId),
    /// `a * c` for a constant scalar.
    Scale(NodeId, f32),
    /// `a + c` for a constant scalar.
    AddConst(NodeId, f32),
    /// `[R,C] + [1,C]` broadcast over rows.
    AddRowVec(NodeId, NodeId),
    /// `[R,C] ⊙ [1,C]` broadcast over rows.
    MulRowVec(NodeId, NodeId),
    /// `[R,C] + [R,1]` broadcast over columns.
    AddColVec(NodeId, NodeId),
    /// `[R,C] ⊙ [R,1]` broadcast over columns.
    MulColVec(NodeId, NodeId),
    /// `[R,K] × [K,C]`.
    MatMul(NodeId, NodeId),
    /// `[R,K] × [C,K]ᵀ → [R,C]` (saves materialising transposes).
    MatMulNT(NodeId, NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    LeakyRelu(NodeId, f32),
    /// Element-wise square root (inputs must be positive).
    Sqrt(NodeId),
    /// Element-wise reciprocal.
    Recip(NodeId),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Row-wise log-softmax (stable).
    LogSoftmaxRows(NodeId),
    /// Fused per-row layer norm `y = γ ⊙ (x − μ)/σ + β`:
    /// `(x, gamma, beta, eps)`.
    LayerNorm(NodeId, NodeId, NodeId, f32),
    /// Horizontal concatenation (same row count).
    ConcatCols(Vec<NodeId>),
    /// Columns `[start, start+len)`.
    SelectCols(NodeId, usize, usize),
    /// Vertical concatenation (same column count).
    ConcatRows(Vec<NodeId>),
    /// Rows `[start, start+len)`.
    SelectRows(NodeId, usize, usize),
    /// Repeat a `[1,C]` row `n` times → `[n,C]`.
    RepeatRows(NodeId, usize),
    /// Column means → `[1,C]`.
    MeanRows(NodeId),
    /// Weighted column means with fixed (non-learned) weights, normalised
    /// internally → `[1,C]`. This is the paper's weighted mean pooling
    /// (Eq. 6) and graph readout (Eq. 8).
    WeightedMeanRows(NodeId, Arc<Vec<f32>>),
    /// Mean of all entries → `[1,1]`.
    MeanAll(NodeId),
    /// Sum of all entries → `[1,1]`.
    SumAll(NodeId),
    /// Row gather: `table[indices[i], :]` → `[n, C]` (embedding lookup).
    GatherRows(NodeId, Arc<Vec<usize>>),
    /// Element-wise multiply by a fixed 0/scale mask (inverted dropout).
    Dropout(NodeId, Arc<Vec<f32>>),
    /// GAT edge scores: `out[e] = src[i] + dst[j_e]` for each edge slot `e`
    /// in node `i`'s segment.
    EdgeScores(NodeId, NodeId, Arc<GraphCsr>),
    /// Softmax within each node's edge segment (attention normalisation).
    SegmentedSoftmax(NodeId, Arc<GraphCsr>),
    /// `out[i] = Σ_{e ∈ seg(i)} α[e] · feats[j_e]` (attention aggregation).
    NeighborSum(NodeId, NodeId, Arc<GraphCsr>),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    grad: Option<Vec<f32>>,
}

/// A dynamic computation graph. Create one per forward/backward pass (or
/// [`Tape::clear`] and reuse its allocation).
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Gradient of a node after [`Tape::backward`] (`None` if the node did
    /// not influence the loss).
    pub fn grad(&self, id: NodeId) -> Option<&[f32]> {
        self.nodes[id].grad.as_deref()
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            op,
            grad: None,
        });
        self.nodes.len() - 1
    }

    fn val(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    // ----- inputs ---------------------------------------------------------

    /// A constant input (no parameter gradient).
    pub fn leaf(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Leaf { param: None })
    }

    /// Import a parameter: clones its current value; `backward` will route
    /// the gradient back into the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.value(id).clone(), Op::Leaf { param: Some(id) })
    }

    // ----- element-wise ---------------------------------------------------

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let t = kernels::add(self.val(a), self.val(b));
        self.push(t, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let t = kernels::sub(self.val(a), self.val(b));
        self.push(t, Op::Sub(a, b))
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let t = kernels::mul(self.val(a), self.val(b));
        self.push(t, Op::Mul(a, b))
    }

    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let t = kernels::scale(self.val(a), c);
        self.push(t, Op::Scale(a, c))
    }

    pub fn add_const(&mut self, a: NodeId, c: f32) -> NodeId {
        let t = kernels::add_const(self.val(a), c);
        self.push(t, Op::AddConst(a, c))
    }

    pub fn add_rowvec(&mut self, m: NodeId, v: NodeId) -> NodeId {
        let t = kernels::add_rowvec(self.val(m), self.val(v));
        self.push(t, Op::AddRowVec(m, v))
    }

    pub fn mul_rowvec(&mut self, m: NodeId, v: NodeId) -> NodeId {
        let t = kernels::mul_rowvec(self.val(m), self.val(v));
        self.push(t, Op::MulRowVec(m, v))
    }

    pub fn add_colvec(&mut self, m: NodeId, v: NodeId) -> NodeId {
        let t = kernels::add_colvec(self.val(m), self.val(v));
        self.push(t, Op::AddColVec(m, v))
    }

    pub fn mul_colvec(&mut self, m: NodeId, v: NodeId) -> NodeId {
        let t = kernels::mul_colvec(self.val(m), self.val(v));
        self.push(t, Op::MulColVec(m, v))
    }

    // ----- matrix products --------------------------------------------------

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let t = kernels::matmul(self.val(a), self.val(b));
        self.push(t, Op::MatMul(a, b))
    }

    /// `a × bᵀ` without materialising the transpose.
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let t = kernels::matmul_nt(self.val(a), self.val(b));
        self.push(t, Op::MatMulNT(a, b))
    }

    // ----- activations ------------------------------------------------------

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let t = kernels::sigmoid(self.val(a));
        self.push(t, Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let t = kernels::tanh(self.val(a));
        self.push(t, Op::Tanh(a))
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let t = kernels::relu(self.val(a));
        self.push(t, Op::Relu(a))
    }

    pub fn leaky_relu(&mut self, a: NodeId, slope: f32) -> NodeId {
        let t = kernels::leaky_relu(self.val(a), slope);
        self.push(t, Op::LeakyRelu(a, slope))
    }

    pub fn sqrt(&mut self, a: NodeId) -> NodeId {
        let t = kernels::sqrt(self.val(a));
        self.push(t, Op::Sqrt(a))
    }

    pub fn recip(&mut self, a: NodeId) -> NodeId {
        let t = kernels::recip(self.val(a));
        self.push(t, Op::Recip(a))
    }

    // ----- softmax ----------------------------------------------------------

    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let t = kernels::softmax_rows(self.val(a));
        self.push(t, Op::SoftmaxRows(a))
    }

    pub fn log_softmax_rows(&mut self, a: NodeId) -> NodeId {
        let t = kernels::log_softmax_rows(self.val(a));
        self.push(t, Op::LogSoftmaxRows(a))
    }

    // ----- layer norm -------------------------------------------------------

    /// Fused per-row layer normalisation `y = γ ⊙ (x − μ)/σ + β`
    /// (`gamma`/`beta` are `[1, C]`). The forward value is bit-identical
    /// to the composed primitive route; the backward is the op's own
    /// analytic gradient rather than nine chained adjoints.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let t = kernels::layer_norm(self.val(x), self.val(gamma), self.val(beta), eps);
        self.push(t, Op::LayerNorm(x, gamma, beta, eps))
    }

    // ----- shape ops ----------------------------------------------------------

    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let t = {
            let refs: Vec<&Tensor> = parts.iter().map(|&p| self.val(p)).collect();
            kernels::concat_cols(&refs)
        };
        self.push(t, Op::ConcatCols(parts.to_vec()))
    }

    pub fn select_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let t = kernels::select_cols(self.val(a), start, len);
        self.push(t, Op::SelectCols(a, start, len))
    }

    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        let t = {
            let refs: Vec<&Tensor> = parts.iter().map(|&p| self.val(p)).collect();
            kernels::concat_rows(&refs)
        };
        self.push(t, Op::ConcatRows(parts.to_vec()))
    }

    pub fn select_rows(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let t = kernels::select_rows(self.val(a), start, len);
        self.push(t, Op::SelectRows(a, start, len))
    }

    pub fn repeat_rows(&mut self, a: NodeId, n: usize) -> NodeId {
        let t = kernels::repeat_rows(self.val(a), n);
        self.push(t, Op::RepeatRows(a, n))
    }

    // ----- reductions --------------------------------------------------------

    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let t = kernels::mean_rows(self.val(a));
        self.push(t, Op::MeanRows(a))
    }

    /// Weighted mean over rows with fixed positive weights (normalised
    /// internally).
    pub fn weighted_mean_rows(&mut self, a: NodeId, weights: &[f32]) -> NodeId {
        let norm = kernels::normalized_weights(self.val(a).rows, weights);
        let t = kernels::weighted_mean_rows(self.val(a), &norm);
        self.push(t, Op::WeightedMeanRows(a, Arc::new(norm)))
    }

    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let ta = self.val(a);
        let m = ta.data.iter().sum::<f32>() / ta.len() as f32;
        self.push(Tensor::scalar(m), Op::MeanAll(a))
    }

    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let ta = self.val(a);
        let s = ta.data.iter().sum::<f32>();
        self.push(Tensor::scalar(s), Op::SumAll(a))
    }

    // ----- lookup / dropout ---------------------------------------------------

    pub fn gather_rows(&mut self, table: NodeId, indices: &[usize]) -> NodeId {
        let t = kernels::gather_rows(self.val(table), indices);
        self.push(t, Op::GatherRows(table, Arc::new(indices.to_vec())))
    }

    /// Inverted dropout with keep probability `1 - p`; pass `training=false`
    /// for identity.
    pub fn dropout(
        &mut self,
        a: NodeId,
        p: f32,
        training: bool,
        rng: &mut impl rand::Rng,
    ) -> NodeId {
        if !training || p <= 0.0 {
            return self.scale(a, 1.0);
        }
        let ta = self.val(a);
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..ta.len())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let data = ta.data.iter().zip(&mask).map(|(x, m)| x * m).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Dropout(a, Arc::new(mask)))
    }

    // ----- fused graph-attention ops -------------------------------------------

    /// GAT edge scores: for each edge slot `e` of node `i` with neighbour
    /// `j_e`, `out[e] = src[i] + dst[j_e]` (`src`/`dst` are `[n,1]`).
    pub fn edge_scores(&mut self, src: NodeId, dst: NodeId, csr: &Arc<GraphCsr>) -> NodeId {
        let t = kernels::edge_scores(self.val(src), self.val(dst), csr);
        self.push(t, Op::EdgeScores(src, dst, Arc::clone(csr)))
    }

    /// Attention normalisation: softmax within each node's edge segment.
    pub fn segmented_softmax(&mut self, scores: NodeId, csr: &Arc<GraphCsr>) -> NodeId {
        let t = kernels::segmented_softmax(self.val(scores), csr);
        self.push(t, Op::SegmentedSoftmax(scores, Arc::clone(csr)))
    }

    /// Attention aggregation: `out[i] = Σ_{e ∈ seg(i)} α[e] · feats[j_e]`.
    pub fn neighbor_sum(&mut self, alphas: NodeId, feats: NodeId, csr: &Arc<GraphCsr>) -> NodeId {
        let t = kernels::neighbor_sum(self.val(alphas), self.val(feats), csr);
        self.push(t, Op::NeighborSum(alphas, feats, Arc::clone(csr)))
    }

    // ----- backward --------------------------------------------------------------

    /// Reverse-mode differentiation from scalar node `loss`. Accumulates
    /// parameter gradients into `store`; node gradients stay readable via
    /// [`Tape::grad`] until the next forward op or `clear`. The heavy
    /// adjoint products run on the shared [`crate::kernels`] matmul family.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        assert_eq!(
            self.val(loss).shape(),
            (1, 1),
            "backward: loss must be scalar"
        );
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[loss].grad = Some(vec![1.0]);

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            // Split-borrow: the node's op/value vs. parent grads.
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf { param } => {
                    if let Some(pid) = param {
                        store.accumulate_grad(pid, &g);
                    }
                }
                Op::Add(a, b) => {
                    self.acc(a, &g);
                    self.acc(b, &g);
                }
                Op::Sub(a, b) => {
                    self.acc(a, &g);
                    let neg: Vec<f32> = g.iter().map(|x| -x).collect();
                    self.acc(b, &neg);
                }
                Op::Mul(a, b) => {
                    let ga: Vec<f32> = g
                        .iter()
                        .zip(&self.nodes[b].value.data)
                        .map(|(x, y)| x * y)
                        .collect();
                    let gb: Vec<f32> = g
                        .iter()
                        .zip(&self.nodes[a].value.data)
                        .map(|(x, y)| x * y)
                        .collect();
                    self.acc(a, &ga);
                    self.acc(b, &gb);
                }
                Op::Scale(a, c) => {
                    let ga: Vec<f32> = g.iter().map(|x| x * c).collect();
                    self.acc(a, &ga);
                }
                Op::AddConst(a, _) => self.acc(a, &g),
                Op::AddRowVec(m, v) => {
                    self.acc(m, &g);
                    let cols = self.nodes[v].value.cols;
                    let rows = g.len() / cols;
                    let mut gv = vec![0.0f32; cols];
                    for r in 0..rows {
                        for c in 0..cols {
                            gv[c] += g[r * cols + c];
                        }
                    }
                    self.acc(v, &gv);
                }
                Op::MulRowVec(m, v) => {
                    let cols = self.nodes[v].value.cols;
                    let rows = g.len() / cols;
                    let vm = &self.nodes[m].value;
                    let vv = &self.nodes[v].value;
                    let mut gm = vec![0.0f32; g.len()];
                    let mut gv = vec![0.0f32; cols];
                    for r in 0..rows {
                        for c in 0..cols {
                            gm[r * cols + c] = g[r * cols + c] * vv.data[c];
                            gv[c] += g[r * cols + c] * vm.data[r * cols + c];
                        }
                    }
                    self.acc(m, &gm);
                    self.acc(v, &gv);
                }
                Op::AddColVec(m, v) => {
                    self.acc(m, &g);
                    let rows = self.nodes[v].value.rows;
                    let cols = g.len() / rows;
                    let mut gv = vec![0.0f32; rows];
                    for r in 0..rows {
                        for c in 0..cols {
                            gv[r] += g[r * cols + c];
                        }
                    }
                    self.acc(v, &gv);
                }
                Op::MulColVec(m, v) => {
                    let rows = self.nodes[v].value.rows;
                    let cols = g.len() / rows;
                    let vm = &self.nodes[m].value;
                    let vv = &self.nodes[v].value;
                    let mut gm = vec![0.0f32; g.len()];
                    let mut gv = vec![0.0f32; rows];
                    for r in 0..rows {
                        for c in 0..cols {
                            gm[r * cols + c] = g[r * cols + c] * vv.data[r];
                            gv[r] += g[r * cols + c] * vm.data[r * cols + c];
                        }
                    }
                    self.acc(m, &gm);
                    self.acc(v, &gv);
                }
                Op::MatMul(a, b) => {
                    let (ta, tb) = (&self.nodes[a].value, &self.nodes[b].value);
                    let gt = Tensor::from_vec(ta.rows, tb.cols, g.clone());
                    // dA = dC · Bᵀ ; dB = Aᵀ · dC
                    let ga = kernels::matmul_nt(&gt, tb);
                    let gb = kernels::matmul_tn(ta, &gt);
                    self.acc(a, &ga.data);
                    self.acc(b, &gb.data);
                }
                Op::MatMulNT(a, b) => {
                    let (ta, tb) = (&self.nodes[a].value, &self.nodes[b].value);
                    let gt = Tensor::from_vec(ta.rows, tb.rows, g.clone());
                    // C = A·Bᵀ: dA = dC·B ; dB = dCᵀ·A
                    let ga = kernels::matmul(&gt, tb);
                    let gb = kernels::matmul_tn(&gt, ta);
                    self.acc(a, &ga.data);
                    self.acc(b, &gb.data);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let ga: Vec<f32> = g
                        .iter()
                        .zip(&y.data)
                        .map(|(gx, &yy)| gx * yy * (1.0 - yy))
                        .collect();
                    self.acc(a, &ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let ga: Vec<f32> = g
                        .iter()
                        .zip(&y.data)
                        .map(|(gx, &yy)| gx * (1.0 - yy * yy))
                        .collect();
                    self.acc(a, &ga);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a].value;
                    let ga: Vec<f32> = g
                        .iter()
                        .zip(&x.data)
                        .map(|(gx, &xx)| if xx > 0.0 { *gx } else { 0.0 })
                        .collect();
                    self.acc(a, &ga);
                }
                Op::LeakyRelu(a, slope) => {
                    let x = &self.nodes[a].value;
                    let ga: Vec<f32> = g
                        .iter()
                        .zip(&x.data)
                        .map(|(gx, &xx)| if xx > 0.0 { *gx } else { gx * slope })
                        .collect();
                    self.acc(a, &ga);
                }
                Op::Sqrt(a) => {
                    let y = &self.nodes[i].value;
                    let ga: Vec<f32> = g
                        .iter()
                        .zip(&y.data)
                        .map(|(gx, &yy)| if yy > 0.0 { gx * 0.5 / yy } else { 0.0 })
                        .collect();
                    self.acc(a, &ga);
                }
                Op::Recip(a) => {
                    let y = &self.nodes[i].value;
                    let ga: Vec<f32> = g
                        .iter()
                        .zip(&y.data)
                        .map(|(gx, &yy)| -gx * yy * yy)
                        .collect();
                    self.acc(a, &ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let cols = y.cols;
                    let mut ga = vec![0.0f32; g.len()];
                    for r in 0..y.rows {
                        let yr = &y.data[r * cols..(r + 1) * cols];
                        let gr = &g[r * cols..(r + 1) * cols];
                        let dot: f32 = yr.iter().zip(gr).map(|(y, g)| y * g).sum();
                        for c in 0..cols {
                            ga[r * cols + c] = yr[c] * (gr[c] - dot);
                        }
                    }
                    self.acc(a, &ga);
                }
                Op::LogSoftmaxRows(a) => {
                    let y = &self.nodes[i].value; // y = log softmax(x)
                    let cols = y.cols;
                    let mut ga = vec![0.0f32; g.len()];
                    for r in 0..y.rows {
                        let yr = &y.data[r * cols..(r + 1) * cols];
                        let gr = &g[r * cols..(r + 1) * cols];
                        let gsum: f32 = gr.iter().sum();
                        for c in 0..cols {
                            ga[r * cols + c] = gr[c] - yr[c].exp() * gsum;
                        }
                    }
                    self.acc(a, &ga);
                }
                Op::LayerNorm(x, gamma, beta, eps) => {
                    let tx = &self.nodes[x].value;
                    let tg = &self.nodes[gamma].value;
                    let (r, c) = tx.shape();
                    let (mean, inv_std) = kernels::row_norm_stats(tx, eps);
                    let inv_d = 1.0 / c as f32;
                    let mut gx = vec![0.0f32; r * c];
                    let mut ggamma = vec![0.0f32; c];
                    let mut gbeta = vec![0.0f32; c];
                    for row in 0..r {
                        let m = mean.data[row];
                        let istd = inv_std.data[row];
                        let xr = &tx.data[row * c..(row + 1) * c];
                        let gr = &g[row * c..(row + 1) * c];
                        // x̂ = (x − μ)·invstd; p = g ⊙ γ. Then
                        // dx = invstd · (p − mean(p) − x̂ · mean(p ⊙ x̂)),
                        // dγ = Σ_rows g ⊙ x̂, dβ = Σ_rows g.
                        let mut sum_p = 0.0f32;
                        let mut sum_px = 0.0f32;
                        for col in 0..c {
                            let xh = (xr[col] - m) * istd;
                            let p = gr[col] * tg.data[col];
                            sum_p += p;
                            sum_px += p * xh;
                            ggamma[col] += gr[col] * xh;
                            gbeta[col] += gr[col];
                        }
                        let mp = sum_p * inv_d;
                        let mpx = sum_px * inv_d;
                        for col in 0..c {
                            let xh = (xr[col] - m) * istd;
                            let p = gr[col] * tg.data[col];
                            gx[row * c + col] = istd * (p - mp - xh * mpx);
                        }
                    }
                    self.acc(x, &gx);
                    self.acc(gamma, &ggamma);
                    self.acc(beta, &gbeta);
                }
                Op::ConcatCols(parts) => {
                    let total = self.nodes[i].value.cols;
                    let rows = self.nodes[i].value.rows;
                    let mut off = 0;
                    for &p in &parts {
                        let pc = self.nodes[p].value.cols;
                        let mut gp = vec![0.0f32; rows * pc];
                        for r in 0..rows {
                            gp[r * pc..(r + 1) * pc]
                                .copy_from_slice(&g[r * total + off..r * total + off + pc]);
                        }
                        self.acc(p, &gp);
                        off += pc;
                    }
                }
                Op::SelectCols(a, start, len) => {
                    let ta = &self.nodes[a].value;
                    let mut ga = vec![0.0f32; ta.len()];
                    for r in 0..ta.rows {
                        for c in 0..len {
                            ga[r * ta.cols + start + c] = g[r * len + c];
                        }
                    }
                    self.acc(a, &ga);
                }
                Op::ConcatRows(parts) => {
                    let cols = self.nodes[i].value.cols;
                    let mut off = 0;
                    for &p in &parts {
                        let pr = self.nodes[p].value.rows;
                        self.acc(p, &g[off * cols..(off + pr) * cols]);
                        off += pr;
                    }
                }
                Op::SelectRows(a, start, len) => {
                    let ta = &self.nodes[a].value;
                    let mut ga = vec![0.0f32; ta.len()];
                    ga[start * ta.cols..(start + len) * ta.cols].copy_from_slice(&g);
                    self.acc(a, &ga);
                }
                Op::RepeatRows(a, n) => {
                    let cols = self.nodes[a].value.cols;
                    let mut ga = vec![0.0f32; cols];
                    for r in 0..n {
                        for c in 0..cols {
                            ga[c] += g[r * cols + c];
                        }
                    }
                    self.acc(a, &ga);
                }
                Op::MeanRows(a) => {
                    let ta = &self.nodes[a].value;
                    let inv = 1.0 / ta.rows as f32;
                    let mut ga = vec![0.0f32; ta.len()];
                    for r in 0..ta.rows {
                        for c in 0..ta.cols {
                            ga[r * ta.cols + c] = g[c] * inv;
                        }
                    }
                    self.acc(a, &ga);
                }
                Op::WeightedMeanRows(a, w) => {
                    let ta = &self.nodes[a].value;
                    let mut ga = vec![0.0f32; ta.len()];
                    for r in 0..ta.rows {
                        for c in 0..ta.cols {
                            ga[r * ta.cols + c] = g[c] * w[r];
                        }
                    }
                    self.acc(a, &ga);
                }
                Op::MeanAll(a) => {
                    let ta = &self.nodes[a].value;
                    let v = g[0] / ta.len() as f32;
                    let ga = vec![v; ta.len()];
                    self.acc(a, &ga);
                }
                Op::SumAll(a) => {
                    let ta = &self.nodes[a].value;
                    let ga = vec![g[0]; ta.len()];
                    self.acc(a, &ga);
                }
                Op::GatherRows(table, indices) => {
                    let tt = &self.nodes[table].value;
                    let cols = tt.cols;
                    let mut gt = vec![0.0f32; tt.len()];
                    for (row, &idx) in indices.iter().enumerate() {
                        for c in 0..cols {
                            gt[idx * cols + c] += g[row * cols + c];
                        }
                    }
                    self.acc(table, &gt);
                }
                Op::Dropout(a, mask) => {
                    let ga: Vec<f32> = g.iter().zip(mask.iter()).map(|(x, m)| x * m).collect();
                    self.acc(a, &ga);
                }
                Op::EdgeScores(src, dst, csr) => {
                    let n = csr.num_nodes();
                    let mut gs = vec![0.0f32; n];
                    let mut gd = vec![0.0f32; n];
                    for (i2, gsi) in gs.iter_mut().enumerate() {
                        for e in csr.segment(i2) {
                            *gsi += g[e];
                            gd[csr.target(e)] += g[e];
                        }
                    }
                    self.acc(src, &gs);
                    self.acc(dst, &gd);
                }
                Op::SegmentedSoftmax(scores, csr) => {
                    let y = &self.nodes[i].value;
                    let mut ga = vec![0.0f32; y.len()];
                    for i2 in 0..csr.num_nodes() {
                        let seg = csr.segment(i2);
                        let dot: f32 = seg.clone().map(|e| y.data[e] * g[e]).sum();
                        for e in seg {
                            ga[e] = y.data[e] * (g[e] - dot);
                        }
                    }
                    self.acc(scores, &ga);
                }
                Op::NeighborSum(alphas, feats, csr) => {
                    let tf = &self.nodes[feats].value;
                    let ta = &self.nodes[alphas].value;
                    let cols = tf.cols;
                    let mut ga = vec![0.0f32; ta.len()];
                    let mut gf = vec![0.0f32; tf.len()];
                    for i2 in 0..csr.num_nodes() {
                        for e in csr.segment(i2) {
                            let j = csr.target(e);
                            let mut dot = 0.0;
                            for c in 0..cols {
                                let go = g[i2 * cols + c];
                                dot += go * tf.data[j * cols + c];
                                gf[j * cols + c] += ta.data[e] * go;
                            }
                            ga[e] = dot;
                        }
                    }
                    self.acc(alphas, &ga);
                    self.acc(feats, &gf);
                }
            }
            // Keep the gradient readable for inspection/tests.
            self.nodes[i].grad = Some(g);
        }
    }

    fn acc(&mut self, id: NodeId, contribution: &[f32]) {
        let node = &mut self.nodes[id];
        match &mut node.grad {
            Some(g) => {
                debug_assert_eq!(g.len(), contribution.len());
                for (a, b) in g.iter_mut().zip(contribution) {
                    *a += b;
                }
            }
            None => node.grad = Some(contribution.to_vec()),
        }
    }
}
