//! A from-scratch dense-f32 tensor engine with reverse-mode autograd.
//!
//! This crate is the substitute for PyTorch/DGL (see DESIGN.md §2): it
//! provides exactly the operation set RNTrajRec's computation graph needs —
//! matrix products, element-wise activations, broadcast row-vector ops,
//! softmax / log-softmax, concatenation & slicing (multi-head attention),
//! gather (embedding lookup), segmented graph-attention kernels (GAT over
//! CSR adjacency), and mean/weighted-mean pooling — each with an exact,
//! finite-difference-verified backward.
//!
//! Design:
//! * [`Tensor`] — a 2-D row-major `f32` matrix. Vectors are `[1, C]` rows,
//!   scalars `[1, 1]`. Two dimensions are all the model needs (batching is
//!   done by looping trajectories into one tape, which also lets GraphNorm
//!   compute true mini-batch statistics via `concat_rows`).
//! * [`kernels`] — the **single home of every numeric kernel**: the matmul
//!   family, softmax, layer-norm statistics, element-wise maps, gathers,
//!   and the CSR graph-attention gather/scatter. Both execution paths
//!   below call into it, so every kernel has one body to optimise and
//!   parity-test. Heavy kernels parallelise over [`pool`] by disjoint
//!   output partitions and are **bit-identical at any thread count**.
//! * [`pool`] — a small dependency-free persistent thread pool (`rayon` is
//!   unavailable here) with a scoped chunked-range API; the intra-op
//!   thread count is a process-wide knob (`NN_THREADS` env /
//!   [`pool::set_num_threads`]).
//! * [`Tape`] — a dynamic computation graph ("define-by-run"): every op
//!   pushes a node holding its value and an [`Op`] record; backward walks
//!   the tape in reverse, accumulating gradients. No closures, no RefCell
//!   gymnastics — ops are a plain enum, so the whole engine is easy to
//!   audit and test.
//! * [`ParamStore`] / [`ParamId`] — learnable parameters live outside the
//!   tape; `Tape::param` imports them as leaves, `Tape::backward` routes
//!   leaf gradients back into the store, and [`Adam`] / [`Sgd`] update them.
//! * [`GraphCsr`] — shared immutable adjacency used by the fused GAT ops.
//! * [`infer`] — tape-free forward-only twins of every op above: the same
//!   [`kernels`] bodies applied directly to [`Tensor`]s with no graph
//!   bookkeeping, for the online-serving hot path (`rntrajrec-serve`).
//! * [`kernels::backend`] — runtime-dispatched SIMD backend selection
//!   (`NN_BACKEND` env: scalar reference vs AVX2+FMA inner loops).
//! * [`quant`] — int8 per-channel weight quantization for the decoder
//!   segment head ([`quant::QuantizedLinear`]).

mod csr;
pub mod infer;
pub mod kernels;
mod optim;
mod param;
pub mod pool;
pub mod quant;
mod tape;
mod tensor;

pub use csr::GraphCsr;
pub use optim::{clip_global_norm, Adam, Sgd};
pub use param::{Init, ParamId, ParamStore};
pub use tape::{NodeId, Op, Tape};
pub use tensor::Tensor;
