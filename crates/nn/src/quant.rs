//! Int8 row-quantized linear layer for the decoder segment head.
//!
//! The segment head's weight `[d, |V|]` is the one serving-time matrix
//! whose column count scales with the road network, so it is the natural
//! first target for weight quantization: [`QuantizedLinear`] stores it as
//! **per-output-channel** symmetric int8 (`q = round(w / s_j)`, one scale
//! per segment column) in channel-major layout, quantizes each incoming
//! activation row on the fly (per-row symmetric scale), accumulates in
//! `i32`, and dequantizes in the epilogue (`acc · s_a · s_j + bias +
//! log-mask`), fused with the same allowed-columns log-softmax as
//! [`crate::kernels::masked_matmul_cols`].
//!
//! # Determinism
//!
//! The `i32` accumulation is exact integer arithmetic (`K·127² ≪
//! i32::MAX`), so the quantized head is bit-identical across backends
//! (the AVX2 `madd` path computes the same integers), thread counts, and
//! batch compositions — there is no rounding to re-order. What moves is
//! *accuracy* relative to the f32 head; that drift is measured on
//! recovery outputs in `serve_bench` and gated in `check_bench`, not
//! pinned bitwise.

#![deny(missing_docs)]

use crate::kernels::{self, backend, SparseLogMask};
use crate::Tensor;

/// A linear layer quantized to symmetric per-output-channel int8.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    k: usize,
    c: usize,
    /// Channel-major `[C, K]` int8 weights: channel `j`'s K weights are
    /// contiguous, so every output column is one contiguous i8 dot.
    qt: Vec<i8>,
    /// Per-output-channel dequantization scales (`s_j = max|w[:,j]|/127`).
    scales: Vec<f32>,
}

/// Quantize one value symmetrically to `[-127, 127]`.
#[inline]
fn q8(x: f32, inv_s: f32) -> i8 {
    (x * inv_s).round().clamp(-127.0, 127.0) as i8
}

/// A row's symmetric quantization scale (`max|x|/127`; 1.0 for all-zero
/// rows so the division is always well-defined).
#[inline]
fn row_scale(row: &[f32]) -> f32 {
    let amax = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if amax == 0.0 {
        1.0
    } else {
        amax / 127.0
    }
}

impl QuantizedLinear {
    /// Quantize a float weight matrix `w[K, C]` (the segment head's
    /// `[d, |V|]`) to per-output-channel int8.
    pub fn from_weights(w: &Tensor) -> Self {
        let (k, c) = w.shape();
        let mut qt = vec![0i8; c * k];
        let mut scales = vec![1.0f32; c];
        for j in 0..c {
            let mut amax = 0.0f32;
            for kk in 0..k {
                amax = amax.max(w.data[kk * c + j].abs());
            }
            let s = if amax == 0.0 { 1.0 } else { amax / 127.0 };
            scales[j] = s;
            let inv_s = 1.0 / s;
            for kk in 0..k {
                qt[j * k + kk] = q8(w.data[kk * c + j], inv_s);
            }
        }
        Self { k, c, qt, scales }
    }

    /// The raw quantized representation `(k, c, qt, scales)`: channel-major
    /// `[C, K]` int8 weights and per-channel scales. The artifact format
    /// serializes the head through this so a packed model reproduces the
    /// exact integers of the in-process quantization.
    pub fn to_parts(&self) -> (usize, usize, &[i8], &[f32]) {
        (self.k, self.c, &self.qt, &self.scales)
    }

    /// Rebuild a head from its raw parts (the inverse of
    /// [`QuantizedLinear::to_parts`]). Shapes are validated; the values
    /// are taken as-is, so a round trip is bit-exact.
    pub fn from_parts(k: usize, c: usize, qt: Vec<i8>, scales: Vec<f32>) -> Result<Self, String> {
        if qt.len() != k * c {
            return Err(format!(
                "quantized head: {} int8 weights for shape [{c}, {k}]",
                qt.len()
            ));
        }
        if scales.len() != c {
            return Err(format!(
                "quantized head: {} scales for {c} channels",
                scales.len()
            ));
        }
        if scales.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err("quantized head: scales must be finite and positive".to_string());
        }
        Ok(Self { k, c, qt, scales })
    }

    /// Input features (the head's hidden dimension `d`).
    pub fn in_features(&self) -> usize {
        self.k
    }

    /// Output channels (the vocabulary / segment count `|V|`).
    pub fn out_features(&self) -> usize {
        self.c
    }

    /// Exact i8·i8→i32 dot under the active backend (identical integers
    /// either way; AVX2 is just faster).
    #[inline]
    fn dot_i8(bk: backend::Backend, a: &[i8], b: &[i8]) -> i32 {
        #[cfg(target_arch = "x86_64")]
        if bk == backend::Backend::Avx2Fma {
            // SAFETY: `Avx2Fma` is only active after runtime detection.
            return unsafe { backend::dot_i8(a, b) };
        }
        let _ = bk;
        let mut s = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            s += i32::from(x) * i32::from(y);
        }
        s
    }

    /// The quantized twin of [`crate::kernels::masked_matmul_cols`]: for
    /// each row of `a[R, K]`, quantize the row, compute the mask-allowed
    /// logit columns (all `C` for rows without a usable mask) as int8
    /// dots, dequantize with `s_a · s_j`, add bias and the mask
    /// log-weight, and log-softmax over the allowed columns (masked-out
    /// columns are exact `-∞`). FLOP attribution counts `2·K·(computed
    /// columns)`, the same as the sparse float head.
    pub fn forward_masked(
        &self,
        a: &Tensor,
        bias: &Tensor,
        masks: &[Option<SparseLogMask<'_>>],
    ) -> Tensor {
        let (r, k) = a.shape();
        let c = self.c;
        assert_eq!(k, self.k, "QuantizedLinear: input width");
        assert_eq!(
            (bias.rows, bias.cols),
            (1, c),
            "QuantizedLinear: bias must be [1,C]"
        );
        assert_eq!(masks.len(), r, "QuantizedLinear: one mask per row");
        let mut computed = 0u64;
        for mask in masks {
            match mask {
                Some(m) if !m.entries.is_empty() => {
                    for (p, &(col, _)) in m.entries.iter().enumerate() {
                        assert!(col < c, "QuantizedLinear: column {col} out of {c}");
                        if !kernels::entry_is_overridden(m.entries, p) {
                            computed += 1;
                        }
                    }
                }
                _ => computed += c as u64,
            }
        }
        kernels::note_matmul(2 * k as u64 * computed);
        let bk = backend::active();
        let mut out = Tensor::zeros(r, c);
        if c == 0 {
            return out;
        }
        // The head is cheap by design; rows are few (micro-batch size),
        // so chunk generously and usually run inline.
        let min_rows = (32 * 1024 / (k * c).max(1)).max(1);
        kernels::par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
            let mut qa = vec![0i8; k];
            let mut scratch: Vec<f32> = Vec::new();
            let mut cols: Vec<(usize, f32)> = Vec::new();
            for (ri, i) in rows.enumerate() {
                let arow = &a.data[i * k..(i + 1) * k];
                let row = &mut dst[ri * c..(ri + 1) * c];
                let s_a = row_scale(arow);
                let inv_sa = 1.0 / s_a;
                for (q, &x) in qa.iter_mut().zip(arow) {
                    *q = q8(x, inv_sa);
                }
                let deq = |bk: backend::Backend, qa: &[i8], col: usize| -> f32 {
                    let qrow = &self.qt[col * k..(col + 1) * k];
                    Self::dot_i8(bk, qa, qrow) as f32 * (s_a * self.scales[col])
                };
                match masks[i] {
                    Some(mask) if !mask.entries.is_empty() => {
                        // Same canonical ascending-column order as the
                        // float sparse head.
                        cols.clear();
                        for (p, &(col, lw)) in mask.entries.iter().enumerate() {
                            if !kernels::entry_is_overridden(mask.entries, p) {
                                cols.push((col, lw));
                            }
                        }
                        cols.sort_unstable_by_key(|&(col, _)| col);
                        scratch.clear();
                        for &(col, lw) in &cols {
                            scratch.push((deq(bk, &qa, col) + bias.data[col]) + lw);
                        }
                        kernels::log_softmax_slice(bk, &mut scratch);
                        row.fill(f32::NEG_INFINITY);
                        for (&(col, _), &x) in cols.iter().zip(&scratch) {
                            row[col] = x;
                        }
                    }
                    mask => {
                        for (j, o) in row.iter_mut().enumerate() {
                            let x = deq(bk, &qa, j) + bias.data[j];
                            *o = match mask {
                                Some(m) => x + m.default,
                                None => x,
                            };
                        }
                        kernels::log_softmax_slice(bk, row);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::backend::{is_supported, with_backend, Backend};
    use crate::{infer, pool};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::uniform(rows, cols, 1.0, &mut rng)
    }

    #[test]
    fn quantized_weights_round_trip_within_half_step() {
        let w = t(12, 9, 1);
        let q = QuantizedLinear::from_weights(&w);
        assert_eq!((q.in_features(), q.out_features()), (12, 9));
        for j in 0..9 {
            for kk in 0..12 {
                let deq = f32::from(q.qt[j * 12 + kk]) * q.scales[j];
                assert!(
                    (deq - w.data[kk * 9 + j]).abs() <= q.scales[j] * 0.5 + 1e-6,
                    "channel {j} weight {kk}"
                );
            }
        }
    }

    #[test]
    fn parts_round_trip_is_bit_exact_and_validated() {
        let w = t(16, 10, 8);
        let q = QuantizedLinear::from_weights(&w);
        let (k, c, qt, scales) = q.to_parts();
        let back = QuantizedLinear::from_parts(k, c, qt.to_vec(), scales.to_vec()).expect("valid");
        assert_eq!(back.qt, q.qt);
        assert_eq!(
            back.scales.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            q.scales.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        let a = t(2, 16, 9);
        let bias = t(1, 10, 10);
        let masks = [None, None];
        assert_eq!(
            back.forward_masked(&a, &bias, &masks).data,
            q.forward_masked(&a, &bias, &masks).data,
            "round-tripped head must be bit-identical"
        );
        assert!(QuantizedLinear::from_parts(16, 10, vec![0; 3], vec![1.0; 10]).is_err());
        assert!(QuantizedLinear::from_parts(2, 2, vec![0; 4], vec![1.0, 0.0]).is_err());
        assert!(QuantizedLinear::from_parts(2, 2, vec![0; 4], vec![1.0; 3]).is_err());
    }

    #[test]
    fn forward_masked_tracks_float_head_and_is_thread_invariant() {
        let a = t(3, 16, 2);
        let w = t(16, 10, 3);
        let bias = t(1, 10, 4);
        let e1 = [(2usize, -0.5f32), (7, 0.25), (2, 0.1)];
        let masks = [
            None,
            Some(SparseLogMask {
                default: -30.0,
                entries: &e1,
            }),
            Some(SparseLogMask {
                default: -30.0,
                entries: &[(4usize, 0.0f32)],
            }),
        ];
        let q = QuantizedLinear::from_weights(&w);
        let got = q.forward_masked(&a, &bias, &masks);
        let float = infer::masked_matmul_cols(&a, &w, &bias, &masks);
        // Same support: -∞ exactly where the float head is -∞.
        for (g, f) in got.data.iter().zip(&float.data) {
            assert_eq!(
                g.is_finite(),
                f.is_finite(),
                "quantized head changed the allowed-column support"
            );
            if f.is_finite() {
                assert!((g - f).abs() <= 0.15, "quantized logp drifted: {g} vs {f}");
            }
        }
        // Bit-identical at any thread count (integer accumulation).
        let before = pool::num_threads();
        for threads in [1, 2, 4] {
            pool::set_num_threads(threads);
            assert_eq!(
                q.forward_masked(&a, &bias, &masks).data,
                got.data,
                "t={threads}"
            );
        }
        pool::set_num_threads(before);
    }

    #[test]
    fn quantized_head_is_bit_identical_across_backends() {
        if !is_supported(Backend::Avx2Fma) {
            eprintln!("skipping: CPU lacks AVX2+FMA");
            return;
        }
        let a = t(4, 40, 5); // > 16 features: exercises the madd body + tail
        let w = t(40, 23, 6);
        let bias = t(1, 23, 7);
        let e = [(3usize, -0.5f32), (17, 0.25), (9, -1.0)];
        let masks = [
            None,
            Some(SparseLogMask {
                default: -30.0,
                entries: &e,
            }),
            Some(SparseLogMask {
                default: -2.0,
                entries: &[],
            }),
            Some(SparseLogMask {
                default: -30.0,
                entries: &e,
            }),
        ];
        let q = QuantizedLinear::from_weights(&w);
        let scalar = with_backend(Backend::Scalar, || q.forward_masked(&a, &bias, &masks));
        let avx2 = with_backend(Backend::Avx2Fma, || q.forward_masked(&a, &bias, &masks));
        assert_eq!(
            scalar.data, avx2.data,
            "int8 head must not depend on backend"
        );
    }
}
