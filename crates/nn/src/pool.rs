//! A small, dependency-free, persistent thread pool for intra-op kernel
//! parallelism (`rayon` is not available in this environment).
//!
//! # Design
//!
//! * **Persistent workers.** A fixed set of worker threads is spawned once
//!   (lazily, on first parallel kernel) and parked on a condvar between
//!   jobs — no per-call thread spawning on the serving hot path.
//! * **Scoped jobs.** [`ThreadPool::run`] borrows the caller's closure for
//!   the duration of the call only: the caller participates in the job
//!   (it executes chunk 0 itself) and blocks until every worker chunk has
//!   finished before returning, so the closure never outlives the call
//!   even though workers see it through an erased `'static` reference.
//! * **Deterministic partitioning.** A job over `items` work items is
//!   split into at most `threads` *contiguous, disjoint* ranges. Kernels
//!   built on top only ever write disjoint output partitions and keep the
//!   per-element accumulation order identical to the sequential loop, so
//!   results are **bit-identical at any thread count** — there are no
//!   atomic or reordered reductions anywhere in `crate::kernels`.
//! * **Single job at a time.** If the pool is already busy (another thread
//!   is inside a parallel region, or a kernel is nested inside one), the
//!   new region simply runs inline on the calling thread. This makes
//!   concurrent callers (e.g. several serving workers) and nested kernels
//!   deadlock-free by construction, and bounds total CPU use: at most one
//!   parallel region is fanned out at any moment.
//!
//! # Configuration
//!
//! The number of threads kernels may use is a process-wide setting read
//! via [`num_threads`] and changed with [`set_num_threads`]. Its initial
//! value comes from the `NN_THREADS` environment variable when set, and
//! from the hardware parallelism otherwise. Because results are
//! bit-identical at any setting, changing it is purely a performance
//! knob.

#![deny(missing_docs)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Erased reference to the caller's job closure. Only ever dereferenced
/// between job publication and the final chunk-completion handshake, while
/// the real (stack-borrowed) closure is guaranteed alive.
#[derive(Clone, Copy)]
struct TaskRef(&'static (dyn Fn(Range<usize>) + Sync));

#[derive(Clone, Copy)]
struct Job {
    task: TaskRef,
    items: usize,
    /// Total participants, caller included. Worker `i` takes chunk `i + 1`
    /// when `i + 1 < threads`; the caller takes chunk 0.
    threads: usize,
}

struct State {
    job: Option<Job>,
    /// Job sequence number; lets a worker tell a fresh job from one it has
    /// already processed across spurious condvar wake-ups.
    seq: u64,
    /// Worker chunks still running for the current job.
    remaining: usize,
    /// A worker chunk panicked during the current job.
    worker_panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: a new job was published (or shutdown).
    work: Condvar,
    /// Signals the caller: all worker chunks of the current job finished.
    done: Condvar,
}

/// The persistent scoped thread pool. Most callers use the module-level
/// [`for_each_chunk`] over the process-global pool instead of constructing
/// their own.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `workers` background threads (plus the caller,
    /// every job can use up to `workers + 1` threads).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                seq: 0,
                remaining: 0,
                worker_panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rntrajrec-nn-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn nn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Maximum threads a single job can use (workers + the caller).
    pub fn max_threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Split `0..items` into at most `threads` contiguous disjoint ranges
    /// and run `f` on each, in parallel across the pool. The caller
    /// executes one chunk itself and blocks until all chunks are done. If
    /// the pool is busy (concurrent or nested region) the whole range runs
    /// inline on the calling thread instead.
    ///
    /// Panics in `f` (on any participating thread) are propagated to the
    /// caller after every chunk has completed, so the borrowed closure
    /// never dangles.
    pub fn run<F: Fn(Range<usize>) + Sync>(&self, threads: usize, items: usize, f: F) {
        let threads = threads.min(self.max_threads()).min(items.max(1)).max(1);
        if threads <= 1 {
            INLINE_SMALL.fetch_add(1, Ordering::Relaxed);
            f(0..items);
            return;
        }
        let task: &(dyn Fn(Range<usize>) + Sync) = &f;
        // SAFETY: the 'static lifetime is a lie confined to this call: the
        // job is removed from the shared state and all worker chunks are
        // joined (remaining == 0) before `run` returns on every path,
        // including panics, so workers never touch `task` after `f` dies.
        let task = TaskRef(unsafe {
            std::mem::transmute::<
                &(dyn Fn(Range<usize>) + Sync),
                &'static (dyn Fn(Range<usize>) + Sync),
            >(task)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.job.is_some() || st.remaining > 0 {
                drop(st);
                INLINE_BUSY.fetch_add(1, Ordering::Relaxed);
                f(0..items); // busy: run inline, never queue (deadlock-free)
                return;
            }
            PARALLEL_JOBS.fetch_add(1, Ordering::Relaxed);
            st.seq += 1;
            st.remaining = threads - 1;
            st.worker_panicked = false;
            st.job = Some(Job {
                task,
                items,
                threads,
            });
        }
        self.shared.work.notify_all();
        // The caller is participant 0.
        let mine = catch_unwind(AssertUnwindSafe(|| {
            (task.0)(chunk_range(items, threads, 0));
        }));
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        let worker_panicked = st.worker_panicked;
        drop(st);
        match mine {
            Err(payload) => resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("nn::pool: a parallel kernel chunk panicked"),
            Ok(()) => {}
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if st.seq != seen => {
                        seen = st.seq;
                        if index + 1 < job.threads {
                            break job;
                        }
                        // Published job has fewer chunks than workers; this
                        // worker sits it out.
                    }
                    _ => {}
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let chunk = chunk_range(job.items, job.threads, index + 1);
        let result = catch_unwind(AssertUnwindSafe(|| (job.task.0)(chunk)));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.worker_panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            st.job = None;
            shared.done.notify_all();
        }
    }
}

/// The `k`-th of `chunks` balanced contiguous ranges over `0..items`.
fn chunk_range(items: usize, chunks: usize, k: usize) -> Range<usize> {
    let base = items / chunks;
    let rem = items % chunks;
    let start = k * base + k.min(rem);
    let len = base + usize::from(k < rem);
    start..start + len
}

// ----- process-global pool ---------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
/// Current intra-op thread setting; 0 means "not initialised yet".
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The `NN_THREADS` environment override, when set to a positive integer.
/// Single source of truth for the variable's parsing — callers layering
/// their own configuration under it (e.g. the serving engine) must use
/// this rather than re-parsing the variable.
pub fn env_threads() -> Option<usize> {
    std::env::var("NN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Upper bound on threads the global pool supports. At least 4 so
/// thread-scaling sweeps (1/2/4) run everywhere; `NN_THREADS` raises it
/// above the hardware parallelism, but the bound is hard-capped at 16 —
/// settings beyond that silently run with 16 threads.
fn capacity() -> usize {
    let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
    hw.max(env_threads().unwrap_or(0)).clamp(4, 16)
}

/// The process-global pool, created on first use.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(capacity() - 1))
}

/// Current intra-op thread count kernels will use. Defaults to
/// `NN_THREADS` when set, otherwise the hardware parallelism (clamped to
/// the pool capacity).
pub fn num_threads() -> usize {
    let n = ACTIVE.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let default = env_threads().unwrap_or(hw).clamp(1, capacity());
    // First initialiser wins; a racing `set_num_threads` is preserved.
    let _ = ACTIVE.compare_exchange(0, default, Ordering::Relaxed, Ordering::Relaxed);
    ACTIVE.load(Ordering::Relaxed)
}

/// Set the process-wide intra-op thread count (clamped to
/// `1..=capacity`); returns the effective value. Purely a performance
/// knob: kernel outputs are bit-identical at any setting.
pub fn set_num_threads(n: usize) -> usize {
    let eff = n.clamp(1, capacity());
    ACTIVE.store(eff, Ordering::Relaxed);
    eff
}

/// Run `f` over disjoint contiguous chunks of `0..items` on the global
/// pool, using at most [`num_threads`] chunks and at least
/// `min_items_per_chunk` items per chunk (small workloads run inline —
/// parallel dispatch has a fixed cost that tiny ops must not pay).
pub fn for_each_chunk<F: Fn(Range<usize>) + Sync>(items: usize, min_items_per_chunk: usize, f: F) {
    let min = min_items_per_chunk.max(1);
    let t = num_threads();
    // `items / 2 < min` ⇔ `items < 2 * min` without the overflow a huge
    // `min` sentinel (e.g. "never parallelise" = usize::MAX) would hit.
    if t <= 1 || items / 2 < min {
        INLINE_SMALL.fetch_add(1, Ordering::Relaxed);
        f(0..items);
        return;
    }
    let chunks = t.min(items / min).max(1);
    if chunks <= 1 {
        INLINE_SMALL.fetch_add(1, Ordering::Relaxed);
        f(0..items);
        return;
    }
    global().run(chunks, items, f);
}

/// How parallel regions were dispatched since process start. A high
/// `inline_busy` share means concurrent serving workers are contending
/// for the single-job pool; a high `inline_small` share means workloads
/// are below the parallelism thresholds. Exported on `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Regions fanned out across pool workers.
    pub parallel_jobs: u64,
    /// Regions run inline because the pool was busy with another job.
    pub inline_busy: u64,
    /// Regions run inline because the workload was too small (or the
    /// thread setting is 1).
    pub inline_small: u64,
}

static PARALLEL_JOBS: AtomicU64 = AtomicU64::new(0);
static INLINE_BUSY: AtomicU64 = AtomicU64::new(0);
static INLINE_SMALL: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-wide [`PoolStats`] dispatch counters.
pub fn stats() -> PoolStats {
    PoolStats {
        parallel_jobs: PARALLEL_JOBS.load(Ordering::Relaxed),
        inline_busy: INLINE_BUSY.load(Ordering::Relaxed),
        inline_small: INLINE_SMALL.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_partition_exactly() {
        for items in [0usize, 1, 5, 16, 17, 100] {
            for chunks in 1..=8usize.min(items.max(1)) {
                let mut covered = vec![0u8; items];
                for k in 0..chunks {
                    for i in chunk_range(items, chunks, k) {
                        covered[i] += 1;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "items={items} chunks={chunks}"
                );
            }
        }
    }

    #[test]
    fn run_visits_every_item_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(4, hits.len(), |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn busy_pool_runs_inline() {
        let pool = ThreadPool::new(3);
        let outer = AtomicU64::new(0);
        let inner = AtomicU64::new(0);
        pool.run(4, 4, |range| {
            for _ in range.clone() {
                outer.fetch_add(1, Ordering::Relaxed);
            }
            // Nested region while the pool is busy: must run inline, not
            // deadlock.
            pool.run(4, 8, |r| {
                inner.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
        assert_eq!(inner.load(Ordering::Relaxed), 4 * 8);
    }

    #[test]
    fn panics_propagate_after_join() {
        let pool = ThreadPool::new(3);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, 4, |range| {
                if range.contains(&0) {
                    panic!("chunk zero exploded");
                }
            });
        }));
        assert!(r.is_err());
        // The pool must still be usable afterwards.
        let count = AtomicU64::new(0);
        pool.run(4, 10, |range| {
            count.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, 4, |range| {
                if !range.contains(&0) {
                    panic!("worker chunk exploded");
                }
            });
        }));
        assert!(r.is_err());
        let count = AtomicU64::new(0);
        pool.run(4, 10, |range| {
            count.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn set_num_threads_clamps() {
        assert_eq!(set_num_threads(1), 1);
        assert!(set_num_threads(usize::MAX) >= 4);
        set_num_threads(1);
    }
}
