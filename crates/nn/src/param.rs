//! Learnable parameters: storage, initialisation, gradient accumulation.

use rand::Rng;

use crate::Tensor;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Initialisation scheme for [`ParamStore::add`].
#[derive(Debug, Clone, Copy)]
pub enum Init {
    Zeros,
    Ones,
    Const(f32),
    /// Xavier/Glorot uniform (default for weight matrices).
    Xavier,
    /// Uniform in `[-a, a]` (embedding tables use a small `a`).
    Uniform(f32),
}

#[derive(Debug)]
pub(crate) struct ParamData {
    pub name: String,
    pub value: Tensor,
    pub grad: Tensor,
    /// Adam first/second moment buffers (allocated lazily by the optimizer).
    pub m: Option<Tensor>,
    pub v: Option<Tensor>,
}

/// Owns every learnable tensor of a model.
///
/// Gradients accumulate across [`crate::Tape::backward`] calls until
/// [`ParamStore::zero_grad`]; the optimizers in [`crate::optim`] consume
/// them.
#[derive(Debug, Default)]
pub struct ParamStore {
    pub(crate) params: Vec<ParamData>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new `[rows, cols]` parameter.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        init: Init,
        rng: &mut impl Rng,
    ) -> ParamId {
        let value = match init {
            Init::Zeros => Tensor::zeros(rows, cols),
            Init::Ones => Tensor::full(rows, cols, 1.0),
            Init::Const(c) => Tensor::full(rows, cols, c),
            Init::Xavier => Tensor::xavier(rows, cols, rng),
            Init::Uniform(a) => Tensor::uniform(rows, cols, a, rng),
        };
        let grad = Tensor::zeros(rows, cols);
        self.params.push(ParamData {
            name: name.into(),
            value,
            grad,
            m: None,
            v: None,
        });
        ParamId(self.params.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters (the paper's "#Para", Fig. 6).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    pub(crate) fn accumulate_grad(&mut self, id: ParamId, g: &[f32]) {
        let grad = &mut self.params[id.0].grad;
        debug_assert_eq!(grad.len(), g.len());
        for (a, b) in grad.data.iter_mut().zip(g) {
            *a += b;
        }
    }

    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.data.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_query() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let w = store.add("w", 2, 3, Init::Xavier, &mut rng);
        let b = store.add("b", 1, 3, Init::Zeros, &mut rng);
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.value(w).shape(), (2, 3));
        assert!(store.value(b).data.iter().all(|&x| x == 0.0));
        assert_eq!(store.name(w), "w");
    }

    #[test]
    fn grads_accumulate_and_reset() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let w = store.add("w", 1, 2, Init::Ones, &mut rng);
        store.accumulate_grad(w, &[1.0, 2.0]);
        store.accumulate_grad(w, &[0.5, 0.5]);
        assert_eq!(store.grad(w).data, vec![1.5, 2.5]);
        store.zero_grad();
        assert_eq!(store.grad(w).data, vec![0.0, 0.0]);
    }

    #[test]
    fn const_init() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let p = store.add("p", 1, 3, Init::Const(0.25), &mut rng);
        assert!(store.value(p).data.iter().all(|&x| x == 0.25));
    }
}
