//! Runtime-dispatched SIMD kernel backends.
//!
//! Every hot inner loop in [`crate::kernels`] has two implementations:
//! the **scalar** reference (the exact code the crate has always run —
//! ascending-index accumulation, zero-skip in the matmul family, one
//! rounding per product) and an **AVX2+FMA** path written with
//! `core::arch::x86_64` intrinsics. Which one runs is a process-wide
//! setting resolved once from the `NN_BACKEND` environment variable
//! (`scalar` | `avx2` | `auto`, default `auto`) gated by
//! `is_x86_feature_detected!`; requesting `avx2` on hardware without it
//! falls back to scalar with a visible warning.
//!
//! # Determinism contract (per backend)
//!
//! * **Scalar** is bit-identical to the pre-backend kernels at any thread
//!   count — nothing about its arithmetic changed.
//! * **Avx2Fma** is *also* bit-identical at any thread count and for any
//!   batch composition: every matmul-family output element is computed as
//!   a chain of fused multiply-adds in ascending `k` (vector lanes and
//!   `f32::mul_add` tails round identically), independent of how the pool
//!   partitions the output. What changes versus scalar is the *rounding*
//!   — FMA fuses the multiply and add into one rounding step, and
//!   whole-slice reductions (dots, norm sums) use 8 partial lanes — so
//!   scalar vs AVX2 outputs differ within a small ULP budget, gated
//!   explicitly in `check_bench`. The softmax / log-softmax family keeps
//!   its scalar `exp` loop and ascending sums, so it is bit-identical
//!   *across* backends.
//!
//! Kernels read the backend **once at entry on the caller thread** and
//! capture it into their pool closures, so one kernel invocation never
//! mixes backends across chunks. Tests pin a backend without races via
//! the thread-local [`with_backend`].

#![deny(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel backend. `Scalar` is the reference; `Avx2Fma` requires
/// runtime-detected AVX2 + FMA support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The portable reference path (bit-identical to the historical
    /// kernels).
    Scalar,
    /// `core::arch::x86_64` AVX2 + FMA inner loops.
    Avx2Fma,
}

impl Backend {
    /// Stable lowercase name (used by `NN_BACKEND`, `/metrics`, logs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2Fma => "avx2",
        }
    }
}

/// Does the running CPU support the given backend?
pub fn is_supported(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2Fma => false,
    }
}

/// Global backend: 0 = uninitialised, 1 = scalar, 2 = avx2.
static GLOBAL: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Per-thread override installed by [`with_backend`]; 0 = none.
    static OVERRIDE: std::cell::Cell<u8> = const { std::cell::Cell::new(0) };
}

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Avx2Fma => 2,
    }
}

fn decode(v: u8) -> Option<Backend> {
    match v {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Avx2Fma),
        _ => None,
    }
}

/// The `NN_BACKEND` environment override, when set to a recognised value
/// (`scalar`, `avx2`, or `auto`; `auto`/unset means "detect"). Single
/// source of truth for the variable's parsing.
pub fn env_backend() -> Option<Backend> {
    match std::env::var("NN_BACKEND")
        .ok()?
        .trim()
        .to_lowercase()
        .as_str()
    {
        "scalar" => Some(Backend::Scalar),
        "avx2" | "avx2fma" => Some(Backend::Avx2Fma),
        _ => None,
    }
}

fn resolve_default() -> Backend {
    match env_backend() {
        Some(Backend::Avx2Fma) if !is_supported(Backend::Avx2Fma) => {
            eprintln!(
                "rntrajrec-nn: NN_BACKEND=avx2 requested but the CPU lacks \
                 AVX2+FMA; falling back to the scalar backend"
            );
            Backend::Scalar
        }
        Some(b) => b,
        None if is_supported(Backend::Avx2Fma) => Backend::Avx2Fma,
        None => Backend::Scalar,
    }
}

/// The backend kernels on this thread will use: the [`with_backend`]
/// override when inside one, otherwise the process-wide setting
/// (initialised from `NN_BACKEND` + feature detection on first use).
pub fn active() -> Backend {
    if let Some(b) = OVERRIDE.with(|o| decode(o.get())) {
        return b;
    }
    if let Some(b) = decode(GLOBAL.load(Ordering::Relaxed)) {
        return b;
    }
    let b = resolve_default();
    // First initialiser wins; a racing `set_active` is preserved.
    let _ = GLOBAL.compare_exchange(0, encode(b), Ordering::Relaxed, Ordering::Relaxed);
    decode(GLOBAL.load(Ordering::Relaxed)).unwrap_or(Backend::Scalar)
}

/// Name of the active backend (for logs / `/metrics`).
pub fn active_name() -> &'static str {
    active().name()
}

/// Set the process-wide backend; an unsupported request degrades to
/// [`Backend::Scalar`]. Returns the effective backend. Purely a
/// performance/rounding knob — every backend is deterministic at any
/// thread count.
pub fn set_active(b: Backend) -> Backend {
    let eff = if is_supported(b) { b } else { Backend::Scalar };
    GLOBAL.store(encode(eff), Ordering::Relaxed);
    eff
}

/// Run `f` with this thread's kernels pinned to `b` (degrading to scalar
/// when unsupported), restoring the previous setting afterwards — even on
/// panic. The override is thread-local, so concurrent tests pinning
/// different backends never race; pool worker chunks inherit the caller's
/// choice because kernels read the backend once at entry.
pub fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let eff = if is_supported(b) { b } else { Backend::Scalar };
    let _restore = OVERRIDE.with(|o| {
        let prev = o.get();
        o.set(encode(eff));
        Restore(prev)
    });
    f()
}

// ----- AVX2 + FMA inner loops -------------------------------------------------
//
// Safety note shared by every function below: callers must guarantee AVX2
// and FMA are available (enforced by dispatching on `active()`, which only
// yields `Avx2Fma` after `is_x86_feature_detected!`). All loads/stores are
// unaligned (`loadu`/`storeu`), so slice alignment is irrelevant.
//
// Determinism note: per output element the arithmetic chain depends only
// on the slice lengths, never on where a pool chunk starts — vector-lane
// FMA and the `f32::mul_add` tails round identically, so an element
// landing in a vector body in one partitioning and in a tail in another
// still produces the same bits.

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// Horizontal sum of the 8 lanes, fixed reduction tree:
    /// `(lo + hi)` 4-lane, then pairwise.
    #[inline]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s4 = _mm_add_ps(lo, hi);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0b01));
        _mm_cvtss_f32(s1)
    }

    /// Horizontal max of the 8 lanes.
    #[inline]
    unsafe fn hmax(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let m4 = _mm_max_ps(lo, hi);
        let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
        let m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 0b01));
        _mm_cvtss_f32(m1)
    }

    /// `acc[j] = fma(a, x[j], acc[j])` — one fused rounding per element.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(a: f32, x: &[f32], acc: &mut [f32]) {
        debug_assert_eq!(x.len(), acc.len());
        let n = acc.len();
        let av = _mm256_set1_ps(a);
        let mut j = 0;
        while j + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(j));
            let ov = _mm256_loadu_ps(acc.as_ptr().add(j));
            _mm256_storeu_ps(acc.as_mut_ptr().add(j), _mm256_fmadd_ps(av, xv, ov));
            j += 8;
        }
        while j < n {
            *acc.get_unchecked_mut(j) = a.mul_add(*x.get_unchecked(j), *acc.get_unchecked(j));
            j += 1;
        }
    }

    /// The AVX2 twin of the scalar `matmul_axpy` inner kernel:
    /// `orow[j] = Σ_k fma(arow[k], b[k, col0 + j], ·)` in ascending `k`,
    /// 4-blocked over `k` for cache reuse of `orow`. No zero-skip — with
    /// FMA a zero weight contributes exactly nothing, and skipping would
    /// make the chain data-dependent for no gain.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_axpy(
        arow: &[f32],
        b: &[f32],
        stride: usize,
        col0: usize,
        orow: &mut [f32],
    ) {
        let k = arow.len();
        let w = orow.len();
        let mut kk = 0;
        while kk + 4 <= k {
            let a0 = _mm256_set1_ps(arow[kk]);
            let a1 = _mm256_set1_ps(arow[kk + 1]);
            let a2 = _mm256_set1_ps(arow[kk + 2]);
            let a3 = _mm256_set1_ps(arow[kk + 3]);
            let base = kk * stride + col0;
            let b0 = b.as_ptr().add(base);
            let b1 = b.as_ptr().add(base + stride);
            let b2 = b.as_ptr().add(base + 2 * stride);
            let b3 = b.as_ptr().add(base + 3 * stride);
            let mut j = 0;
            while j + 8 <= w {
                let mut o = _mm256_loadu_ps(orow.as_ptr().add(j));
                o = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b0.add(j)), o);
                o = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b1.add(j)), o);
                o = _mm256_fmadd_ps(a2, _mm256_loadu_ps(b2.add(j)), o);
                o = _mm256_fmadd_ps(a3, _mm256_loadu_ps(b3.add(j)), o);
                _mm256_storeu_ps(orow.as_mut_ptr().add(j), o);
                j += 8;
            }
            while j < w {
                let mut o = *orow.get_unchecked(j);
                o = arow[kk].mul_add(*b.get_unchecked(base + j), o);
                o = arow[kk + 1].mul_add(*b.get_unchecked(base + stride + j), o);
                o = arow[kk + 2].mul_add(*b.get_unchecked(base + 2 * stride + j), o);
                o = arow[kk + 3].mul_add(*b.get_unchecked(base + 3 * stride + j), o);
                *orow.get_unchecked_mut(j) = o;
                j += 1;
            }
            kk += 4;
        }
        while kk < k {
            let base = kk * stride + col0;
            axpy(arow[kk], &b[base..base + w], orow);
            kk += 1;
        }
    }

    /// Dot product: 8 partial FMA lanes over the body, a fixed horizontal
    /// reduction, then `mul_add` over the tail — the chain depends only on
    /// the slice length.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            acc = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
                acc,
            );
            i += 8;
        }
        let mut s = hsum(acc);
        while i < n {
            s = a.get_unchecked(i).mul_add(*b.get_unchecked(i), s);
            i += 1;
        }
        s
    }

    /// Strided column dot `Σ_k arow[k] · b[k·stride + col]` with the same
    /// per-element FMA chain as the dense AVX2 matmul (ascending `k`, no
    /// zero-skip), so a sparse-head logit equals the dense-head logit bit
    /// for bit under this backend.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_col(arow: &[f32], b: &[f32], stride: usize, col: usize) -> f32 {
        let mut acc = 0.0f32;
        let mut idx = col;
        for &av in arow {
            acc = av.mul_add(*b.get_unchecked(idx), acc);
            idx += stride;
        }
        acc
    }

    /// Max over a slice. Max is order-insensitive for non-NaN inputs, so
    /// this equals the scalar fold bit-for-bit on real data.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn vmax(x: &[f32]) -> f32 {
        let n = x.len();
        let mut m = f32::NEG_INFINITY;
        let mut i = 0;
        if n >= 8 {
            let mut mv = _mm256_loadu_ps(x.as_ptr());
            i = 8;
            while i + 8 <= n {
                mv = _mm256_max_ps(mv, _mm256_loadu_ps(x.as_ptr().add(i)));
                i += 8;
            }
            m = hmax(mv);
        }
        while i < n {
            m = m.max(*x.get_unchecked(i));
            i += 1;
        }
        m
    }

    /// Sum over a slice: 8 partial lanes + horizontal + scalar tail.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn vsum(x: &[f32]) -> f32 {
        let n = x.len();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(x.as_ptr().add(i)));
            i += 8;
        }
        let mut s = hsum(acc);
        while i < n {
            s += *x.get_unchecked(i);
            i += 1;
        }
        s
    }

    /// Sum of squared deviations `Σ (x[i] + neg_mu)²` with fused
    /// square-accumulate lanes.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn vsumsq(x: &[f32], neg_mu: f32) -> f32 {
        let n = x.len();
        let nm = _mm256_set1_ps(neg_mu);
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let d = _mm256_add_ps(_mm256_loadu_ps(x.as_ptr().add(i)), nm);
            acc = _mm256_fmadd_ps(d, d, acc);
            i += 8;
        }
        let mut s = hsum(acc);
        while i < n {
            let d = *x.get_unchecked(i) + neg_mu;
            s = d.mul_add(d, s);
            i += 1;
        }
        s
    }

    /// `x[i] *= c` in place (element-wise multiply rounds identically to
    /// the scalar loop).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale_in_place(x: &mut [f32], c: f32) {
        let n = x.len();
        let cv = _mm256_set1_ps(c);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_mul_ps(_mm256_loadu_ps(x.as_ptr().add(i)), cv);
            _mm256_storeu_ps(x.as_mut_ptr().add(i), v);
            i += 8;
        }
        while i < n {
            *x.get_unchecked_mut(i) *= c;
            i += 1;
        }
    }

    /// `x[i] += c` in place.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_in_place(x: &mut [f32], c: f32) {
        let n = x.len();
        let cv = _mm256_set1_ps(c);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(x.as_ptr().add(i)), cv);
            _mm256_storeu_ps(x.as_mut_ptr().add(i), v);
            i += 8;
        }
        while i < n {
            *x.get_unchecked_mut(i) += c;
            i += 1;
        }
    }

    /// The layer-norm affine epilogue
    /// `dst[j] = ((src[j] + neg_mu) * inv) * gamma[j] + beta[j]`, with the
    /// exact (non-fused) operation chain of the scalar loop so results are
    /// bit-identical to it.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn norm_affine(
        src: &[f32],
        neg_mu: f32,
        inv: f32,
        gamma: &[f32],
        beta: &[f32],
        dst: &mut [f32],
    ) {
        let n = dst.len();
        let nm = _mm256_set1_ps(neg_mu);
        let iv = _mm256_set1_ps(inv);
        let mut j = 0;
        while j + 8 <= n {
            let x = _mm256_add_ps(_mm256_loadu_ps(src.as_ptr().add(j)), nm);
            let norm = _mm256_mul_ps(x, iv);
            let g = _mm256_mul_ps(norm, _mm256_loadu_ps(gamma.as_ptr().add(j)));
            let y = _mm256_add_ps(g, _mm256_loadu_ps(beta.as_ptr().add(j)));
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), y);
            j += 8;
        }
        while j < n {
            *dst.get_unchecked_mut(j) = ((src.get_unchecked(j) + neg_mu) * inv)
                * gamma.get_unchecked(j)
                + beta.get_unchecked(j);
            j += 1;
        }
    }

    /// Exact int8 dot with i32 accumulation: sign-extend 16 lanes at a
    /// time to i16 and `madd` into 8 i32 accumulators. Integer arithmetic
    /// is exact, so this equals the scalar i32 loop bit-for-bit.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
            let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
            i += 16;
        }
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let s4 = _mm_add_epi32(lo, hi);
        let s2 = _mm_add_epi32(s4, _mm_shuffle_epi32(s4, 0b0100_1110));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0b1011_0001));
        let mut s = _mm_cvtsi128_si32(s1);
        while i < n {
            s += (*a.get_unchecked(i) as i32) * (*b.get_unchecked(i) as i32);
            i += 1;
        }
        s
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::{
    add_in_place, axpy, dot, dot_col, dot_i8, matmul_axpy, norm_affine, scale_in_place, vmax, vsum,
    vsumsq,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_names_round_trip() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2Fma.name(), "avx2");
        assert!(is_supported(Backend::Scalar));
    }

    #[test]
    fn with_backend_restores_on_exit_and_panic() {
        let base = active();
        with_backend(Backend::Scalar, || {
            assert_eq!(active(), Backend::Scalar);
        });
        assert_eq!(active(), base);
        let r = std::panic::catch_unwind(|| {
            with_backend(Backend::Scalar, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(active(), base);
    }

    #[test]
    fn unsupported_request_degrades_to_scalar() {
        // On machines without AVX2 the pin degrades; on machines with it
        // the pin holds. Either way the call must not panic and must
        // yield a supported backend.
        with_backend(Backend::Avx2Fma, || {
            assert!(is_supported(active()));
        });
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_primitives_match_scalar_semantics() {
        if !is_supported(Backend::Avx2Fma) {
            eprintln!("skipping: CPU lacks AVX2+FMA");
            return;
        }
        let x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..37).map(|i| (i as f32 * 0.11).cos()).collect();
        // Exact-by-design primitives.
        unsafe {
            let m = vmax(&x);
            assert_eq!(m, x.iter().cloned().fold(f32::NEG_INFINITY, f32::max));
            let mut sx = x.clone();
            scale_in_place(&mut sx, 1.7);
            let want: Vec<f32> = x.iter().map(|&v| v * 1.7).collect();
            assert_eq!(sx, want);
            let mut ax = x.clone();
            add_in_place(&mut ax, -0.3);
            let want: Vec<f32> = x.iter().map(|&v| v + -0.3).collect();
            assert_eq!(ax, want);
            // Reductions: within a loose tolerance of the scalar order.
            let d = dot(&x, &y);
            let want: f32 = x.iter().zip(&y).map(|(&a, &b)| a * b).sum();
            assert!(
                (d - want).abs() <= 1e-4 * want.abs().max(1.0),
                "{d} vs {want}"
            );
            let s = vsum(&x);
            let want: f32 = x.iter().sum();
            assert!((s - want).abs() <= 1e-4 * want.abs().max(1.0));
            let q = vsumsq(&x, -0.5);
            let want: f32 = x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum();
            assert!((q - want).abs() <= 1e-4 * want.abs().max(1.0));
        }
        // Integer dot is exact.
        let a: Vec<i8> = (0..53).map(|i| ((i * 7) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..53).map(|i| ((i * 13) % 255 - 127) as i8).collect();
        let want: i32 = a.iter().zip(&b).map(|(&p, &q)| p as i32 * q as i32).sum();
        unsafe {
            assert_eq!(dot_i8(&a, &b), want);
        }
    }
}
