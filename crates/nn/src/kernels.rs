//! The single home of every numeric kernel in the workspace.
//!
//! Both execution paths of the engine call into this module — the autograd
//! [`crate::Tape`] (forward *and* backward) and the tape-free
//! [`crate::infer`] serving path — so each kernel has exactly one body to
//! optimise and parity-test. The kernels cover the model's entire compute
//! profile: the matmul family (GPSFormer attention, decoder steps),
//! row-wise softmax / log-softmax, layer-norm statistics, element-wise
//! maps and broadcasts, embedding gathers, and the CSR graph-attention
//! gather/scatter used by GridGNN (edge scores, segmented softmax,
//! neighbour aggregation).
//!
//! # Determinism under parallelism
//!
//! Heavy kernels are parallelised over the [`crate::pool`] thread pool by
//! **disjoint output partitions**: matmuls by output-row ranges (or
//! output-column ranges for `[1, C]` results such as decoder logits), the
//! CSR ops by destination-node segment ranges, element-wise maps by flat
//! element ranges. Every output element is always accumulated in the same
//! (ascending-index) order as the sequential loop and no reduction ever
//! crosses a partition boundary, so results are **bit-identical at any
//! thread count** — the property the serving stack's "batched ≡
//! sequential" contract is built on, and what the `kernel_parity` proptest
//! suite pins down.
//!
//! # Backends
//!
//! The hot inner loops dispatch between the scalar reference path and an
//! AVX2+FMA path (see [`backend`]). Each public kernel reads the backend
//! **once at entry on the caller thread** and captures it into its pool
//! closures, so a single invocation never mixes backends across chunks
//! and [`backend::with_backend`] pins reliably even though inner chunks
//! run on pool workers. Both backends satisfy the thread-count
//! determinism contract above; they differ from *each other* only by
//! FMA/partial-lane rounding in the matmul family and norm statistics
//! (the softmax family is bit-identical across backends — see
//! `backend`'s module docs for the full contract).

#![deny(missing_docs)]

pub mod backend;

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::{pool, GraphCsr, Tensor};

/// Minimum multiply-adds per chunk before a matmul engages the pool.
const MIN_MATMUL_WORK: usize = 32 * 1024;
/// Minimum elements per chunk for element-wise maps and broadcasts.
const MIN_MAP_ELEMS: usize = 16 * 1024;
/// Minimum scalar reads per chunk for the CSR graph ops.
const MIN_GRAPH_WORK: usize = 8 * 1024;
/// Minimum elements per chunk for row-wise softmax / norm statistics.
const MIN_ROW_WORK: usize = 8 * 1024;
/// Minimum elements per chunk for row-gather copies.
const MIN_COPY_ELEMS: usize = 32 * 1024;

/// Process-wide count of matmul-family kernel invocations
/// ([`matmul`] + [`matmul_nt`] + [`matmul_tn`], forward and backward).
static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);

/// Monotone process-wide counter of matmul-family kernel invocations.
/// Exported on `/metrics`; for benchmark accounting use [`profile_scope`]
/// instead — a global delta is racy the moment any other thread computes.
pub fn matmul_invocations() -> u64 {
    MATMUL_CALLS.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-thread `(invocations, flop estimate)` totals for the matmul
    /// family, the basis of [`profile_scope`] deltas.
    static KERNEL_TOTALS: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// One matmul-family invocation entered on this thread: bump the global
/// counter, the thread-local totals, and (when tracing is enabled) the
/// innermost open observability span. `flops` is the `2·R·K·C`
/// multiply-add estimate — sparsity-aware kernels
/// ([`masked_matmul_cols`], the quantized head) pass `2·K·(computed
/// columns)` so attribution reflects work actually done, not the dense
/// shape. Runs on the *caller* thread before any work is handed to the
/// pool, so scoped accounting is exact.
#[inline]
pub(crate) fn note_matmul(flops: u64) {
    // Fault point at the kernel-dispatch chokepoint: an injected panic
    // unwinds the caller (exercising batch fallback / worker supervision),
    // an injected delay models a stalled kernel (exercising the engine
    // watchdog). One relaxed load when chaos is disarmed.
    rntrajrec_chaos::point_infallible("kernel.dispatch");
    MATMUL_CALLS.fetch_add(1, Ordering::Relaxed);
    let _ = KERNEL_TOTALS.try_with(|t| {
        let (m, f) = t.get();
        t.set((m + 1, f + flops));
    });
    rntrajrec_obs::kernel_event(1, flops);
}

/// What a [`profile_scope`] measured: matmul invocations, their FLOP
/// estimate, and wall time between open and [`ProfileScope::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelProfile {
    /// The tag the scope was opened with.
    pub tag: &'static str,
    /// Matmul-family invocations issued from this thread in the scope.
    pub matmuls: u64,
    /// Estimated floating-point operations (`2·R·K·C` per invocation).
    pub flops: u64,
    /// Wall-clock time the scope was open.
    pub wall: Duration,
}

/// Scoped kernel profiler; see [`profile_scope`].
#[must_use = "call finish() to read the measured profile"]
pub struct ProfileScope {
    tag: &'static str,
    started: Instant,
    at_open: (u64, u64),
    /// Keeps the section visible as a span (with its kernel counts) when
    /// tracing is enabled; a no-op otherwise.
    _span: rntrajrec_obs::SpanGuard,
}

/// Open a profiling scope that attributes matmul count, FLOP estimate,
/// and wall time to the code it encloses. Deltas come from *thread-local*
/// totals, so concurrent work on other threads cannot pollute the
/// measurement (the race the old global-counter reset dance had); the
/// invocations counted are those issued from the calling thread, which is
/// exact for the serving stack where kernels are entered on the caller
/// and only inner chunks fan out to the pool. When tracing is enabled the
/// scope also records an observability span named `tag`.
pub fn profile_scope(tag: &'static str) -> ProfileScope {
    ProfileScope {
        tag,
        started: Instant::now(),
        at_open: KERNEL_TOTALS.with(Cell::get),
        _span: rntrajrec_obs::span(tag),
    }
}

impl ProfileScope {
    /// Close the scope and return what it measured.
    pub fn finish(self) -> KernelProfile {
        let (m0, f0) = self.at_open;
        let (m1, f1) = KERNEL_TOTALS.with(Cell::get);
        KernelProfile {
            tag: self.tag,
            matmuls: m1 - m0,
            flops: f1 - f0,
            wall: self.started.elapsed(),
        }
    }
}

/// Raw mutable output pointer shared across pool chunks. Sound because
/// every kernel writes strictly disjoint index ranges per chunk.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Run `f` over disjoint chunks of `rows` output rows; each call receives
/// the row range and the matching mutable row-major slice of `out`
/// (`width` elements per row).
pub(crate) fn par_row_chunks<F>(out: &mut [f32], width: usize, rows: usize, min_rows: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * width);
    let ptr = SendPtr(out.as_mut_ptr());
    pool::for_each_chunk(rows, min_rows, move |range| {
        // SAFETY: chunk ranges are disjoint, so the sub-slices never alias.
        let slice = unsafe {
            std::slice::from_raw_parts_mut(ptr.get().add(range.start * width), range.len() * width)
        };
        f(range, slice);
    });
}

// ----- matrix products -------------------------------------------------------

/// The matmul inner kernel: `orow[j] += Σ_k arow[k] · b[k, col0 + j]`,
/// register-blocked over `k` (blocks of four `a` values held in registers,
/// one pass over the output row per block) so the output row is traversed
/// 4× less often and four rows of `B` stream through cache together. Per
/// output element the floating-point work is still `+= a_k·b_kj` in
/// ascending `k` with zero entries of `arow` skipped — one rounding step
/// per product, in the same order as the scalar loop, so blocked and
/// unblocked results are bit-identical (pinned by the `kernel_parity`
/// suite).
///
/// `stride` is the row stride of `b`; `col0` the first output column (used
/// by the `[1, C]` path, which partitions output columns across the pool).
///
/// `bk` is the backend captured at the calling kernel's entry; on the
/// AVX2 path every element is a chain of fused multiply-adds in ascending
/// `k` with no zero-skip (see [`backend`]), equally partition-invariant.
pub(crate) fn matmul_axpy(
    bk: backend::Backend,
    arow: &[f32],
    b: &[f32],
    stride: usize,
    col0: usize,
    orow: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if bk == backend::Backend::Avx2Fma {
        // SAFETY: `Avx2Fma` only ever becomes active after runtime
        // feature detection (see `backend::is_supported`).
        unsafe { backend::matmul_axpy(arow, b, stride, col0, orow) };
        return;
    }
    let _ = bk;
    let k = arow.len();
    let w = orow.len();
    let mut kk = 0;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
            let base = kk * stride + col0;
            let b0 = &b[base..base + w];
            let b1 = &b[base + stride..base + stride + w];
            let b2 = &b[base + 2 * stride..base + 2 * stride + w];
            let b3 = &b[base + 3 * stride..base + 3 * stride + w];
            for j in 0..w {
                let mut o = orow[j];
                o += a0 * b0[j];
                o += a1 * b1[j];
                o += a2 * b2[j];
                o += a3 * b3[j];
                orow[j] = o;
            }
        } else {
            // A zero inside the block: fall back to the per-k loop with the
            // zero-skip (same accumulation order either way).
            for t in 0..4 {
                let av = arow[kk + t];
                if av == 0.0 {
                    continue;
                }
                let base = (kk + t) * stride + col0;
                let brow = &b[base..base + w];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        kk += 4;
    }
    while kk < k {
        let av = arow[kk];
        if av != 0.0 {
            let base = kk * stride + col0;
            let brow = &b[base..base + w];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
        kk += 1;
    }
}

/// `A[R,K] × B[K,C]`, parallel over output rows (output columns when
/// `R == 1`), with a register-blocked k-loop ([`matmul_axpy`]). Zero
/// entries of `A` are skipped — per output element the accumulation is
/// ascending over `k`, identical in every partitioning and block size.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.rows, "matmul: inner dimension mismatch");
    let (r, k, c) = (a.rows, a.cols, b.cols);
    note_matmul(2 * (r * k * c) as u64);
    let bk = backend::active();
    let mut out = Tensor::zeros(r, c);
    if r == 1 {
        par_row_chunks(
            &mut out.data,
            1,
            c,
            (MIN_MATMUL_WORK / k.max(1)).max(1),
            |cols, dst| matmul_axpy(bk, &a.data, &b.data, c, cols.start, dst),
        );
    } else {
        let min_rows = (MIN_MATMUL_WORK / (k * c).max(1)).max(1);
        par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
            for (ri, i) in rows.enumerate() {
                let arow = &a.data[i * k..(i + 1) * k];
                let orow = &mut dst[ri * c..(ri + 1) * c];
                matmul_axpy(bk, arow, &b.data, c, 0, orow);
            }
        });
    }
    out
}

/// `A[R,K] × B[C,K]ᵀ → [R,C]` without materialising the transpose;
/// parallel over output rows (columns when `R == 1`).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.cols, "matmul_nt: inner dimension mismatch");
    let (r, k, c) = (a.rows, a.cols, b.rows);
    note_matmul(2 * (r * k * c) as u64);
    let bk = backend::active();
    let mut out = Tensor::zeros(r, c);
    let dot = move |arow: &[f32], j: usize| -> f32 {
        let brow = &b.data[j * k..(j + 1) * k];
        #[cfg(target_arch = "x86_64")]
        if bk == backend::Backend::Avx2Fma {
            // SAFETY: `Avx2Fma` is only active after runtime detection.
            return unsafe { backend::dot(&arow[..k], brow) };
        }
        let _ = bk;
        let mut s = 0.0;
        for kk in 0..k {
            s += arow[kk] * brow[kk];
        }
        s
    };
    if r == 1 {
        par_row_chunks(
            &mut out.data,
            1,
            c,
            (MIN_MATMUL_WORK / k.max(1)).max(1),
            |cols, dst| {
                for (oi, j) in cols.enumerate() {
                    dst[oi] = dot(&a.data, j);
                }
            },
        );
    } else {
        let min_rows = (MIN_MATMUL_WORK / (k * c).max(1)).max(1);
        par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
            for (ri, i) in rows.enumerate() {
                let arow = &a.data[i * k..(i + 1) * k];
                for j in 0..c {
                    dst[ri * c + j] = dot(arow, j);
                }
            }
        });
    }
    out
}

/// `A[K,R]ᵀ × B[K,C] → [R,C]` (the backward-pass transpose product);
/// parallel over output rows (columns when `R == 1`). Zero entries of `A`
/// are skipped, matching [`matmul`]'s accumulation exactly.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows, b.rows, "matmul_tn: inner dimension mismatch");
    let (k, r, c) = (a.rows, a.cols, b.cols);
    note_matmul(2 * (k * r * c) as u64);
    let bk = backend::active();
    let mut out = Tensor::zeros(r, c);
    if r == 1 {
        let ptr = SendPtr(out.data.as_mut_ptr());
        pool::for_each_chunk(c, (MIN_MATMUL_WORK / k.max(1)).max(1), move |cols| {
            // SAFETY: column ranges are disjoint across chunks.
            let dst =
                unsafe { std::slice::from_raw_parts_mut(ptr.get().add(cols.start), cols.len()) };
            #[cfg(target_arch = "x86_64")]
            if bk == backend::Backend::Avx2Fma {
                for kk in 0..k {
                    let brow = &b.data[kk * c..(kk + 1) * c];
                    // SAFETY: `Avx2Fma` is only active after detection.
                    unsafe { backend::axpy(a.data[kk], &brow[cols.clone()], dst) };
                }
                return;
            }
            let _ = bk;
            for kk in 0..k {
                let av = a.data[kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data[kk * c..(kk + 1) * c];
                for (o, &bv) in dst.iter_mut().zip(&brow[cols.clone()]) {
                    *o += av * bv;
                }
            }
        });
    } else {
        let min_rows = (MIN_MATMUL_WORK / (k * c).max(1)).max(1);
        par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
            let rows_start = rows.start;
            let nrows = rows.len();
            for kk in 0..k {
                let brow = &b.data[kk * c..(kk + 1) * c];
                for ri in 0..nrows {
                    let av = a.data[kk * r + rows_start + ri];
                    let orow = &mut dst[ri * c..(ri + 1) * c];
                    #[cfg(target_arch = "x86_64")]
                    if bk == backend::Backend::Avx2Fma {
                        // SAFETY: `Avx2Fma` is only active after detection.
                        unsafe { backend::axpy(av, brow, orow) };
                        continue;
                    }
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        });
    }
    out
}

// ----- element-wise maps -----------------------------------------------------

/// Apply `f` element-wise; parallel over flat element ranges.
pub fn unary_map(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = Tensor::zeros(a.rows, a.cols);
    par_row_chunks(
        &mut out.data,
        1,
        a.data.len(),
        MIN_MAP_ELEMS,
        |range, dst| {
            for (d, &x) in dst.iter_mut().zip(&a.data[range]) {
                *d = f(x);
            }
        },
    );
    out
}

/// Apply `f` element-wise over two same-shaped tensors; parallel over flat
/// element ranges.
pub fn binary_map(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "binary_map: shape mismatch");
    let mut out = Tensor::zeros(a.rows, a.cols);
    par_row_chunks(
        &mut out.data,
        1,
        a.data.len(),
        MIN_MAP_ELEMS,
        |range, dst| {
            for ((d, &x), &y) in dst
                .iter_mut()
                .zip(&a.data[range.clone()])
                .zip(&b.data[range])
            {
                *d = f(x, y);
            }
        },
    );
    out
}

/// `out[r,c] = f(m[r,c], v[c])` for a `[1,C]` row vector `v`; parallel
/// over row ranges.
pub fn rowvec_map(m: &Tensor, v: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let (r, c) = m.shape();
    assert_eq!((v.rows, v.cols), (1, c), "rowvec_map: v must be [1,C]");
    let mut out = Tensor::zeros(r, c);
    let min_rows = (MIN_MAP_ELEMS / c.max(1)).max(1);
    par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
        for (ri, i) in rows.enumerate() {
            let src = &m.data[i * c..(i + 1) * c];
            let drow = &mut dst[ri * c..(ri + 1) * c];
            for ((d, &x), &y) in drow.iter_mut().zip(src).zip(&v.data) {
                *d = f(x, y);
            }
        }
    });
    out
}

/// `out[r,c] = f(m[r,c], v[r])` for an `[R,1]` column vector `v`; parallel
/// over row ranges.
pub fn colvec_map(m: &Tensor, v: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let (r, c) = m.shape();
    assert_eq!((v.rows, v.cols), (r, 1), "colvec_map: v must be [R,1]");
    let mut out = Tensor::zeros(r, c);
    let min_rows = (MIN_MAP_ELEMS / c.max(1)).max(1);
    par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
        for (ri, i) in rows.enumerate() {
            let y = v.data[i];
            let src = &m.data[i * c..(i + 1) * c];
            let drow = &mut dst[ri * c..(ri + 1) * c];
            for (d, &x) in drow.iter_mut().zip(src) {
                *d = f(x, y);
            }
        }
    });
    out
}

/// Element-wise `a + b` (same shape).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    binary_map(a, b, |x, y| x + y)
}

/// Element-wise `a - b` (same shape).
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "sub: shape mismatch");
    binary_map(a, b, |x, y| x - y)
}

/// Element-wise (Hadamard) `a ⊙ b` (same shape).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "mul: shape mismatch");
    binary_map(a, b, |x, y| x * y)
}

/// `a · c` for a constant scalar.
pub fn scale(a: &Tensor, c: f32) -> Tensor {
    unary_map(a, |x| x * c)
}

/// `a + c` for a constant scalar.
pub fn add_const(a: &Tensor, c: f32) -> Tensor {
    unary_map(a, |x| x + c)
}

/// `[R,C] + [1,C]` broadcast over rows.
pub fn add_rowvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.rows, 1, "add_rowvec: v must be [1,C]");
    assert_eq!(m.cols, v.cols, "add_rowvec: column mismatch");
    rowvec_map(m, v, |x, y| x + y)
}

/// `[R,C] ⊙ [1,C]` broadcast over rows.
pub fn mul_rowvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.rows, 1, "mul_rowvec: v must be [1,C]");
    assert_eq!(m.cols, v.cols, "mul_rowvec: column mismatch");
    rowvec_map(m, v, |x, y| x * y)
}

/// `[R,C] + [R,1]` broadcast over columns.
pub fn add_colvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.cols, 1, "add_colvec: v must be [R,1]");
    assert_eq!(m.rows, v.rows, "add_colvec: row mismatch");
    colvec_map(m, v, |x, y| x + y)
}

/// `[R,C] ⊙ [R,1]` broadcast over columns.
pub fn mul_colvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.cols, 1, "mul_colvec: v must be [R,1]");
    assert_eq!(m.rows, v.rows, "mul_colvec: row mismatch");
    colvec_map(m, v, |x, y| x * y)
}

/// Element-wise logistic sigmoid.
pub fn sigmoid(a: &Tensor) -> Tensor {
    unary_map(a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Element-wise hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    unary_map(a, |x| x.tanh())
}

/// Element-wise `max(x, 0)`.
pub fn relu(a: &Tensor) -> Tensor {
    unary_map(a, |x| x.max(0.0))
}

/// Element-wise leaky ReLU with the given negative slope.
pub fn leaky_relu(a: &Tensor, slope: f32) -> Tensor {
    unary_map(a, move |x| if x > 0.0 { x } else { slope * x })
}

/// Element-wise `sqrt(max(x, 0))`.
pub fn sqrt(a: &Tensor) -> Tensor {
    unary_map(a, |x| x.max(0.0).sqrt())
}

/// Element-wise reciprocal.
pub fn recip(a: &Tensor) -> Tensor {
    unary_map(a, |x| 1.0 / x)
}

// ----- softmax & norm statistics ---------------------------------------------

/// Numerically stable in-place softmax over one contiguous slice.
pub fn softmax_in_place(row: &mut [f32]) {
    softmax_in_place_bk(backend::active(), row);
}

/// [`softmax_in_place`] with the backend captured at the calling kernel's
/// entry. The AVX2 path vectorises the max scan and the normalise pass
/// but keeps the scalar `exp` + ascending sum, so both backends produce
/// **bit-identical** softmax output (max is order-insensitive for
/// non-NaN data, and element-wise multiply rounds identically).
pub(crate) fn softmax_in_place_bk(bk: backend::Backend, row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if bk == backend::Backend::Avx2Fma {
        // SAFETY: `Avx2Fma` is only active after runtime detection.
        let max = unsafe { backend::vmax(row) };
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        let inv = 1.0 / sum;
        unsafe { backend::scale_in_place(row, inv) };
        return;
    }
    let _ = bk;
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    row.iter_mut().for_each(|x| *x *= inv);
}

/// Stable log-softmax epilogue over one contiguous slice: max scan,
/// ascending `Σ exp(x − max)`, `ln + max`, subtract. Shared by
/// [`log_softmax_rows`], [`masked_log_softmax_rows`], and the sparse /
/// quantized segment heads; the AVX2 path vectorises only the max scan
/// and the subtract pass (`x − lse ≡ x + (−lse)` exactly), so output is
/// bit-identical across backends.
pub(crate) fn log_softmax_slice(bk: backend::Backend, row: &mut [f32]) {
    let max = row_max(bk, row);
    let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    #[cfg(target_arch = "x86_64")]
    if bk == backend::Backend::Avx2Fma {
        // SAFETY: `Avx2Fma` is only active after runtime detection.
        unsafe { backend::add_in_place(row, -lse) };
        return;
    }
    row.iter_mut().for_each(|x| *x -= lse);
}

/// Max over a slice, backend-dispatched (identical bits either way).
fn row_max(bk: backend::Backend, row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if bk == backend::Backend::Avx2Fma {
        // SAFETY: `Avx2Fma` is only active after runtime detection.
        return unsafe { backend::vmax(row) };
    }
    let _ = bk;
    row.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
}

/// Row-wise softmax; parallel over row ranges (each row is one
/// self-contained reduction, so partitioning never reorders a sum).
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let mut t = a.clone();
    let (r, c) = t.shape();
    if c == 0 {
        return t;
    }
    let bk = backend::active();
    let min_rows = (MIN_ROW_WORK / c).max(1);
    par_row_chunks(&mut t.data, c, r, min_rows, |_, dst| {
        for row in dst.chunks_exact_mut(c) {
            softmax_in_place_bk(bk, row);
        }
    });
    t
}

/// Row-wise stable log-softmax; parallel over row ranges.
pub fn log_softmax_rows(a: &Tensor) -> Tensor {
    let mut t = a.clone();
    let (r, c) = t.shape();
    if c == 0 {
        return t;
    }
    let bk = backend::active();
    let min_rows = (MIN_ROW_WORK / c).max(1);
    par_row_chunks(&mut t.data, c, r, min_rows, |_, dst| {
        for row in dst.chunks_exact_mut(c) {
            log_softmax_slice(bk, row);
        }
    });
    t
}

/// Sparse per-row constraint mask for [`masked_log_softmax_rows`]: the
/// dense mask row is `default` everywhere except at the `(column,
/// log-weight)` `entries` (a later duplicate entry wins, matching a dense
/// build by overwrites). This is the decoder's Eq. 16 constraint mask
/// without ever materialising the `[1, |V|]` row.
#[derive(Clone, Copy, Debug)]
pub struct SparseLogMask<'a> {
    /// Log-weight at every column not named by an entry.
    pub default: f32,
    /// `(column, log-weight)` overrides; columns must be in range.
    pub entries: &'a [(usize, f32)],
}

/// Fused constraint-mask add + row-wise stable log-softmax (the decoder's
/// Eq. 16 epilogue): one kernel instead of the mask build, `add`, and
/// `log_softmax_rows` sequence, with no intermediate tensors. Rows with a
/// mask compute `log_softmax(x + mask)`; rows with `None` are a plain
/// copy + log-softmax. The per-element arithmetic
/// (`x + m`, max fold, `Σ exp(x − max)`, `ln + max`, subtract) is exactly
/// the composed route's, so results are bit-identical to
/// `log_softmax_rows(add(x, mask))` — parallel over row ranges.
pub fn masked_log_softmax_rows(a: &Tensor, masks: &[Option<SparseLogMask<'_>>]) -> Tensor {
    let (r, c) = a.shape();
    assert_eq!(masks.len(), r, "masked_log_softmax_rows: one mask per row");
    let mut out = Tensor::zeros(r, c);
    if c == 0 {
        return out;
    }
    let bk = backend::active();
    let min_rows = (MIN_ROW_WORK / c).max(1);
    par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
        for (ri, i) in rows.enumerate() {
            let src = &a.data[i * c..(i + 1) * c];
            let row = &mut dst[ri * c..(ri + 1) * c];
            match masks[i] {
                None => {
                    row.copy_from_slice(src);
                }
                Some(mask) => {
                    for (o, &x) in row.iter_mut().zip(src) {
                        *o = x + mask.default;
                    }
                    for &(col, lw) in mask.entries {
                        row[col] = src[col] + lw;
                    }
                }
            }
            log_softmax_slice(bk, row);
        }
    });
    out
}

/// Is entry `p` of `entries` overridden by a later entry naming the same
/// column? (A dense mask built by overwrites keeps the *last* write.)
#[inline]
pub(crate) fn entry_is_overridden(entries: &[(usize, f32)], p: usize) -> bool {
    let col = entries[p].0;
    entries[p + 1..].iter().any(|&(q, _)| q == col)
}

/// Strided column dot `Σ_k arow[k] · b[k·stride + col]` with exactly the
/// per-element chain of the dense matmul under `bk` (scalar: ascending
/// `k`, zero entries of `arow` skipped; AVX2: ascending-`k` FMA, no
/// skip), so each computed logit is bit-identical to the dense head's.
#[inline]
fn col_dot(bk: backend::Backend, arow: &[f32], b: &[f32], stride: usize, col: usize) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if bk == backend::Backend::Avx2Fma {
        // SAFETY: `Avx2Fma` is only active after runtime detection.
        return unsafe { backend::dot_col(arow, b, stride, col) };
    }
    let _ = bk;
    let mut acc = 0.0f32;
    for (kk, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        acc += av * b[kk * stride + col];
    }
    acc
}

/// The sparse-aware decoder segment head (Eq. 15–16 fused): for each row
/// `i` of `a[R,K]`, compute `log_softmax(a_i · B + bias + mask_i)` —
/// but for rows whose constraint mask names allowed columns, compute
/// **only those columns** and normalise over them alone; every other
/// column is an exact zero probability (`-∞` log-probability). This
/// replaces the dense `[R,K]×[K,C]` matmul + `add_rowvec` +
/// [`masked_log_softmax_rows`] sequence with work proportional to the
/// mask support instead of `C = |V|`.
///
/// Per computed column the logit arithmetic is exactly the dense route's
/// (`(dot + bias) + log-weight`, see [`col_dot`]), and duplicate mask
/// entries resolve last-write-wins like a dense build by overwrites.
/// What differs from the soft dense route *by design* is the normaliser:
/// the dense route's log-sum-exp includes the `e^{x + default}` leakage
/// of every masked-out column, while this kernel treats masked-out
/// columns as true zeros — the sharper reading of the paper's constraint
/// mask. Equivalently: the output is bit-identical to the dense route
/// run with a *hard* mask (`-∞` on masked-out columns), which
/// `kernel_parity.rs` proptest-pins for the scalar backend.
/// The decoder's recovery outputs (argmax + rate head) are pinned equal
/// to the dense route's in `serve_bench`/`check_bench` and the
/// `batch_decode_parity` suite.
///
/// Rows with `None` masks or an empty entry list fall back to the full
/// dense computation, bit-identical to the composed route. FLOP
/// attribution ([`note_matmul`]) counts `2·K·(columns actually
/// computed)`, not the dense `2·R·K·C`.
pub fn masked_matmul_cols(
    a: &Tensor,
    b: &Tensor,
    bias: &Tensor,
    masks: &[Option<SparseLogMask<'_>>],
) -> Tensor {
    assert_eq!(a.cols, b.rows, "masked_matmul_cols: inner dimension");
    let (r, k, c) = (a.rows, a.cols, b.cols);
    assert_eq!(
        (bias.rows, bias.cols),
        (1, c),
        "masked_matmul_cols: bias must be [1,C]"
    );
    assert_eq!(masks.len(), r, "masked_matmul_cols: one mask per row");
    // Validate mask columns and count the columns actually computed, up
    // front on the caller thread: exact FLOP attribution and no panics
    // inside pool chunks.
    let mut computed = 0u64;
    for mask in masks {
        match mask {
            Some(m) if !m.entries.is_empty() => {
                for (p, &(col, _)) in m.entries.iter().enumerate() {
                    assert!(col < c, "masked_matmul_cols: column {col} out of {c}");
                    if !entry_is_overridden(m.entries, p) {
                        computed += 1;
                    }
                }
            }
            _ => computed += c as u64,
        }
    }
    note_matmul(2 * k as u64 * computed);
    let bk = backend::active();
    let mut out = Tensor::zeros(r, c);
    if c == 0 {
        return out;
    }
    let min_rows = (MIN_MATMUL_WORK / (k * c).max(1)).max(1);
    par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
        let mut scratch: Vec<f32> = Vec::new();
        let mut cols: Vec<(usize, f32)> = Vec::new();
        for (ri, i) in rows.enumerate() {
            let arow = &a.data[i * k..(i + 1) * k];
            let row = &mut dst[ri * c..(ri + 1) * c];
            match masks[i] {
                Some(mask) if !mask.entries.is_empty() => {
                    // Sparse path: effective entries (last write wins),
                    // in ascending column order — the canonical order
                    // makes the packed log-sum-exp below identical to a
                    // dense route sweeping the full row with masked-out
                    // columns at exact `-∞` (adding `e^{-∞} = 0` terms
                    // never perturbs the sum).
                    cols.clear();
                    for (p, &(col, lw)) in mask.entries.iter().enumerate() {
                        if !entry_is_overridden(mask.entries, p) {
                            cols.push((col, lw));
                        }
                    }
                    cols.sort_unstable_by_key(|&(col, _)| col);
                    scratch.clear();
                    for &(col, lw) in &cols {
                        scratch.push(col_dot(bk, arow, &b.data, c, col) + bias.data[col] + lw);
                    }
                    log_softmax_slice(bk, &mut scratch);
                    row.fill(f32::NEG_INFINITY);
                    for (&(col, _), &x) in cols.iter().zip(&scratch) {
                        row[col] = x;
                    }
                }
                mask => {
                    // Dense fallback: the exact composed-route chain
                    // (matmul row, + bias, + default, log-softmax).
                    matmul_axpy(bk, arow, &b.data, c, 0, row);
                    match mask {
                        Some(m) => {
                            for (o, &bv) in row.iter_mut().zip(&bias.data) {
                                *o = (*o + bv) + m.default;
                            }
                        }
                        None => {
                            for (o, &bv) in row.iter_mut().zip(&bias.data) {
                                *o += bv;
                            }
                        }
                    }
                    log_softmax_slice(bk, row);
                }
            }
        }
    });
    out
}

/// Per-row layer-norm statistics: `(mean, 1/sqrt(var + eps))`, each
/// `[R,1]`; parallel over row ranges. On the scalar backend this follows
/// the exact accumulation order of the composed tape/infer layer-norm
/// route (ascending-index sums, `Σ·(1/d)`, `x + (-μ)` centering), so the
/// fused statistics are bit-identical to the op-by-op computation; the
/// AVX2 backend uses partial-lane sums and fused square-accumulate,
/// deterministic at any thread count but within the backend ULP budget
/// of scalar.
pub fn row_norm_stats(a: &Tensor, eps: f32) -> (Tensor, Tensor) {
    let (r, c) = a.shape();
    assert!(c > 0, "row_norm_stats: empty rows");
    let mut mean = Tensor::zeros(r, 1);
    let mut inv_std = Tensor::zeros(r, 1);
    let bk = backend::active();
    let pm = SendPtr(mean.data.as_mut_ptr());
    let ps = SendPtr(inv_std.data.as_mut_ptr());
    let min_rows = (MIN_ROW_WORK / c).max(1);
    let inv_d = 1.0 / c as f32;
    pool::for_each_chunk(r, min_rows, move |rows| {
        for i in rows {
            let row = &a.data[i * c..(i + 1) * c];
            // Row sum: the AVX2 partial-lane sum rounds differently from
            // the scalar ascending fold — part of the backend ULP budget.
            let mu = row_sum(bk, row) * inv_d;
            let neg_mu = -mu;
            let sq = row_sumsq(bk, row, neg_mu);
            let var = sq * inv_d + eps;
            // SAFETY: row ranges are disjoint across chunks.
            unsafe {
                *pm.get().add(i) = mu;
                *ps.get().add(i) = 1.0 / var.max(0.0).sqrt();
            }
        }
    });
    (mean, inv_std)
}

/// Slice sum under `bk`: scalar = ascending fold (the historical
/// accumulation, bit for bit); AVX2 = 8 partial lanes + tail.
#[inline]
fn row_sum(bk: backend::Backend, row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if bk == backend::Backend::Avx2Fma {
        // SAFETY: `Avx2Fma` is only active after runtime detection.
        return unsafe { backend::vsum(row) };
    }
    let _ = bk;
    let mut sum = 0.0f32;
    for &x in row {
        sum += x;
    }
    sum
}

/// Sum of squared deviations `Σ (x + (−μ))²` under `bk` (scalar:
/// ascending, one rounding per step; AVX2: fused square-accumulate).
#[inline]
fn row_sumsq(bk: backend::Backend, row: &[f32], neg_mu: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if bk == backend::Backend::Avx2Fma {
        // SAFETY: `Avx2Fma` is only active after runtime detection.
        return unsafe { backend::vsumsq(row, neg_mu) };
    }
    let _ = bk;
    let mut sq = 0.0f32;
    for &x in row {
        let d = x + neg_mu;
        sq += d * d;
    }
    sq
}

/// Fused layer normalisation `y = γ ⊙ (x − μ)/σ + β` over each row:
/// [`row_norm_stats`] plus a single normalise-and-affine pass, replacing
/// the nine-op composed route (two matmuls with a ones column, scales,
/// centre, square, sqrt, recip, broadcasts). Per element the arithmetic is
/// `((x + (−μ)) · inv_std) · γ + β` — the composed route's exact operation
/// chain — so on the scalar backend results are bit-identical to it
/// (under AVX2 the statistics carry that backend's reduction rounding);
/// parallel over row ranges.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
    let (r, c) = x.shape();
    assert_eq!(
        (gamma.rows, gamma.cols),
        (1, c),
        "layer_norm: gamma must be [1,C]"
    );
    assert_eq!(
        (beta.rows, beta.cols),
        (1, c),
        "layer_norm: beta must be [1,C]"
    );
    let (mean, inv_std) = row_norm_stats(x, eps);
    let bk = backend::active();
    let mut out = Tensor::zeros(r, c);
    let min_rows = (MIN_MAP_ELEMS / c.max(1)).max(1);
    par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
        for (ri, i) in rows.enumerate() {
            let neg_mu = -mean.data[i];
            let inv = inv_std.data[i];
            let src = &x.data[i * c..(i + 1) * c];
            let drow = &mut dst[ri * c..(ri + 1) * c];
            #[cfg(target_arch = "x86_64")]
            if bk == backend::Backend::Avx2Fma {
                // SAFETY: `Avx2Fma` is only active after detection. The
                // vector epilogue keeps the scalar operation chain (no
                // fusing), so it matches the scalar loop bit for bit.
                unsafe { backend::norm_affine(src, neg_mu, inv, &gamma.data, &beta.data, drow) };
                continue;
            }
            let _ = bk;
            for ((d, &xv), (&g, &b)) in drow
                .iter_mut()
                .zip(src)
                .zip(gamma.data.iter().zip(&beta.data))
            {
                *d = ((xv + neg_mu) * inv) * g + b;
            }
        }
    });
    out
}

// ----- shape & gather ops ----------------------------------------------------

/// Horizontal concatenation (same row count).
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty());
    let rows = parts[0].rows;
    let total: usize = parts.iter().map(|p| p.cols).sum();
    let mut t = Tensor::zeros(rows, total);
    let mut off = 0;
    for p in parts {
        assert_eq!(p.rows, rows, "concat_cols: row mismatch");
        for r in 0..rows {
            let dst = r * total + off;
            t.data[dst..dst + p.cols].copy_from_slice(&p.data[r * p.cols..(r + 1) * p.cols]);
        }
        off += p.cols;
    }
    t
}

/// Columns `[start, start+len)`.
pub fn select_cols(a: &Tensor, start: usize, len: usize) -> Tensor {
    assert!(start + len <= a.cols, "select_cols out of range");
    let mut t = Tensor::zeros(a.rows, len);
    for r in 0..a.rows {
        t.data[r * len..(r + 1) * len]
            .copy_from_slice(&a.data[r * a.cols + start..r * a.cols + start + len]);
    }
    t
}

/// Vertical concatenation (same column count).
pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty());
    let cols = parts[0].cols;
    let total: usize = parts.iter().map(|p| p.rows).sum();
    let mut data = Vec::with_capacity(total * cols);
    for p in parts {
        assert_eq!(p.cols, cols, "concat_rows: column mismatch");
        data.extend_from_slice(&p.data);
    }
    Tensor::from_vec(total, cols, data)
}

/// Rows `[start, start+len)`.
pub fn select_rows(a: &Tensor, start: usize, len: usize) -> Tensor {
    assert!(start + len <= a.rows, "select_rows out of range");
    Tensor::from_vec(
        len,
        a.cols,
        a.data[start * a.cols..(start + len) * a.cols].to_vec(),
    )
}

/// Repeat a `[1,C]` row `n` times → `[n,C]`.
pub fn repeat_rows(a: &Tensor, n: usize) -> Tensor {
    assert_eq!(a.rows, 1, "repeat_rows expects a [1,C] row");
    let mut data = Vec::with_capacity(n * a.cols);
    for _ in 0..n {
        data.extend_from_slice(&a.data);
    }
    Tensor::from_vec(n, a.cols, data)
}

/// Column means → `[1,C]` (rows accumulated in ascending order).
pub fn mean_rows(a: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; a.cols];
    for row in a.data.chunks_exact(a.cols) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    let inv = 1.0 / a.rows as f32;
    out.iter_mut().for_each(|x| *x *= inv);
    Tensor::row(out)
}

/// Normalise positive pooling weights for `rows` rows so they sum to one
/// (the paper's Eq. 6 / Eq. 8 weighting).
pub fn normalized_weights(rows: usize, weights: &[f32]) -> Vec<f32> {
    assert_eq!(weights.len(), rows, "weighted_mean_rows: weight count");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    weights.iter().map(|w| w / total).collect()
}

/// Weighted column means with pre-normalised weights (see
/// [`normalized_weights`]) → `[1,C]`.
pub fn weighted_mean_rows(a: &Tensor, norm: &[f32]) -> Tensor {
    assert_eq!(norm.len(), a.rows, "weighted_mean_rows: weight count");
    let mut out = vec![0.0f32; a.cols];
    for (row, &w) in a.data.chunks_exact(a.cols).zip(norm) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += w * x;
        }
    }
    Tensor::row(out)
}

/// Row gather `table[indices[i], :] → [n, C]` (embedding lookup); bounds
/// are validated up front, then rows copy in parallel over index ranges.
pub fn gather_rows(table: &Tensor, indices: &[usize]) -> Tensor {
    let c = table.cols;
    for &i in indices {
        assert!(
            i < table.rows,
            "gather_rows: index {i} out of {} rows",
            table.rows
        );
    }
    let mut out = Tensor::zeros(indices.len(), c);
    let min_rows = (MIN_COPY_ELEMS / c.max(1)).max(1);
    par_row_chunks(&mut out.data, c, indices.len(), min_rows, |rows, dst| {
        for (ri, i) in rows.enumerate() {
            let src = indices[i];
            dst[ri * c..(ri + 1) * c].copy_from_slice(&table.data[src * c..(src + 1) * c]);
        }
    });
    out
}

// ----- segmented decoder-fusion ops ------------------------------------------
//
// The batched decoder stacks a micro-batch's same-step states into one
// matrix, but each member attends over its *own* encoder outputs (ragged
// lengths). These kernels run the per-member attention pieces over all
// members in one launch: segments are disjoint row/column ranges, each
// processed with exactly the per-member op's accumulation order, so the
// stacked result is bit-identical to B separate calls.

/// Validate `segs` against `rows` rows and return the exclusive prefix
/// offsets of the stacked output (`offsets[s]` = first stacked row of
/// segment `s`; `offsets[len]` = total rows).
fn segment_offsets(segs: &[Range<usize>], rows: usize) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(segs.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for seg in segs {
        assert!(
            seg.start <= seg.end && seg.end <= rows,
            "segment {seg:?} out of {rows} rows"
        );
        acc += seg.len();
        offsets.push(acc);
    }
    offsets
}

/// Chunk floor sized so each pool chunk holds roughly `MIN_MAP_ELEMS`
/// scalar operations' worth of segments.
fn min_segments_for(num_segs: usize, total_work: usize) -> usize {
    if total_work == 0 {
        return usize::MAX;
    }
    (MIN_MAP_ELEMS * num_segs / total_work).max(1)
}

/// Stack `m[segs[s], :] + v[s, :]` over every segment → the segments
/// concatenated in order. This is the batched decoder's attention
/// pre-activation: each member's key projections plus its own query row,
/// one launch for the whole micro-batch. Per element the op is exactly
/// [`add_rowvec`]'s `x + y`; parallel over segment ranges (disjoint output
/// row blocks).
pub fn segments_add_rowvec(m: &Tensor, v: &Tensor, segs: &[Range<usize>]) -> Tensor {
    let c = m.cols;
    assert_eq!(
        (v.rows, v.cols),
        (segs.len(), c),
        "segments_add_rowvec: v must be [S,C]"
    );
    let offsets = segment_offsets(segs, m.rows);
    let total = offsets[segs.len()];
    let mut out = Tensor::zeros(total, c);
    let ptr = SendPtr(out.data.as_mut_ptr());
    let min_segs = min_segments_for(segs.len(), total * c);
    pool::for_each_chunk(segs.len(), min_segs, move |srange| {
        for s in srange {
            let vrow = &v.data[s * c..(s + 1) * c];
            let mut o = offsets[s] * c;
            for i in segs[s].clone() {
                let src = &m.data[i * c..(i + 1) * c];
                for (t, (&x, &y)) in src.iter().zip(vrow).enumerate() {
                    // SAFETY: segment output blocks are disjoint across chunks.
                    unsafe { *ptr.get().add(o + t) = x + y };
                }
                o += c;
            }
        }
    });
    out
}

/// Softmax over consecutive chunks of a `[1, N]` row (`lens` summing to
/// `N`): each chunk is one member's attention scores, normalised exactly
/// like [`softmax_rows`] on its own `[1, len]` slice (empty chunks are
/// left untouched). Parallel over chunk ranges — each chunk is one
/// self-contained reduction.
pub fn softmax_segments(a: &Tensor, lens: &[usize]) -> Tensor {
    assert_eq!(a.rows, 1, "softmax_segments: input must be [1,N]");
    let total: usize = lens.iter().sum();
    assert_eq!(total, a.cols, "softmax_segments: lens must sum to N");
    let mut t = a.clone();
    let mut offsets = Vec::with_capacity(lens.len());
    let mut acc = 0usize;
    for &l in lens {
        offsets.push(acc);
        acc += l;
    }
    let bk = backend::active();
    let ptr = SendPtr(t.data.as_mut_ptr());
    let min_segs = min_segments_for(lens.len(), 4 * total);
    pool::for_each_chunk(lens.len(), min_segs, move |srange| {
        for s in srange {
            if lens[s] > 0 {
                // SAFETY: chunks of distinct segments never overlap.
                let row =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(offsets[s]), lens[s]) };
                softmax_in_place_bk(bk, row);
            }
        }
    });
    t
}

/// Per-segment attention application: output row `s` is
/// `Σ_k α[off_s + k] · feats[segs[s].start + k, :]` — the batched
/// decoder's context vectors, a block-diagonal stack of the sequential
/// path's `[1, L_s] × [L_s, C]` products. `alphas` holds the segments'
/// weights concatenated in order. The accumulation is exactly [`matmul`]'s
/// (ascending `k`, zero weights skipped), so each output row is
/// bit-identical to the member's own product; parallel over segment ranges
/// (one output row per segment).
pub fn segmented_attn_context(alphas: &Tensor, feats: &Tensor, segs: &[Range<usize>]) -> Tensor {
    let c = feats.cols;
    let offsets = segment_offsets(segs, feats.rows);
    assert_eq!(
        alphas.len(),
        offsets[segs.len()],
        "segmented_attn_context: weight count must match segment rows"
    );
    let bk = backend::active();
    let mut out = Tensor::zeros(segs.len(), c);
    let min_rows = (MIN_MATMUL_WORK * segs.len())
        .checked_div(alphas.len() * c)
        .map_or(usize::MAX, |m| m.max(1));
    par_row_chunks(&mut out.data, c, segs.len(), min_rows, |srange, dst| {
        for (ri, s) in srange.enumerate() {
            let orow = &mut dst[ri * c..(ri + 1) * c];
            for (ak, i) in (offsets[s]..).zip(segs[s].clone()) {
                let av = alphas.data[ak];
                let frow = &feats.data[i * c..(i + 1) * c];
                #[cfg(target_arch = "x86_64")]
                if bk == backend::Backend::Avx2Fma {
                    // SAFETY: `Avx2Fma` is only active after detection.
                    unsafe { backend::axpy(av, frow, orow) };
                    continue;
                }
                if av == 0.0 {
                    continue;
                }
                for (o, &fv) in orow.iter_mut().zip(frow) {
                    *o += av * fv;
                }
            }
        }
    });
    out
}

// ----- segmented encoder-fusion ops ------------------------------------------
//
// The batched GPS-Former encoder stacks every batch member's per-point rows
// into one matrix per block so each Linear projection runs as a single
// `[ΣL, d]` matmul. What cannot be naively stacked is anything whose
// *reduction scope* is per member or per sub-graph: self-attention rows,
// graph readout means, and — crucially — GraphNorm's batch statistics
// (PAPER.md Eq. 10–13), which at serving time must cover exactly one
// request's sub-graphs or batching would change results. These kernels run
// those member-scoped reductions over the whole stack in one launch, each
// segment computed with exactly the per-member op sequence's accumulation
// order, so the stacked result is bit-identical to B separate calls.

/// Per-segment column means: output row `s` is [`mean_rows`] of
/// `a[segs[s], :]` — the batched encoder's graph readout (Eq. 13) and
/// trajectory-level pooling, one launch for every sub-graph / member.
/// Rows accumulate in ascending order and the `1/n` scaling matches
/// [`mean_rows`] exactly, so each output row is bit-identical to the
/// per-segment call; parallel over segment ranges (one output row per
/// segment). Segments may be arbitrary in-range row windows.
pub fn segmented_mean_rows(a: &Tensor, segs: &[Range<usize>]) -> Tensor {
    let c = a.cols;
    let offsets = segment_offsets(segs, a.rows);
    let covered = offsets[segs.len()];
    let mut out = Tensor::zeros(segs.len(), c);
    let min_rows = (MIN_ROW_WORK * segs.len())
        .checked_div(covered * c)
        .map_or(usize::MAX, |m| m.max(1));
    par_row_chunks(&mut out.data, c, segs.len(), min_rows, |srange, dst| {
        for (ri, s) in srange.enumerate() {
            let orow = &mut dst[ri * c..(ri + 1) * c];
            for i in segs[s].clone() {
                let row = &a.data[i * c..(i + 1) * c];
                for (o, &x) in orow.iter_mut().zip(row) {
                    *o += x;
                }
            }
            let inv = 1.0 / segs[s].len() as f32;
            orow.iter_mut().for_each(|x| *x *= inv);
        }
    });
    out
}

/// Per-segment weighted column means with raw positive weights,
/// concatenated in segment order (`weights.len()` = Σ segment lengths):
/// output row `s` is [`weighted_mean_rows`] of `a[segs[s], :]` under
/// [`normalized_weights`] of its weight slice — the batched Eq. 6 pooling.
/// Normalisation (ascending-order sum, per-weight division) and the
/// weighted accumulation match the per-segment route exactly, so each
/// output row is bit-identical; parallel over segment ranges.
pub fn segmented_weighted_mean_rows(a: &Tensor, weights: &[f32], segs: &[Range<usize>]) -> Tensor {
    let c = a.cols;
    let offsets = segment_offsets(segs, a.rows);
    let covered = offsets[segs.len()];
    assert_eq!(
        weights.len(),
        covered,
        "segmented_weighted_mean_rows: weight count must match segment rows"
    );
    // Validate every segment's weights up front (the per-segment route
    // asserts in `normalized_weights`), keeping panics out of pool chunks.
    for (s, seg) in segs.iter().enumerate() {
        let total: f32 = weights[offsets[s]..offsets[s] + seg.len()].iter().sum();
        assert!(total > 0.0, "weights must not all be zero (segment {s})");
    }
    let mut out = Tensor::zeros(segs.len(), c);
    let min_rows = (MIN_ROW_WORK * segs.len())
        .checked_div(covered * c)
        .map_or(usize::MAX, |m| m.max(1));
    par_row_chunks(&mut out.data, c, segs.len(), min_rows, |srange, dst| {
        for (ri, s) in srange.enumerate() {
            let orow = &mut dst[ri * c..(ri + 1) * c];
            let wseg = &weights[offsets[s]..offsets[s] + segs[s].len()];
            let total: f32 = wseg.iter().sum();
            for (i, &w) in segs[s].clone().zip(wseg) {
                let norm = w / total;
                let row = &a.data[i * c..(i + 1) * c];
                for (o, &x) in orow.iter_mut().zip(row) {
                    *o += norm * x;
                }
            }
        }
    });
    out
}

/// GraphNorm statistics (Eq. 8–9) scoped per member of a stacked batch.
///
/// `a` is the `[Σn, C]` stack of every member's sub-graph features,
/// `graph_segs[g]` the row range of sub-graph `g`, and `members[m]` the
/// range of *graph indices* belonging to member `m`. For each member the
/// kernel computes exactly what `GraphNorm` computes over that member's
/// graphs alone: `μ_m` = mean of the per-graph mean-pooled rows (graph
/// means accumulated in graph order), and `inv_m` = `1/√(var + eps)` with
/// the variance of all the member's node rows around `μ_m` (`x + (−μ)`
/// centering, ascending-row accumulation, `Σ·(1/N)`, `+eps`,
/// `max(0)·sqrt`, reciprocal — the per-member op chain, one rounding per
/// step). Returns `(mu, inv_std)`, each `[M, C]`, bit-identical per row
/// to the member's own statistics; parallel over member ranges.
pub fn segmented_norm_stats(
    a: &Tensor,
    graph_segs: &[Range<usize>],
    members: &[Range<usize>],
    eps: f32,
) -> (Tensor, Tensor) {
    let c = a.cols;
    let offsets = segment_offsets(graph_segs, a.rows);
    for m in members {
        assert!(
            m.start <= m.end && m.end <= graph_segs.len(),
            "member {m:?} out of {} graphs",
            graph_segs.len()
        );
    }
    let mut mu = Tensor::zeros(members.len(), c);
    let mut inv_std = Tensor::zeros(members.len(), c);
    let pm = SendPtr(mu.data.as_mut_ptr());
    let ps = SendPtr(inv_std.data.as_mut_ptr());
    let covered = offsets[graph_segs.len()];
    let min_members = (MIN_ROW_WORK * members.len())
        .checked_div(2 * covered * c)
        .map_or(usize::MAX, |m| m.max(1));
    pool::for_each_chunk(members.len(), min_members, move |mrange| {
        let mut mean_acc = vec![0.0f32; c];
        let mut graph_sum = vec![0.0f32; c];
        let mut sq = vec![0.0f32; c];
        for m in mrange {
            let gs = &graph_segs[members[m].clone()];
            // Eq. (8): per-graph mean pooling, then the mean of the means.
            mean_acc.fill(0.0);
            for seg in gs {
                graph_sum.fill(0.0);
                for i in seg.clone() {
                    let row = &a.data[i * c..(i + 1) * c];
                    for (o, &x) in graph_sum.iter_mut().zip(row) {
                        *o += x;
                    }
                }
                let inv = 1.0 / seg.len() as f32;
                for (acc, &s) in mean_acc.iter_mut().zip(&graph_sum) {
                    *acc += s * inv;
                }
            }
            let ginv = 1.0 / gs.len() as f32;
            mean_acc.iter_mut().for_each(|x| *x *= ginv);
            // Eq. (9): variance of every node row around μ_m.
            sq.fill(0.0);
            let mut nrows = 0usize;
            for seg in gs {
                for i in seg.clone() {
                    let row = &a.data[i * c..(i + 1) * c];
                    for (o, (&x, &mu_k)) in sq.iter_mut().zip(row.iter().zip(&mean_acc)) {
                        let d = x + (-mu_k); // scale(μ, −1): −x ≡ x·(−1) bitwise
                        *o += d * d;
                    }
                }
                nrows += seg.len();
            }
            let ninv = 1.0 / nrows as f32;
            for (k, (&mv, &sv)) in mean_acc.iter().zip(&sq).enumerate() {
                let var = sv * ninv + eps;
                // SAFETY: member rows are disjoint across chunks.
                unsafe {
                    *pm.get().add(m * c + k) = mv;
                    *ps.get().add(m * c + k) = 1.0 / var.max(0.0).sqrt();
                }
            }
        }
    });
    (mu, inv_std)
}

/// Fused gated blend `σ(s) ⊙ a + (1 − σ(s)) ⊙ b` (the GRL's Eq. 7
/// epilogue): one pass instead of the five-op composed chain (sigmoid,
/// two Hadamard products, scale + add-const, add), with no intermediate
/// tensors. Per element the arithmetic is exactly the composed route's —
/// `g = 1/(1+e^{−s})`, `g·a`, `g·(−1)+1`, `(…)·b`, sum — one rounding per
/// step, so results are bit-identical to it; parallel over flat element
/// ranges.
pub fn gated_blend(s: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(s.shape(), a.shape(), "gated_blend: shape mismatch");
    assert_eq!(s.shape(), b.shape(), "gated_blend: shape mismatch");
    let mut out = Tensor::zeros(s.rows, s.cols);
    par_row_chunks(
        &mut out.data,
        1,
        s.data.len(),
        MIN_MAP_ELEMS,
        |range, dst| {
            for (((d, &sv), &av), &bv) in dst
                .iter_mut()
                .zip(&s.data[range.clone()])
                .zip(&a.data[range.clone()])
                .zip(&b.data[range])
            {
                let g = 1.0 / (1.0 + (-sv).exp());
                let take_a = g * av;
                let inv = (-g) + 1.0; // scale(g, −1) + 1: −x ≡ x·(−1) bitwise
                let keep_b = inv * bv;
                *d = take_a + keep_b;
            }
        },
    );
    out
}

/// Fused normalise-and-affine epilogue of the segment-scoped GraphNorm:
/// `out[r] = ((x[r] + (−μ[seg_of[r]])) ⊙ invσ[seg_of[r]]) ⊙ γ + β` in one
/// pass, instead of materialising the broadcast `−μ`/`invσ` row-gathers
/// and running four full-matrix traversals. `mu`/`inv_std` are the
/// `[M, C]` outputs of [`segmented_norm_stats`]; `seg_of[r]` names row
/// `r`'s member. Per element the chain (`μ·(−1)`, add, two products, add)
/// matches the composed route exactly, so results are bit-identical;
/// parallel over row ranges.
pub fn segmented_norm_apply(
    x: &Tensor,
    mu: &Tensor,
    inv_std: &Tensor,
    seg_of: &[usize],
    gamma: &Tensor,
    beta: &Tensor,
) -> Tensor {
    let (r, c) = x.shape();
    assert_eq!(seg_of.len(), r, "segmented_norm_apply: one member per row");
    assert_eq!(mu.shape(), inv_std.shape(), "segmented_norm_apply: stats");
    assert_eq!(mu.cols, c, "segmented_norm_apply: stat width");
    assert_eq!((gamma.rows, gamma.cols), (1, c), "gamma must be [1,C]");
    assert_eq!((beta.rows, beta.cols), (1, c), "beta must be [1,C]");
    for &m in seg_of {
        assert!(m < mu.rows, "segmented_norm_apply: member {m} out of range");
    }
    let mut out = Tensor::zeros(r, c);
    let min_rows = (MIN_MAP_ELEMS / c.max(1)).max(1);
    par_row_chunks(&mut out.data, c, r, min_rows, |rows, dst| {
        for (ri, i) in rows.enumerate() {
            let m = seg_of[i];
            let murow = &mu.data[m * c..(m + 1) * c];
            let invrow = &inv_std.data[m * c..(m + 1) * c];
            let src = &x.data[i * c..(i + 1) * c];
            let drow = &mut dst[ri * c..(ri + 1) * c];
            for (k, (d, &xv)) in drow.iter_mut().zip(src).enumerate() {
                let centered = xv + (-murow[k]); // scale(μ, −1): −x ≡ x·(−1) bitwise
                let norm = centered * invrow[k];
                *d = norm * gamma.data[k] + beta.data[k];
            }
        }
    });
    out
}

/// Per-segment scaled dot-product self-attention: for every row `i` of
/// segment `s`, output row `i` is `softmax(scale · q_i · K_sᵀ) · V_s` with
/// keys/values restricted to the segment's own rows — the batched
/// GPSFormer's temporal attention (Eq. 10), every member in one launch.
/// Per row the operation chain is exactly the per-member route's
/// ([`matmul_nt`] dots in ascending feature order, [`scale`],
/// [`softmax_rows`], [`matmul`]'s ascending-index zero-skip accumulation),
/// so each output row is bit-identical to the member's own attention;
/// parallel over segment ranges (segments own disjoint output rows).
pub fn segmented_self_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    segs: &[Range<usize>],
    scale: f32,
) -> Tensor {
    let (n, c) = q.shape();
    assert_eq!(k.shape(), (n, c), "segmented_self_attention: k shape");
    assert_eq!(v.shape(), (n, c), "segmented_self_attention: v shape");
    // Segments own their output rows, so they must be ordered and disjoint
    // (the pool writes them from different chunks).
    let mut prev_end = 0usize;
    for seg in segs {
        assert!(
            prev_end <= seg.start && seg.start <= seg.end && seg.end <= n,
            "segments must be ordered, disjoint, and within {n} rows (got {seg:?})"
        );
        prev_end = seg.end;
    }
    let bk = backend::active();
    let mut out = Tensor::zeros(n, c);
    let ptr = SendPtr(out.data.as_mut_ptr());
    let work: usize = segs.iter().map(|s| s.len() * s.len() * c).sum();
    let min_segs = (MIN_MATMUL_WORK * segs.len())
        .checked_div(work)
        .map_or(usize::MAX, |m| m.max(1));
    pool::for_each_chunk(segs.len(), min_segs, move |srange| {
        let mut scores: Vec<f32> = Vec::new();
        for s in srange {
            let seg = segs[s].clone();
            let len = seg.len();
            scores.resize(len, 0.0);
            for i in seg.clone() {
                // Scores row (matmul_nt + scale): ascending-feature dots.
                let qrow = &q.data[i * c..(i + 1) * c];
                for (slot, j) in scores.iter_mut().zip(seg.clone()) {
                    let krow = &k.data[j * c..(j + 1) * c];
                    #[cfg(target_arch = "x86_64")]
                    if bk == backend::Backend::Avx2Fma {
                        // SAFETY: `Avx2Fma` is only active after detection.
                        *slot = unsafe { backend::dot(qrow, krow) } * scale;
                        continue;
                    }
                    let mut dot = 0.0f32;
                    for kk in 0..c {
                        dot += qrow[kk] * krow[kk];
                    }
                    *slot = dot * scale;
                }
                softmax_in_place_bk(bk, &mut scores);
                // Context row (matmul's accumulation under the same
                // backend: ascending keys; the scalar path skips zero
                // weights, the AVX2 path FMA-accumulates all of them).
                // SAFETY: each output row belongs to exactly one segment and
                // segments never overlap across chunks.
                let orow = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(i * c), c) };
                for (&alpha, j) in scores.iter().zip(seg.clone()) {
                    let vrow = &v.data[j * c..(j + 1) * c];
                    #[cfg(target_arch = "x86_64")]
                    if bk == backend::Backend::Avx2Fma {
                        // SAFETY: `Avx2Fma` is only active after detection.
                        unsafe { backend::axpy(alpha, vrow, orow) };
                        continue;
                    }
                    if alpha == 0.0 {
                        continue;
                    }
                    for (o, &fv) in orow.iter_mut().zip(vrow) {
                        *o += alpha * fv;
                    }
                }
            }
        }
    });
    out
}

// ----- CSR graph-attention gather/scatter ------------------------------------

/// Node ranges sized so each chunk holds roughly `min_work` scalar
/// operations' worth of edges.
fn min_nodes_for(csr: &GraphCsr, work_per_edge: usize) -> usize {
    let total = csr.num_edges() * work_per_edge.max(1);
    if total == 0 {
        return usize::MAX;
    }
    (MIN_GRAPH_WORK * csr.num_nodes() / total).max(1)
}

/// GAT edge scores `out[e] = src[i] + dst[j_e]` for each edge slot `e` of
/// node `i` (`src`/`dst` are `[n,1]`); parallel over destination-node
/// segment ranges (a node's edge slots are contiguous in CSR order).
pub fn edge_scores(src: &Tensor, dst: &Tensor, csr: &GraphCsr) -> Tensor {
    let n = csr.num_nodes();
    assert_eq!(
        (src.rows, src.cols),
        (n, 1),
        "edge_scores: src must be [n,1]"
    );
    assert_eq!(
        (dst.rows, dst.cols),
        (n, 1),
        "edge_scores: dst must be [n,1]"
    );
    let mut out = Tensor::zeros(csr.num_edges(), 1);
    let ptr = SendPtr(out.data.as_mut_ptr());
    pool::for_each_chunk(n, min_nodes_for(csr, 1), move |nodes| {
        for i in nodes {
            for e in csr.segment(i) {
                // SAFETY: node ranges own disjoint contiguous edge ranges.
                unsafe { *ptr.get().add(e) = src.data[i] + dst.data[csr.target(e)] };
            }
        }
    });
    out
}

/// Softmax within each node's edge segment (GAT attention normalisation);
/// parallel over node ranges — each segment is one self-contained
/// reduction. Empty segments (isolated nodes without self-loops) are
/// left untouched.
pub fn segmented_softmax(scores: &Tensor, csr: &GraphCsr) -> Tensor {
    assert_eq!(
        (scores.rows, scores.cols),
        (csr.num_edges(), 1),
        "segmented_softmax: [E,1]"
    );
    let mut t = scores.clone();
    let bk = backend::active();
    let ptr = SendPtr(t.data.as_mut_ptr());
    pool::for_each_chunk(csr.num_nodes(), min_nodes_for(csr, 4), move |nodes| {
        for i in nodes {
            let seg = csr.segment(i);
            if !seg.is_empty() {
                // SAFETY: segments of distinct nodes never overlap.
                let row =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(seg.start), seg.len()) };
                softmax_in_place_bk(bk, row);
            }
        }
    });
    t
}

/// GAT attention aggregation `out[i] = Σ_{e ∈ seg(i)} α[e] · feats[j_e]`;
/// parallel over destination-node ranges — each output row is owned by
/// exactly one chunk and accumulated in ascending edge order.
pub fn neighbor_sum(alphas: &Tensor, feats: &Tensor, csr: &GraphCsr) -> Tensor {
    assert_eq!(
        (alphas.rows, alphas.cols),
        (csr.num_edges(), 1),
        "neighbor_sum: alphas [E,1]"
    );
    assert_eq!(feats.rows, csr.num_nodes(), "neighbor_sum: feats [n,C]");
    let n = csr.num_nodes();
    let cols = feats.cols;
    let mut out = Tensor::zeros(n, cols);
    let min_rows = min_nodes_for(csr, cols);
    par_row_chunks(&mut out.data, cols, n, min_rows, |nodes, dst| {
        for (ri, i) in nodes.enumerate() {
            let orow = &mut dst[ri * cols..(ri + 1) * cols];
            for e in csr.segment(i) {
                let aw = alphas.data[e];
                let j = csr.target(e);
                let frow = &feats.data[j * cols..(j + 1) * cols];
                for (o, &fv) in orow.iter_mut().zip(frow) {
                    *o += aw * fv;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::uniform(rows, cols, 1.0, &mut rng)
    }

    /// Reference matmul: per element, ascending-k accumulation from 0.
    fn matmul_ref(a: &Tensor, b: &Tensor) -> Tensor {
        let (r, k, c) = (a.rows, a.cols, b.cols);
        let mut out = Tensor::zeros(r, c);
        for i in 0..r {
            for j in 0..c {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    let av = a.data[i * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    acc += av * b.data[kk * c + j];
                }
                out.data[i * c + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_family_matches_reference_at_every_thread_count() {
        // The reference is the scalar accumulation order, so pin the
        // scalar backend (thread-locally; other tests are unaffected).
        backend::with_backend(backend::Backend::Scalar, || {
            // Big enough that the pool actually engages at > 1 thread.
            let a = t(70, 40, 1);
            let b = t(40, 60, 2);
            let row = t(1, 40, 3);
            let want = matmul_ref(&a, &b);
            let want_row = matmul_ref(&row, &b);
            let before = pool::num_threads();
            for threads in [1, 2, 4] {
                pool::set_num_threads(threads);
                assert_eq!(matmul(&a, &b).data, want.data, "t={threads}");
                assert_eq!(matmul(&row, &b).data, want_row.data, "row t={threads}");
            }
            pool::set_num_threads(before);
        });
    }

    #[test]
    fn matmul_tn_is_transposed_matmul() {
        backend::with_backend(backend::Backend::Scalar, || {
            let a = t(30, 20, 4); // interpreted as [K=30, R=20]
            let b = t(30, 25, 5);
            let got = matmul_tn(&a, &b);
            // Materialise the transpose and compare against the reference.
            let mut at = Tensor::zeros(20, 30);
            for i in 0..30 {
                for j in 0..20 {
                    at.data[j * 30 + i] = a.data[i * 20 + j];
                }
            }
            assert_eq!(got.data, matmul_ref(&at, &b).data);
        });
    }

    #[test]
    fn matmul_nt_is_dot_of_rows() {
        backend::with_backend(backend::Backend::Scalar, || {
            let a = t(6, 9, 6);
            let b = t(7, 9, 7);
            let got = matmul_nt(&a, &b);
            for i in 0..6 {
                for j in 0..7 {
                    let mut s = 0.0f32;
                    for kk in 0..9 {
                        s += a.data[i * 9 + kk] * b.data[j * 9 + kk];
                    }
                    assert_eq!(got.data[i * 7 + j], s);
                }
            }
        });
    }

    #[test]
    fn row_norm_stats_matches_composed_route() {
        backend::with_backend(backend::Backend::Scalar, || {
            let x = t(5, 16, 8);
            let eps = 1e-5;
            let (mean, inv_std) = row_norm_stats(&x, eps);
            // The composed route: Σ via matmul with a ones column, scale 1/d,
            // centre via x + (-μ), square, Σ, scale, + eps, sqrt, recip.
            let ones = Tensor::full(16, 1, 1.0);
            let mu = scale(&matmul(&x, &ones), 1.0 / 16.0);
            let centered = add_colvec(&x, &scale(&mu, -1.0));
            let var = add_const(
                &scale(&matmul(&mul(&centered, &centered), &ones), 1.0 / 16.0),
                eps,
            );
            let inv = recip(&sqrt(&var));
            assert_eq!(mean.data, mu.data, "means not bit-identical");
            assert_eq!(inv_std.data, inv.data, "inv-std not bit-identical");
        });
    }

    #[test]
    fn matmul_counter_is_monotone() {
        let before = matmul_invocations();
        let a = t(3, 4, 9);
        let b = t(4, 5, 10);
        let _ = matmul(&a, &b);
        let _ = matmul_nt(&a, &t(6, 4, 11));
        assert!(matmul_invocations() >= before + 2);
    }

    #[test]
    fn graph_kernels_handle_edgeless_csr_at_any_thread_count() {
        // All-isolated graph without self-loops: zero edges. The "never
        // parallelise" sentinel (usize::MAX min-chunk) must not overflow
        // the pool's inline guard at multi-thread settings.
        let csr = GraphCsr::from_neighbor_lists(&[vec![], vec![], vec![]], false);
        assert_eq!(csr.num_edges(), 0);
        let src = t(3, 1, 20);
        let dst = t(3, 1, 21);
        let empty = Tensor::zeros(0, 1);
        let feats = t(3, 4, 22);
        let before = pool::num_threads();
        for threads in [1, 2, 4] {
            pool::set_num_threads(threads);
            assert_eq!(edge_scores(&src, &dst, &csr).len(), 0);
            assert_eq!(segmented_softmax(&empty, &csr).len(), 0);
            let agg = neighbor_sum(&empty, &feats, &csr);
            assert!(agg.data.iter().all(|&x| x == 0.0));
        }
        pool::set_num_threads(before);
    }

    #[test]
    fn masked_log_softmax_matches_composed_route() {
        let x = t(4, 12, 30);
        // Row 0: no mask; row 1: sparse mask; row 2: duplicate entries
        // (later wins); row 3: empty entry list (pure default fill).
        let e1 = [(3usize, -0.5f32), (7, 0.25)];
        let e2 = [(5usize, -1.0f32), (5, 0.75)];
        let e3: [(usize, f32); 0] = [];
        let masks = [
            None,
            Some(SparseLogMask {
                default: -30.0,
                entries: &e1,
            }),
            Some(SparseLogMask {
                default: -30.0,
                entries: &e2,
            }),
            Some(SparseLogMask {
                default: -2.0,
                entries: &e3,
            }),
        ];
        // Composed reference: dense mask built by overwrites, add, then
        // log-softmax.
        let mut want = Tensor::zeros(4, 12);
        for (r, mask) in masks.iter().enumerate() {
            let mut row: Vec<f32> = x.row_slice(r).to_vec();
            if let Some(m) = mask {
                let mut dense = vec![m.default; 12];
                for &(col, lw) in m.entries {
                    dense[col] = lw;
                }
                for (v, d) in row.iter_mut().zip(dense) {
                    *v += d;
                }
            }
            let lsm = log_softmax_rows(&Tensor::row(row));
            want.data[r * 12..(r + 1) * 12].copy_from_slice(&lsm.data);
        }
        let before = pool::num_threads();
        for threads in [1, 2, 4] {
            pool::set_num_threads(threads);
            let got = masked_log_softmax_rows(&x, &masks);
            assert_eq!(got.data, want.data, "t={threads}: not bit-identical");
        }
        pool::set_num_threads(before);
    }

    #[test]
    fn layer_norm_matches_composed_route() {
        backend::with_backend(backend::Backend::Scalar, || {
            let x = t(5, 16, 31);
            let gamma = t(1, 16, 32);
            let beta = t(1, 16, 33);
            let eps = 1e-5;
            // The composed route the tape/infer LayerNorm layer used to run.
            let ones = Tensor::full(16, 1, 1.0);
            let mu = scale(&matmul(&x, &ones), 1.0 / 16.0);
            let centered = add_colvec(&x, &scale(&mu, -1.0));
            let var = add_const(
                &scale(&matmul(&mul(&centered, &centered), &ones), 1.0 / 16.0),
                eps,
            );
            let inv = recip(&sqrt(&var));
            let norm = mul_colvec(&centered, &inv);
            let want = add_rowvec(&mul_rowvec(&norm, &gamma), &beta);
            let before = pool::num_threads();
            for threads in [1, 2, 4] {
                pool::set_num_threads(threads);
                let got = layer_norm(&x, &gamma, &beta, eps);
                assert_eq!(got.data, want.data, "t={threads}: not bit-identical");
            }
            pool::set_num_threads(before);
        });
    }

    #[test]
    fn segmented_ops_match_per_member_route() {
        // Three ragged members (lengths 4, 0, 7) over a shared stack.
        let m = t(11, 8, 34);
        let v = t(3, 8, 35);
        let segs = [0usize..4, 4..4, 4..11];
        let before = pool::num_threads();

        // Per-member reference: add_rowvec + softmax_rows + matmul.
        let mut pre_want = Vec::new();
        let mut alpha_want = Vec::new();
        let mut ctx_want = Vec::new();
        for (s, seg) in segs.iter().enumerate() {
            let rows = select_rows(&m, seg.start, seg.len());
            let vrow = select_rows(&v, s, 1);
            let pre = add_rowvec(&rows, &vrow);
            pre_want.extend_from_slice(&pre.data);
            // Scores row for the softmax/context checks: first column.
            let scores: Vec<f32> = (0..seg.len()).map(|i| pre.data[i * 8]).collect();
            let sm = softmax_rows(&Tensor::row(scores.clone()));
            alpha_want.extend_from_slice(&sm.data);
            let ctx = matmul(&sm, &rows);
            ctx_want.extend_from_slice(&ctx.data);
        }

        for threads in [1, 2, 4] {
            pool::set_num_threads(threads);
            let pre = segments_add_rowvec(&m, &v, &segs);
            assert_eq!(pre.data, pre_want, "segments_add_rowvec t={threads}");
            let lens: Vec<usize> = segs.iter().map(|s| s.len()).collect();
            let scores = Tensor::row((0..pre.rows).map(|i| pre.data[i * 8]).collect::<Vec<_>>());
            let alphas = softmax_segments(&scores, &lens);
            assert_eq!(alphas.data, alpha_want, "softmax_segments t={threads}");
            let ctx = segmented_attn_context(&alphas, &m, &segs);
            assert_eq!(ctx.data, ctx_want, "segmented_attn_context t={threads}");
        }
        pool::set_num_threads(before);
    }

    #[test]
    fn segmented_encoder_ops_match_per_member_route() {
        // Two members: member 0 owns graphs of 3+2 rows, member 1 a single
        // 4-row graph; plus the degenerate single-row graph case.
        let stack = t(10, 6, 40);
        let graph_segs = [0usize..3, 3..5, 5..9, 9..10];
        let members = [0usize..2, 2..4];
        let eps = 1e-5;
        let weights: Vec<f32> = (0..10).map(|i| 0.1 + 0.13 * i as f32).collect();

        // Per-member reference built from the existing primitive kernels —
        // the exact op chain GraphNorm / the readout run per member.
        let mut mu_want = Vec::new();
        let mut inv_want = Vec::new();
        for member in &members {
            let gs = &graph_segs[member.clone()];
            let means: Vec<Tensor> = gs
                .iter()
                .map(|g| mean_rows(&select_rows(&stack, g.start, g.len())))
                .collect();
            let mean_refs: Vec<&Tensor> = means.iter().collect();
            let mu = mean_rows(&concat_rows(&mean_refs));
            let rows: Vec<Tensor> = gs
                .iter()
                .map(|g| select_rows(&stack, g.start, g.len()))
                .collect();
            let row_refs: Vec<&Tensor> = rows.iter().collect();
            let big = concat_rows(&row_refs);
            let centered = add_rowvec(&big, &scale(&mu, -1.0));
            let var = add_const(&mean_rows(&mul(&centered, &centered)), eps);
            let inv = recip(&sqrt(&var));
            mu_want.extend_from_slice(&mu.data);
            inv_want.extend_from_slice(&inv.data);
        }
        let mut mean_want = Vec::new();
        let mut wmean_want = Vec::new();
        for g in &graph_segs {
            let rows = select_rows(&stack, g.start, g.len());
            mean_want.extend_from_slice(&mean_rows(&rows).data);
            let norm = normalized_weights(g.len(), &weights[g.start..g.end]);
            wmean_want.extend_from_slice(&weighted_mean_rows(&rows, &norm).data);
        }

        // Self-attention reference: per member, the composed
        // matmul_nt → scale → softmax_rows → matmul route.
        let (q, k, v) = (t(10, 6, 41), t(10, 6, 42), t(10, 6, 43));
        let attn_segs = [0usize..5, 5..6, 6..10];
        let att_scale = 0.5f32;
        let mut attn_want = Vec::new();
        for seg in &attn_segs {
            let qs = select_rows(&q, seg.start, seg.len());
            let ks = select_rows(&k, seg.start, seg.len());
            let vs = select_rows(&v, seg.start, seg.len());
            let alphas = softmax_rows(&scale(&matmul_nt(&qs, &ks), att_scale));
            attn_want.extend_from_slice(&matmul(&alphas, &vs).data);
        }

        let before = pool::num_threads();
        for threads in [1, 2, 4] {
            pool::set_num_threads(threads);
            let (mu, inv) = segmented_norm_stats(&stack, &graph_segs, &members, eps);
            assert_eq!(mu.data, mu_want, "segmented_norm_stats mu t={threads}");
            assert_eq!(inv.data, inv_want, "segmented_norm_stats inv t={threads}");
            let means = segmented_mean_rows(&stack, &graph_segs);
            assert_eq!(means.data, mean_want, "segmented_mean_rows t={threads}");
            let wmeans = segmented_weighted_mean_rows(&stack, &weights, &graph_segs);
            assert_eq!(
                wmeans.data, wmean_want,
                "segmented_weighted_mean_rows t={threads}"
            );
            let attn = segmented_self_attention(&q, &k, &v, &attn_segs, att_scale);
            assert_eq!(attn.data, attn_want, "segmented_self_attention t={threads}");
        }
        pool::set_num_threads(before);
    }

    #[test]
    fn fused_elementwise_epilogues_match_composed_routes() {
        // gated_blend ≡ sigmoid → mul → scale/add_const → mul → add.
        let s = t(9, 7, 50);
        let a = t(9, 7, 51);
        let b = t(9, 7, 52);
        let gate = sigmoid(&s);
        let take_a = mul(&gate, &a);
        let inv = add_const(&scale(&gate, -1.0), 1.0);
        let blend_want = add(&take_a, &mul(&inv, &b));

        // segmented_norm_apply ≡ scale(-1) → gather → add → gather → mul
        // → mul_rowvec → add_rowvec.
        let x = t(8, 5, 53);
        let mu = t(3, 5, 54);
        let istd = t(3, 5, 55);
        let gamma = t(1, 5, 56);
        let beta = t(1, 5, 57);
        let seg_of = [0usize, 0, 1, 1, 1, 2, 2, 0];
        let neg_mu = gather_rows(&scale(&mu, -1.0), &seg_of);
        let centered = add(&x, &neg_mu);
        let norm = mul(&centered, &gather_rows(&istd, &seg_of));
        let apply_want = add_rowvec(&mul_rowvec(&norm, &gamma), &beta);

        let before = pool::num_threads();
        for threads in [1, 2, 4] {
            pool::set_num_threads(threads);
            assert_eq!(
                gated_blend(&s, &a, &b).data,
                blend_want.data,
                "gated_blend t={threads}"
            );
            assert_eq!(
                segmented_norm_apply(&x, &mu, &istd, &seg_of, &gamma, &beta).data,
                apply_want.data,
                "segmented_norm_apply t={threads}"
            );
        }
        pool::set_num_threads(before);
    }

    #[test]
    fn segmented_self_attention_rejects_overlapping_segments() {
        let x = t(4, 3, 44);
        let r =
            std::panic::catch_unwind(|| segmented_self_attention(&x, &x, &x, &[0..3, 2..4], 1.0));
        assert!(r.is_err(), "overlapping segments must be rejected");
    }

    #[test]
    fn blocked_matmul_handles_zero_blocks_and_tails() {
        backend::with_backend(backend::Backend::Scalar, || {
            // Zeros placed to hit the all-nonzero block, the mixed block,
            // and the scalar tail of the register-blocked k-loop.
            let mut a = t(3, 11, 36);
            for kk in [1usize, 2, 3, 9] {
                a.data[11 + kk] = 0.0; // second row: zeros inside block + tail
            }
            let b = t(11, 7, 37);
            let row = Tensor::row(a.data[11..22].to_vec());
            assert_eq!(matmul(&a, &b).data, matmul_ref(&a, &b).data);
            assert_eq!(matmul(&row, &b).data, matmul_ref(&row, &b).data);
        });
    }

    #[test]
    fn gather_rows_validates_before_copying() {
        let table = t(4, 3, 12);
        let r = std::panic::catch_unwind(|| gather_rows(&table, &[1, 9]));
        assert!(r.is_err());
        let ok = gather_rows(&table, &[3, 0]);
        assert_eq!(ok.row_slice(0), table.row_slice(3));
        assert_eq!(ok.row_slice(1), table.row_slice(0));
    }

    /// Build the sparse head's reference per masked row: gather the dense
    /// logits at the effective (last-write-wins) entries in kept order,
    /// log-softmax over that slice alone, scatter into a `-∞` row.
    fn sparse_head_row_ref(dense_logits: &[f32], entries: &[(usize, f32)], c: usize) -> Vec<f32> {
        let mut kept: Vec<(usize, f32)> = Vec::new();
        for (p, &(col, lw)) in entries.iter().enumerate() {
            if !entry_is_overridden(entries, p) {
                kept.push((col, lw));
            }
        }
        kept.sort_unstable_by_key(|&(col, _)| col);
        let (kept_cols, vals): (Vec<usize>, Vec<f32>) = kept
            .into_iter()
            .map(|(col, lw)| (col, dense_logits[col] + lw))
            .unzip();
        let lsm = log_softmax_rows(&Tensor::row(vals));
        let mut row = vec![f32::NEG_INFINITY; c];
        for (col, &v) in kept_cols.into_iter().zip(&lsm.data) {
            row[col] = v;
        }
        row
    }

    #[test]
    fn masked_matmul_cols_matches_gathered_dense_route() {
        backend::with_backend(backend::Backend::Scalar, || {
            let a = t(4, 10, 70);
            let b = t(10, 12, 71);
            let bias = t(1, 12, 72);
            // Row 0: no mask (dense fallback); row 1: sparse with a
            // duplicate column (later wins); row 2: empty entries (dense
            // fallback with default); row 3: single allowed column.
            let e1 = [(3usize, -0.5f32), (7, 0.25), (3, 0.1), (11, -1.0)];
            let e3 = [(0usize, 0.5f32)];
            let masks = [
                None,
                Some(SparseLogMask {
                    default: -30.0,
                    entries: &e1,
                }),
                Some(SparseLogMask {
                    default: -2.0,
                    entries: &[],
                }),
                Some(SparseLogMask {
                    default: -30.0,
                    entries: &e3,
                }),
            ];
            // Dense composed route for the fallback rows and raw logits.
            let logits = add_rowvec(&matmul(&a, &b), &bias);
            let dense = masked_log_softmax_rows(&logits, &masks);
            let mut want = Tensor::zeros(4, 12);
            want.data[0..12].copy_from_slice(&dense.data[0..12]);
            want.data[12..24].copy_from_slice(&sparse_head_row_ref(&logits.data[12..24], &e1, 12));
            want.data[24..36].copy_from_slice(&dense.data[24..36]);
            want.data[36..48].copy_from_slice(&sparse_head_row_ref(&logits.data[36..48], &e3, 12));

            // Exact FLOP attribution: 3 effective + 12 + 12 + 1 columns.
            let scope = profile_scope("test.masked_matmul_cols");
            let got = masked_matmul_cols(&a, &b, &bias, &masks);
            let prof = scope.finish();
            assert_eq!(prof.matmuls, 1);
            assert_eq!(prof.flops, 2 * 10 * (3 + 12 + 12 + 1));
            assert_eq!(got.data, want.data, "sparse head not bit-identical");

            let before = pool::num_threads();
            for threads in [1, 2, 4] {
                pool::set_num_threads(threads);
                assert_eq!(
                    masked_matmul_cols(&a, &b, &bias, &masks).data,
                    want.data,
                    "t={threads}"
                );
            }
            pool::set_num_threads(before);
        });
    }

    /// Signed ULP distance (0 when bit-identical; ±0 count as equal).
    fn ulps(x: f32, y: f32) -> u64 {
        fn key(v: f32) -> i64 {
            let b = v.to_bits() as i32;
            if b < 0 {
                i64::from(i32::MIN) - i64::from(b)
            } else {
                i64::from(b)
            }
        }
        key(x).abs_diff(key(y))
    }

    /// Max ULP distance, ignoring elements that agree within `abs_tol`:
    /// a near-zero dot product (catastrophic cancellation of O(1) terms)
    /// makes raw ULP distance meaningless, so tiny absolute differences
    /// get an escape hatch while O(1) values face the full ULP budget.
    fn max_ulps_tol(a: &[f32], b: &[f32], abs_tol: f32) -> u64 {
        a.iter()
            .zip(b)
            .filter(|(&x, &y)| (x - y).abs() > abs_tol)
            .map(|(&x, &y)| ulps(x, y))
            .max()
            .unwrap_or(0)
    }

    fn max_ulps(a: &[f32], b: &[f32]) -> u64 {
        max_ulps_tol(a, b, 0.0)
    }

    #[test]
    fn avx2_backend_is_thread_deterministic_within_ulp_of_scalar() {
        use backend::Backend;
        if !backend::is_supported(Backend::Avx2Fma) {
            eprintln!("skipping: CPU lacks AVX2+FMA");
            return;
        }
        let a = t(70, 40, 80);
        let b = t(40, 60, 81);
        let row = t(1, 40, 82);
        let bt = t(50, 40, 83);
        let gamma = t(1, 60, 84);
        let beta = t(1, 60, 85);
        let scalar = backend::with_backend(Backend::Scalar, || {
            (
                matmul(&a, &b),
                matmul(&row, &b),
                matmul_nt(&a, &bt),
                matmul_tn(&a, &t(70, 33, 86)),
                row_norm_stats(&a, 1e-5),
                layer_norm(&b, &gamma, &beta, 1e-5),
            )
        });
        let before = pool::num_threads();
        pool::set_num_threads(1);
        let base = backend::with_backend(Backend::Avx2Fma, || {
            (
                matmul(&a, &b),
                matmul(&row, &b),
                matmul_nt(&a, &bt),
                matmul_tn(&a, &t(70, 33, 86)),
                row_norm_stats(&a, 1e-5),
                layer_norm(&b, &gamma, &beta, 1e-5),
            )
        });
        // Bit-identical under AVX2 at any thread count.
        for threads in [2, 4] {
            pool::set_num_threads(threads);
            let again = backend::with_backend(Backend::Avx2Fma, || {
                (
                    matmul(&a, &b),
                    matmul(&row, &b),
                    matmul_nt(&a, &bt),
                    matmul_tn(&a, &t(70, 33, 86)),
                    row_norm_stats(&a, 1e-5),
                    layer_norm(&b, &gamma, &beta, 1e-5),
                )
            });
            assert_eq!(base.0.data, again.0.data, "matmul t={threads}");
            assert_eq!(base.1.data, again.1.data, "matmul row t={threads}");
            assert_eq!(base.2.data, again.2.data, "matmul_nt t={threads}");
            assert_eq!(base.3.data, again.3.data, "matmul_tn t={threads}");
            assert_eq!(base.4 .0.data, again.4 .0.data, "stats mu t={threads}");
            assert_eq!(base.4 .1.data, again.4 .1.data, "stats inv t={threads}");
            assert_eq!(base.5.data, again.5.data, "layer_norm t={threads}");
        }
        pool::set_num_threads(before);
        // Within an explicit ULP budget of the scalar reference. Matmul
        // outputs get an absolute escape hatch for cancellation-heavy
        // dots (a k≈40 sum of O(1) terms landing near zero has no
        // meaningful ULP distance); 1e-4 is ~10× the worst-case FMA
        // re-rounding bound for these shapes.
        const BUDGET: u64 = 256;
        const CANCEL: f32 = 1e-4;
        assert!(
            max_ulps_tol(&scalar.0.data, &base.0.data, CANCEL) <= BUDGET,
            "matmul ulp"
        );
        assert!(
            max_ulps_tol(&scalar.1.data, &base.1.data, CANCEL) <= BUDGET,
            "row ulp"
        );
        assert!(
            max_ulps_tol(&scalar.2.data, &base.2.data, CANCEL) <= BUDGET,
            "nt ulp"
        );
        assert!(
            max_ulps_tol(&scalar.3.data, &base.3.data, CANCEL) <= BUDGET,
            "tn ulp"
        );
        assert!(
            max_ulps(&scalar.4 .1.data, &base.4 .1.data) <= BUDGET,
            "inv_std ulp"
        );
        assert!(
            max_ulps_tol(&scalar.5.data, &base.5.data, CANCEL) <= BUDGET,
            "ln ulp"
        );
    }

    #[test]
    fn softmax_family_is_bit_identical_across_backends() {
        use backend::Backend;
        if !backend::is_supported(Backend::Avx2Fma) {
            eprintln!("skipping: CPU lacks AVX2+FMA");
            return;
        }
        let x = t(9, 33, 90);
        let e = [(3usize, -0.5f32), (17, 0.25)];
        let masks: Vec<Option<SparseLogMask<'_>>> = (0..9)
            .map(|i| {
                if i % 2 == 0 {
                    Some(SparseLogMask {
                        default: -30.0,
                        entries: &e,
                    })
                } else {
                    None
                }
            })
            .collect();
        let scalar = backend::with_backend(Backend::Scalar, || {
            (
                softmax_rows(&x),
                log_softmax_rows(&x),
                masked_log_softmax_rows(&x, &masks),
            )
        });
        let avx2 = backend::with_backend(Backend::Avx2Fma, || {
            (
                softmax_rows(&x),
                log_softmax_rows(&x),
                masked_log_softmax_rows(&x, &masks),
            )
        });
        assert_eq!(scalar.0.data, avx2.0.data, "softmax_rows");
        assert_eq!(scalar.1.data, avx2.1.data, "log_softmax_rows");
        assert_eq!(scalar.2.data, avx2.2.data, "masked_log_softmax_rows");
    }
}
