//! Tape-free forward-only tensor ops for inference.
//!
//! The autograd [`crate::Tape`] eagerly computes values *and* records an
//! [`crate::Op`] node per operation so `backward` can run later. Online
//! serving never calls `backward`, so every prediction through the tape
//! pays for node bookkeeping (an `Op` clone, a `Vec` push, a retained copy
//! of every intermediate) it will never use. This module is the serving
//! hot path: each function applies the corresponding [`crate::kernels`]
//! routine — the *same* compute body the tape ops execute — directly to
//! [`Tensor`]s with no graph allocation. Because both paths share one
//! kernel body (and the kernels are deterministic at any thread count),
//! results are bit-identical to a forward pass on the tape — property-
//! tested in `tests/kernel_parity.rs` and end-to-end in
//! `rntrajrec-models` / `rntrajrec-serve`.
//!
//! Naming follows the tape methods (`add_rowvec` here ≡ `Tape::add_rowvec`).

use std::ops::Range;

use crate::{kernels, GraphCsr, Tensor};

pub use crate::kernels::SparseLogMask;

// ----- element-wise ---------------------------------------------------------

pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    kernels::add(a, b)
}

pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    kernels::sub(a, b)
}

pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    kernels::mul(a, b)
}

pub fn scale(a: &Tensor, c: f32) -> Tensor {
    kernels::scale(a, c)
}

pub fn add_const(a: &Tensor, c: f32) -> Tensor {
    kernels::add_const(a, c)
}

pub fn add_rowvec(m: &Tensor, v: &Tensor) -> Tensor {
    kernels::add_rowvec(m, v)
}

pub fn mul_rowvec(m: &Tensor, v: &Tensor) -> Tensor {
    kernels::mul_rowvec(m, v)
}

pub fn add_colvec(m: &Tensor, v: &Tensor) -> Tensor {
    kernels::add_colvec(m, v)
}

pub fn mul_colvec(m: &Tensor, v: &Tensor) -> Tensor {
    kernels::mul_colvec(m, v)
}

// ----- matrix products ------------------------------------------------------

/// `[R,K] × [K,C]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    kernels::matmul(a, b)
}

/// `a × bᵀ` without materialising the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    kernels::matmul_nt(a, b)
}

// ----- activations ----------------------------------------------------------

pub fn sigmoid(a: &Tensor) -> Tensor {
    kernels::sigmoid(a)
}

pub fn tanh(a: &Tensor) -> Tensor {
    kernels::tanh(a)
}

pub fn relu(a: &Tensor) -> Tensor {
    kernels::relu(a)
}

pub fn leaky_relu(a: &Tensor, slope: f32) -> Tensor {
    kernels::leaky_relu(a, slope)
}

pub fn sqrt(a: &Tensor) -> Tensor {
    kernels::sqrt(a)
}

pub fn recip(a: &Tensor) -> Tensor {
    kernels::recip(a)
}

// ----- softmax --------------------------------------------------------------

pub fn softmax_rows(a: &Tensor) -> Tensor {
    kernels::softmax_rows(a)
}

pub fn log_softmax_rows(a: &Tensor) -> Tensor {
    kernels::log_softmax_rows(a)
}

/// Fused constraint-mask add + stable log-softmax per row (the decoder's
/// Eq. 16 epilogue); bit-identical to `log_softmax_rows(add(x, mask))`.
pub fn masked_log_softmax_rows(a: &Tensor, masks: &[Option<SparseLogMask<'_>>]) -> Tensor {
    kernels::masked_log_softmax_rows(a, masks)
}

/// Sparse segment head: compute only the mask-allowed columns of
/// `a×b + bias`, fused with the allowed-column log-softmax. Masked-out
/// columns are exact `-∞`; per-column logits match the dense route
/// bitwise, and rows without a usable mask fall back to the dense route
/// bit-identically.
pub fn masked_matmul_cols(
    a: &Tensor,
    b: &Tensor,
    bias: &Tensor,
    masks: &[Option<SparseLogMask<'_>>],
) -> Tensor {
    kernels::masked_matmul_cols(a, b, bias, masks)
}

// ----- layer norm -------------------------------------------------------------

/// Fused layer normalisation `y = γ ⊙ (x − μ)/σ + β` per row;
/// bit-identical to the composed primitive route.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
    kernels::layer_norm(x, gamma, beta, eps)
}

// ----- segmented decoder-fusion ops -------------------------------------------

/// Stack `m[segs[s], :] + v[s, :]` over every segment (batched attention
/// pre-activation).
pub fn segments_add_rowvec(m: &Tensor, v: &Tensor, segs: &[Range<usize>]) -> Tensor {
    kernels::segments_add_rowvec(m, v, segs)
}

/// Softmax over consecutive chunks of a `[1, N]` row.
pub fn softmax_segments(a: &Tensor, lens: &[usize]) -> Tensor {
    kernels::softmax_segments(a, lens)
}

/// Per-segment `[1, L_s] × [L_s, C]` attention application (batched
/// decoder context vectors).
pub fn segmented_attn_context(alphas: &Tensor, feats: &Tensor, segs: &[Range<usize>]) -> Tensor {
    kernels::segmented_attn_context(alphas, feats, segs)
}

// ----- segmented encoder-fusion ops -------------------------------------------

/// Per-segment column means (batched graph readout / trajectory pooling);
/// each output row bit-identical to `mean_rows` on the segment alone.
pub fn segmented_mean_rows(a: &Tensor, segs: &[Range<usize>]) -> Tensor {
    kernels::segmented_mean_rows(a, segs)
}

/// Per-segment weighted means with raw weights concatenated in segment
/// order (batched Eq. 6 pooling); bit-identical to per-segment
/// `weighted_mean_rows` under `normalized_weights`.
pub fn segmented_weighted_mean_rows(a: &Tensor, weights: &[f32], segs: &[Range<usize>]) -> Tensor {
    kernels::segmented_weighted_mean_rows(a, weights, segs)
}

/// GraphNorm statistics (Eq. 8–9) scoped per member of a stacked batch:
/// `(μ, 1/√(var+eps))`, each `[M, C]`, bit-identical per member to the
/// statistics over that member's graphs alone.
pub fn segmented_norm_stats(
    a: &Tensor,
    graph_segs: &[Range<usize>],
    members: &[Range<usize>],
    eps: f32,
) -> (Tensor, Tensor) {
    kernels::segmented_norm_stats(a, graph_segs, members, eps)
}

/// Fused gated blend `σ(s)⊙a + (1−σ(s))⊙b` (Eq. 7 epilogue);
/// bit-identical to the composed five-op route.
pub fn gated_blend(s: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    kernels::gated_blend(s, a, b)
}

/// Fused normalise-and-affine GraphNorm epilogue with per-row member
/// statistics; bit-identical to the composed broadcast route.
pub fn segmented_norm_apply(
    x: &Tensor,
    mu: &Tensor,
    inv_std: &Tensor,
    seg_of: &[usize],
    gamma: &Tensor,
    beta: &Tensor,
) -> Tensor {
    kernels::segmented_norm_apply(x, mu, inv_std, seg_of, gamma, beta)
}

/// Per-segment scaled dot-product self-attention over ordered disjoint row
/// segments (batched GPSFormer temporal attention); bit-identical per
/// segment to the composed matmul_nt → scale → softmax → matmul route.
pub fn segmented_self_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    segs: &[Range<usize>],
    scale: f32,
) -> Tensor {
    kernels::segmented_self_attention(q, k, v, segs, scale)
}

// ----- shape ops ------------------------------------------------------------

pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    kernels::concat_cols(parts)
}

pub fn select_cols(a: &Tensor, start: usize, len: usize) -> Tensor {
    kernels::select_cols(a, start, len)
}

pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
    kernels::concat_rows(parts)
}

pub fn select_rows(a: &Tensor, start: usize, len: usize) -> Tensor {
    kernels::select_rows(a, start, len)
}

pub fn repeat_rows(a: &Tensor, n: usize) -> Tensor {
    kernels::repeat_rows(a, n)
}

// ----- reductions -----------------------------------------------------------

pub fn mean_rows(a: &Tensor) -> Tensor {
    kernels::mean_rows(a)
}

/// Weighted mean over rows with fixed positive weights (normalised
/// internally) — Eq. (6) pooling.
pub fn weighted_mean_rows(a: &Tensor, weights: &[f32]) -> Tensor {
    let norm = kernels::normalized_weights(a.rows, weights);
    kernels::weighted_mean_rows(a, &norm)
}

// ----- lookup ---------------------------------------------------------------

pub fn gather_rows(table: &Tensor, indices: &[usize]) -> Tensor {
    kernels::gather_rows(table, indices)
}

// ----- fused graph-attention ops --------------------------------------------

/// GAT edge scores: `out[e] = src[i] + dst[j_e]` (`src`/`dst` are `[n,1]`).
pub fn edge_scores(src: &Tensor, dst: &Tensor, csr: &GraphCsr) -> Tensor {
    kernels::edge_scores(src, dst, csr)
}

/// Softmax within each node's edge segment.
pub fn segmented_softmax(scores: &Tensor, csr: &GraphCsr) -> Tensor {
    kernels::segmented_softmax(scores, csr)
}

/// Attention aggregation: `out[i] = Σ_{e ∈ seg(i)} α[e] · feats[j_e]`.
pub fn neighbor_sum(alphas: &Tensor, feats: &Tensor, csr: &GraphCsr) -> Tensor {
    kernels::neighbor_sum(alphas, feats, csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn t(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::uniform(rows, cols, 1.0, &mut rng)
    }

    /// Every infer op must be bit-identical to its tape twin.
    #[test]
    fn ops_match_tape_bitwise() {
        let a = t(3, 4, 1);
        let b = t(3, 4, 2);
        let v = t(1, 4, 3);
        let cvec = t(3, 1, 4);
        let w = t(4, 5, 5);

        let mut tape = Tape::new();
        let (na, nb, nv, nc, nw) = (
            tape.leaf(a.clone()),
            tape.leaf(b.clone()),
            tape.leaf(v.clone()),
            tape.leaf(cvec.clone()),
            tape.leaf(w.clone()),
        );

        let pairs: Vec<(Tensor, crate::NodeId)> = vec![
            (add(&a, &b), tape.add(na, nb)),
            (sub(&a, &b), tape.sub(na, nb)),
            (mul(&a, &b), tape.mul(na, nb)),
            (scale(&a, 0.37), tape.scale(na, 0.37)),
            (add_const(&a, -1.2), tape.add_const(na, -1.2)),
            (add_rowvec(&a, &v), tape.add_rowvec(na, nv)),
            (mul_rowvec(&a, &v), tape.mul_rowvec(na, nv)),
            (add_colvec(&a, &cvec), tape.add_colvec(na, nc)),
            (mul_colvec(&a, &cvec), tape.mul_colvec(na, nc)),
            (matmul(&a, &w), tape.matmul(na, nw)),
            (matmul_nt(&a, &b), tape.matmul_nt(na, nb)),
            (sigmoid(&a), tape.sigmoid(na)),
            (tanh(&a), tape.tanh(na)),
            (relu(&a), tape.relu(na)),
            (leaky_relu(&a, 0.2), tape.leaky_relu(na, 0.2)),
            (sqrt(&a), tape.sqrt(na)),
            (recip(&a), tape.recip(na)),
            (softmax_rows(&a), tape.softmax_rows(na)),
            (log_softmax_rows(&a), tape.log_softmax_rows(na)),
            (concat_cols(&[&a, &b]), tape.concat_cols(&[na, nb])),
            (select_cols(&a, 1, 2), tape.select_cols(na, 1, 2)),
            (concat_rows(&[&a, &b]), tape.concat_rows(&[na, nb])),
            (select_rows(&a, 1, 2), tape.select_rows(na, 1, 2)),
            (repeat_rows(&v, 4), tape.repeat_rows(nv, 4)),
            (mean_rows(&a), tape.mean_rows(na)),
            (
                weighted_mean_rows(&a, &[0.2, 0.5, 0.3]),
                tape.weighted_mean_rows(na, &[0.2, 0.5, 0.3]),
            ),
            (
                gather_rows(&a, &[2, 0, 2]),
                tape.gather_rows(na, &[2, 0, 2]),
            ),
        ];
        for (i, (got, node)) in pairs.iter().enumerate() {
            let want = tape.value(*node);
            assert_eq!(got.shape(), want.shape(), "op #{i} shape");
            assert_eq!(got.data, want.data, "op #{i} not bit-identical");
        }
    }

    #[test]
    fn graph_ops_match_tape_bitwise() {
        let csr = Arc::new(GraphCsr::from_neighbor_lists(
            &[vec![1], vec![0, 2], vec![1]],
            true,
        ));
        let src = t(3, 1, 6);
        let dst = t(3, 1, 7);
        let feats = t(3, 4, 8);

        let mut tape = Tape::new();
        let (ns, nd, nf) = (
            tape.leaf(src.clone()),
            tape.leaf(dst.clone()),
            tape.leaf(feats.clone()),
        );
        let scores_t = tape.edge_scores(ns, nd, &csr);
        let alphas_t = tape.segmented_softmax(scores_t, &csr);
        let agg_t = tape.neighbor_sum(alphas_t, nf, &csr);

        let scores = edge_scores(&src, &dst, &csr);
        assert_eq!(scores.data, tape.value(scores_t).data);
        let alphas = segmented_softmax(&scores, &csr);
        assert_eq!(alphas.data, tape.value(alphas_t).data);
        let agg = neighbor_sum(&alphas, &feats, &csr);
        assert_eq!(agg.data, tape.value(agg_t).data);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = add(&t(2, 2, 1), &t(2, 3, 2));
    }
}
