//! Tape-free forward-only tensor ops for inference.
//!
//! The autograd [`crate::Tape`] eagerly computes values *and* records an
//! [`crate::Op`] node per operation so `backward` can run later. Online
//! serving never calls `backward`, so every prediction through the tape
//! pays for node bookkeeping (an `Op` clone, a `Vec` push, a retained copy
//! of every intermediate) it will never use. This module is the serving
//! hot path: the same numerical kernels as the tape ops, applied directly
//! to [`Tensor`]s with no graph allocation. Each function mirrors its tape
//! twin operation-for-operation (same accumulation order), so results are
//! bit-identical to a forward pass on the tape — property-tested in this
//! module and end-to-end in `rntrajrec-models` / `rntrajrec-serve`.
//!
//! Naming follows the tape methods (`add_rowvec` here ≡ `Tape::add_rowvec`).

use crate::tape::{matmul_kernel, matmul_nt_kernel, softmax_in_place};
use crate::{GraphCsr, Tensor};

// ----- element-wise ---------------------------------------------------------

pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    Tensor::from_vec(
        a.rows,
        a.cols,
        a.data.iter().zip(&b.data).map(|(x, y)| x + y).collect(),
    )
}

pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "sub: shape mismatch");
    Tensor::from_vec(
        a.rows,
        a.cols,
        a.data.iter().zip(&b.data).map(|(x, y)| x - y).collect(),
    )
}

pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "mul: shape mismatch");
    Tensor::from_vec(
        a.rows,
        a.cols,
        a.data.iter().zip(&b.data).map(|(x, y)| x * y).collect(),
    )
}

pub fn scale(a: &Tensor, c: f32) -> Tensor {
    Tensor::from_vec(a.rows, a.cols, a.data.iter().map(|x| x * c).collect())
}

pub fn add_const(a: &Tensor, c: f32) -> Tensor {
    Tensor::from_vec(a.rows, a.cols, a.data.iter().map(|x| x + c).collect())
}

pub fn add_rowvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.rows, 1, "add_rowvec: v must be [1,C]");
    assert_eq!(m.cols, v.cols, "add_rowvec: column mismatch");
    let mut t = m.clone();
    for r in 0..t.rows {
        for c in 0..t.cols {
            t.data[r * t.cols + c] += v.data[c];
        }
    }
    t
}

pub fn mul_rowvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.rows, 1, "mul_rowvec: v must be [1,C]");
    assert_eq!(m.cols, v.cols, "mul_rowvec: column mismatch");
    let mut t = m.clone();
    for r in 0..t.rows {
        for c in 0..t.cols {
            t.data[r * t.cols + c] *= v.data[c];
        }
    }
    t
}

pub fn add_colvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.cols, 1, "add_colvec: v must be [R,1]");
    assert_eq!(m.rows, v.rows, "add_colvec: row mismatch");
    let mut t = m.clone();
    for r in 0..t.rows {
        let add = v.data[r];
        for c in 0..t.cols {
            t.data[r * t.cols + c] += add;
        }
    }
    t
}

pub fn mul_colvec(m: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(v.cols, 1, "mul_colvec: v must be [R,1]");
    assert_eq!(m.rows, v.rows, "mul_colvec: row mismatch");
    let mut t = m.clone();
    for r in 0..t.rows {
        let f = v.data[r];
        for c in 0..t.cols {
            t.data[r * t.cols + c] *= f;
        }
    }
    t
}

// ----- matrix products ------------------------------------------------------

/// `[R,K] × [K,C]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.rows, "matmul: inner dimension mismatch");
    matmul_kernel(a, b)
}

/// `a × bᵀ` without materialising the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.cols, "matmul_nt: inner dimension mismatch");
    matmul_nt_kernel(a, b)
}

// ----- activations ----------------------------------------------------------

pub fn sigmoid(a: &Tensor) -> Tensor {
    Tensor::from_vec(
        a.rows,
        a.cols,
        a.data.iter().map(|&x| 1.0 / (1.0 + (-x).exp())).collect(),
    )
}

pub fn tanh(a: &Tensor) -> Tensor {
    Tensor::from_vec(a.rows, a.cols, a.data.iter().map(|&x| x.tanh()).collect())
}

pub fn relu(a: &Tensor) -> Tensor {
    Tensor::from_vec(a.rows, a.cols, a.data.iter().map(|&x| x.max(0.0)).collect())
}

pub fn leaky_relu(a: &Tensor, slope: f32) -> Tensor {
    Tensor::from_vec(
        a.rows,
        a.cols,
        a.data
            .iter()
            .map(|&x| if x > 0.0 { x } else { slope * x })
            .collect(),
    )
}

pub fn sqrt(a: &Tensor) -> Tensor {
    Tensor::from_vec(
        a.rows,
        a.cols,
        a.data.iter().map(|&x| x.max(0.0).sqrt()).collect(),
    )
}

pub fn recip(a: &Tensor) -> Tensor {
    Tensor::from_vec(a.rows, a.cols, a.data.iter().map(|&x| 1.0 / x).collect())
}

// ----- softmax --------------------------------------------------------------

pub fn softmax_rows(a: &Tensor) -> Tensor {
    let mut t = a.clone();
    for r in 0..t.rows {
        softmax_in_place(&mut t.data[r * t.cols..(r + 1) * t.cols]);
    }
    t
}

pub fn log_softmax_rows(a: &Tensor) -> Tensor {
    let mut t = a.clone();
    for r in 0..t.rows {
        let row = &mut t.data[r * t.cols..(r + 1) * t.cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
        row.iter_mut().for_each(|x| *x -= lse);
    }
    t
}

// ----- shape ops ------------------------------------------------------------

pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty());
    let rows = parts[0].rows;
    let total: usize = parts.iter().map(|p| p.cols).sum();
    let mut t = Tensor::zeros(rows, total);
    let mut off = 0;
    for p in parts {
        assert_eq!(p.rows, rows, "concat_cols: row mismatch");
        for r in 0..rows {
            let dst = r * total + off;
            t.data[dst..dst + p.cols].copy_from_slice(&p.data[r * p.cols..(r + 1) * p.cols]);
        }
        off += p.cols;
    }
    t
}

pub fn select_cols(a: &Tensor, start: usize, len: usize) -> Tensor {
    assert!(start + len <= a.cols, "select_cols out of range");
    let mut t = Tensor::zeros(a.rows, len);
    for r in 0..a.rows {
        t.data[r * len..(r + 1) * len]
            .copy_from_slice(&a.data[r * a.cols + start..r * a.cols + start + len]);
    }
    t
}

pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty());
    let cols = parts[0].cols;
    let total: usize = parts.iter().map(|p| p.rows).sum();
    let mut data = Vec::with_capacity(total * cols);
    for p in parts {
        assert_eq!(p.cols, cols, "concat_rows: column mismatch");
        data.extend_from_slice(&p.data);
    }
    Tensor::from_vec(total, cols, data)
}

pub fn select_rows(a: &Tensor, start: usize, len: usize) -> Tensor {
    assert!(start + len <= a.rows, "select_rows out of range");
    Tensor::from_vec(
        len,
        a.cols,
        a.data[start * a.cols..(start + len) * a.cols].to_vec(),
    )
}

pub fn repeat_rows(a: &Tensor, n: usize) -> Tensor {
    assert_eq!(a.rows, 1, "repeat_rows expects a [1,C] row");
    let mut data = Vec::with_capacity(n * a.cols);
    for _ in 0..n {
        data.extend_from_slice(&a.data);
    }
    Tensor::from_vec(n, a.cols, data)
}

// ----- reductions -----------------------------------------------------------

pub fn mean_rows(a: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; a.cols];
    for row in a.data.chunks_exact(a.cols) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    let inv = 1.0 / a.rows as f32;
    out.iter_mut().for_each(|x| *x *= inv);
    Tensor::row(out)
}

/// Weighted mean over rows with fixed positive weights (normalised
/// internally) — Eq. (6) pooling.
pub fn weighted_mean_rows(a: &Tensor, weights: &[f32]) -> Tensor {
    assert_eq!(weights.len(), a.rows, "weighted_mean_rows: weight count");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let norm: Vec<f32> = weights.iter().map(|w| w / total).collect();
    let mut out = vec![0.0f32; a.cols];
    for (row, &w) in a.data.chunks_exact(a.cols).zip(&norm) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += w * x;
        }
    }
    Tensor::row(out)
}

// ----- lookup ---------------------------------------------------------------

pub fn gather_rows(table: &Tensor, indices: &[usize]) -> Tensor {
    let mut data = Vec::with_capacity(indices.len() * table.cols);
    for &i in indices {
        assert!(
            i < table.rows,
            "gather_rows: index {i} out of {} rows",
            table.rows
        );
        data.extend_from_slice(&table.data[i * table.cols..(i + 1) * table.cols]);
    }
    Tensor::from_vec(indices.len(), table.cols, data)
}

// ----- fused graph-attention ops --------------------------------------------

/// GAT edge scores: `out[e] = src[i] + dst[j_e]` (`src`/`dst` are `[n,1]`).
pub fn edge_scores(src: &Tensor, dst: &Tensor, csr: &GraphCsr) -> Tensor {
    let n = csr.num_nodes();
    assert_eq!(
        (src.rows, src.cols),
        (n, 1),
        "edge_scores: src must be [n,1]"
    );
    assert_eq!(
        (dst.rows, dst.cols),
        (n, 1),
        "edge_scores: dst must be [n,1]"
    );
    let mut out = vec![0.0f32; csr.num_edges()];
    for i in 0..n {
        for e in csr.segment(i) {
            out[e] = src.data[i] + dst.data[csr.target(e)];
        }
    }
    Tensor::from_vec(csr.num_edges(), 1, out)
}

/// Softmax within each node's edge segment.
pub fn segmented_softmax(scores: &Tensor, csr: &GraphCsr) -> Tensor {
    assert_eq!(
        (scores.rows, scores.cols),
        (csr.num_edges(), 1),
        "segmented_softmax: [E,1]"
    );
    let mut t = scores.clone();
    for i in 0..csr.num_nodes() {
        let seg = csr.segment(i);
        if !seg.is_empty() {
            softmax_in_place(&mut t.data[seg]);
        }
    }
    t
}

/// Attention aggregation: `out[i] = Σ_{e ∈ seg(i)} α[e] · feats[j_e]`.
pub fn neighbor_sum(alphas: &Tensor, feats: &Tensor, csr: &GraphCsr) -> Tensor {
    assert_eq!(
        (alphas.rows, alphas.cols),
        (csr.num_edges(), 1),
        "neighbor_sum: alphas [E,1]"
    );
    assert_eq!(feats.rows, csr.num_nodes(), "neighbor_sum: feats [n,C]");
    let cols = feats.cols;
    let mut t = Tensor::zeros(csr.num_nodes(), cols);
    for i in 0..csr.num_nodes() {
        for e in csr.segment(i) {
            let a = alphas.data[e];
            let j = csr.target(e);
            for c in 0..cols {
                t.data[i * cols + c] += a * feats.data[j * cols + c];
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn t(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::uniform(rows, cols, 1.0, &mut rng)
    }

    /// Every infer op must be bit-identical to its tape twin.
    #[test]
    fn ops_match_tape_bitwise() {
        let a = t(3, 4, 1);
        let b = t(3, 4, 2);
        let v = t(1, 4, 3);
        let cvec = t(3, 1, 4);
        let w = t(4, 5, 5);

        let mut tape = Tape::new();
        let (na, nb, nv, nc, nw) = (
            tape.leaf(a.clone()),
            tape.leaf(b.clone()),
            tape.leaf(v.clone()),
            tape.leaf(cvec.clone()),
            tape.leaf(w.clone()),
        );

        let pairs: Vec<(Tensor, crate::NodeId)> = vec![
            (add(&a, &b), tape.add(na, nb)),
            (sub(&a, &b), tape.sub(na, nb)),
            (mul(&a, &b), tape.mul(na, nb)),
            (scale(&a, 0.37), tape.scale(na, 0.37)),
            (add_const(&a, -1.2), tape.add_const(na, -1.2)),
            (add_rowvec(&a, &v), tape.add_rowvec(na, nv)),
            (mul_rowvec(&a, &v), tape.mul_rowvec(na, nv)),
            (add_colvec(&a, &cvec), tape.add_colvec(na, nc)),
            (mul_colvec(&a, &cvec), tape.mul_colvec(na, nc)),
            (matmul(&a, &w), tape.matmul(na, nw)),
            (matmul_nt(&a, &b), tape.matmul_nt(na, nb)),
            (sigmoid(&a), tape.sigmoid(na)),
            (tanh(&a), tape.tanh(na)),
            (relu(&a), tape.relu(na)),
            (leaky_relu(&a, 0.2), tape.leaky_relu(na, 0.2)),
            (sqrt(&a), tape.sqrt(na)),
            (recip(&a), tape.recip(na)),
            (softmax_rows(&a), tape.softmax_rows(na)),
            (log_softmax_rows(&a), tape.log_softmax_rows(na)),
            (concat_cols(&[&a, &b]), tape.concat_cols(&[na, nb])),
            (select_cols(&a, 1, 2), tape.select_cols(na, 1, 2)),
            (concat_rows(&[&a, &b]), tape.concat_rows(&[na, nb])),
            (select_rows(&a, 1, 2), tape.select_rows(na, 1, 2)),
            (repeat_rows(&v, 4), tape.repeat_rows(nv, 4)),
            (mean_rows(&a), tape.mean_rows(na)),
            (
                weighted_mean_rows(&a, &[0.2, 0.5, 0.3]),
                tape.weighted_mean_rows(na, &[0.2, 0.5, 0.3]),
            ),
            (
                gather_rows(&a, &[2, 0, 2]),
                tape.gather_rows(na, &[2, 0, 2]),
            ),
        ];
        for (i, (got, node)) in pairs.iter().enumerate() {
            let want = tape.value(*node);
            assert_eq!(got.shape(), want.shape(), "op #{i} shape");
            assert_eq!(got.data, want.data, "op #{i} not bit-identical");
        }
    }

    #[test]
    fn graph_ops_match_tape_bitwise() {
        let csr = Arc::new(GraphCsr::from_neighbor_lists(
            &[vec![1], vec![0, 2], vec![1]],
            true,
        ));
        let src = t(3, 1, 6);
        let dst = t(3, 1, 7);
        let feats = t(3, 4, 8);

        let mut tape = Tape::new();
        let (ns, nd, nf) = (
            tape.leaf(src.clone()),
            tape.leaf(dst.clone()),
            tape.leaf(feats.clone()),
        );
        let scores_t = tape.edge_scores(ns, nd, &csr);
        let alphas_t = tape.segmented_softmax(scores_t, &csr);
        let agg_t = tape.neighbor_sum(alphas_t, nf, &csr);

        let scores = edge_scores(&src, &dst, &csr);
        assert_eq!(scores.data, tape.value(scores_t).data);
        let alphas = segmented_softmax(&scores, &csr);
        assert_eq!(alphas.data, tape.value(alphas_t).data);
        let agg = neighbor_sum(&alphas, &feats, &csr);
        assert_eq!(agg.data, tape.value(agg_t).data);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = add(&t(2, 2, 1), &t(2, 3, 2));
    }
}
