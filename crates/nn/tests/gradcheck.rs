//! Finite-difference verification of every autograd op.
//!
//! For each op we build a small graph, reduce the output to a scalar via a
//! fixed pseudo-random weighting (so gradients are non-uniform), and compare
//! the tape's analytic gradient of every input element against a central
//! finite difference. f32 arithmetic bounds accuracy, so tolerances are
//! `2e-2` absolute on O(1) values — tight enough to catch any sign/index
//! error while robust to rounding.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rntrajrec_nn::{GraphCsr, NodeId, ParamStore, Tape, Tensor};

/// Deterministic "random" weights for reducing an output to a scalar.
fn mix_weights(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 2654435761) % 1000) as f32 / 1000.0) - 0.45)
        .collect()
}

/// Check analytic vs numeric gradients of `build` for all `inputs`.
fn check(inputs: &[Tensor], build: impl Fn(&mut Tape, &[NodeId]) -> NodeId) {
    // Analytic pass.
    let mut tape = Tape::new();
    let ids: Vec<NodeId> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let out = build(&mut tape, &ids);
    let (orows, ocols) = tape.value(out).shape();
    let w = Tensor::from_vec(orows, ocols, mix_weights(orows * ocols));
    let wid = tape.leaf(w);
    let prod = tape.mul(out, wid);
    let loss = tape.sum_all(prod);
    let mut store = ParamStore::new();
    tape.backward(loss, &mut store);
    let analytic: Vec<Vec<f32>> = ids
        .iter()
        .map(|&id| {
            tape.grad(id)
                .expect("input must receive a gradient")
                .to_vec()
        })
        .collect();

    // Numeric evaluation closure.
    let eval = |xs: &[Tensor]| -> f32 {
        let mut tape = Tape::new();
        let ids: Vec<NodeId> = xs.iter().map(|t| tape.leaf(t.clone())).collect();
        let out = build(&mut tape, &ids);
        let (orows, ocols) = tape.value(out).shape();
        let w = Tensor::from_vec(orows, ocols, mix_weights(orows * ocols));
        let wid = tape.leaf(w);
        let prod = tape.mul(out, wid);
        let loss = tape.sum_all(prod);
        tape.value(loss).item()
    };

    let h = 1e-2f32;
    for (i, input) in inputs.iter().enumerate() {
        for (j, &a) in analytic[i].iter().enumerate().take(input.data.len()) {
            let mut plus = inputs.to_vec();
            plus[i].data[j] += h;
            let mut minus = inputs.to_vec();
            minus[i].data[j] -= h;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * h);
            let tol = 2e-2_f32.max(0.05 * a.abs());
            assert!(
                (numeric - a).abs() <= tol,
                "input {i} element {j}: analytic {a}, numeric {numeric}"
            );
        }
    }
}

fn t(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// Values bounded away from zero (for relu kinks, recip, sqrt).
fn t_pos(rows: usize, cols: usize, seed: u64, lo: f32, hi: f32) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect(),
    )
}

#[test]
fn grad_add_sub_mul() {
    check(&[t(3, 4, 1), t(3, 4, 2)], |tp, ids| tp.add(ids[0], ids[1]));
    check(&[t(3, 4, 3), t(3, 4, 4)], |tp, ids| tp.sub(ids[0], ids[1]));
    check(&[t(3, 4, 5), t(3, 4, 6)], |tp, ids| tp.mul(ids[0], ids[1]));
}

#[test]
fn grad_mul_with_shared_input() {
    // x ⊙ x: gradient must accumulate both branches (2x).
    check(&[t(2, 3, 7)], |tp, ids| tp.mul(ids[0], ids[0]));
}

#[test]
fn grad_scale_addconst() {
    check(&[t(2, 5, 8)], |tp, ids| tp.scale(ids[0], -1.7));
    check(&[t(2, 5, 9)], |tp, ids| tp.add_const(ids[0], 0.3));
}

#[test]
fn grad_rowvec_broadcasts() {
    check(&[t(4, 3, 10), t(1, 3, 11)], |tp, ids| {
        tp.add_rowvec(ids[0], ids[1])
    });
    check(&[t(4, 3, 12), t(1, 3, 13)], |tp, ids| {
        tp.mul_rowvec(ids[0], ids[1])
    });
}

#[test]
fn grad_colvec_broadcasts() {
    check(&[t(4, 3, 60), t_pos(4, 1, 61, -1.0, 1.0)], |tp, ids| {
        tp.add_colvec(ids[0], ids[1])
    });
    check(&[t(4, 3, 62), t_pos(4, 1, 63, 0.2, 1.5)], |tp, ids| {
        tp.mul_colvec(ids[0], ids[1])
    });
}

#[test]
fn grad_matmul() {
    check(&[t(3, 4, 14), t(4, 2, 15)], |tp, ids| {
        tp.matmul(ids[0], ids[1])
    });
}

#[test]
fn grad_matmul_nt() {
    check(&[t(3, 4, 16), t(5, 4, 17)], |tp, ids| {
        tp.matmul_nt(ids[0], ids[1])
    });
}

#[test]
fn matmul_nt_equals_explicit_transpose() {
    let a = t(3, 4, 18);
    let b = t(5, 4, 19);
    let mut tp = Tape::new();
    let (ia, ib) = (tp.leaf(a.clone()), tp.leaf(b.clone()));
    let nt = tp.matmul_nt(ia, ib);
    // Explicit transpose of b.
    let mut bt = Tensor::zeros(4, 5);
    for r in 0..5 {
        for c in 0..4 {
            bt.set(c, r, b.get(r, c));
        }
    }
    let ibt = tp.leaf(bt);
    let mm = tp.matmul(ia, ibt);
    assert!(tp.value(nt).max_abs_diff(tp.value(mm)) < 1e-6);
}

#[test]
fn grad_activations() {
    check(&[t(3, 3, 20)], |tp, ids| tp.sigmoid(ids[0]));
    check(&[t(3, 3, 21)], |tp, ids| tp.tanh(ids[0]));
    check(&[t_pos(3, 3, 22, 0.1, 1.0)], |tp, ids| tp.relu(ids[0]));
    // Mixed-sign input bounded away from the kink.
    let mut x = t_pos(3, 3, 23, 0.1, 1.0);
    for (i, v) in x.data.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v = -*v;
        }
    }
    check(&[x.clone()], |tp, ids| tp.relu(ids[0]));
    check(&[x], |tp, ids| tp.leaky_relu(ids[0], 0.2));
}

#[test]
fn grad_sqrt_recip() {
    check(&[t_pos(2, 3, 24, 0.5, 2.0)], |tp, ids| tp.sqrt(ids[0]));
    check(&[t_pos(2, 3, 25, 0.5, 2.0)], |tp, ids| tp.recip(ids[0]));
}

#[test]
fn grad_softmax_rows() {
    check(&[t(3, 5, 26)], |tp, ids| tp.softmax_rows(ids[0]));
}

#[test]
fn grad_log_softmax_rows() {
    check(&[t(3, 5, 27)], |tp, ids| tp.log_softmax_rows(ids[0]));
}

#[test]
fn softmax_rows_sum_to_one() {
    let mut tp = Tape::new();
    let x = tp.leaf(t(4, 7, 28));
    let y = tp.softmax_rows(x);
    let v = tp.value(y);
    for r in 0..4 {
        let s: f32 = v.row_slice(r).iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(v.row_slice(r).iter().all(|&p| p >= 0.0));
    }
}

#[test]
fn log_softmax_matches_softmax_log() {
    let mut tp = Tape::new();
    let x = tp.leaf(t(3, 6, 29));
    let ls = tp.log_softmax_rows(x);
    let sm = tp.softmax_rows(x);
    let v_ls = tp.value(ls).clone();
    let v_sm = tp.value(sm).clone();
    for (a, b) in v_ls.data.iter().zip(&v_sm.data) {
        assert!((a.exp() - b).abs() < 1e-5);
    }
}

#[test]
fn grad_concat_select_cols() {
    check(&[t(3, 2, 30), t(3, 4, 31)], |tp, ids| {
        tp.concat_cols(&[ids[0], ids[1]])
    });
    check(&[t(3, 6, 32)], |tp, ids| tp.select_cols(ids[0], 1, 3));
}

#[test]
fn grad_concat_select_rows() {
    check(&[t(2, 3, 33), t(4, 3, 34)], |tp, ids| {
        tp.concat_rows(&[ids[0], ids[1]])
    });
    check(&[t(5, 3, 35)], |tp, ids| tp.select_rows(ids[0], 1, 3));
}

#[test]
fn grad_repeat_rows() {
    check(&[t(1, 4, 36)], |tp, ids| tp.repeat_rows(ids[0], 5));
}

#[test]
fn grad_reductions() {
    check(&[t(4, 3, 37)], |tp, ids| tp.mean_rows(ids[0]));
    check(&[t(4, 3, 38)], |tp, ids| {
        tp.weighted_mean_rows(ids[0], &[0.5, 1.0, 2.0, 0.1])
    });
    check(&[t(3, 3, 39)], |tp, ids| tp.mean_all(ids[0]));
    check(&[t(3, 3, 40)], |tp, ids| tp.sum_all(ids[0]));
}

#[test]
fn grad_gather_rows() {
    check(&[t(5, 3, 41)], |tp, ids| {
        tp.gather_rows(ids[0], &[0, 2, 2, 4])
    });
}

#[test]
fn gather_rows_duplicates_accumulate() {
    let mut tp = Tape::new();
    let table = tp.leaf(t(4, 2, 42));
    let g = tp.gather_rows(table, &[1, 1, 1]);
    let loss = tp.sum_all(g);
    let mut store = ParamStore::new();
    tp.backward(loss, &mut store);
    let grad = tp.grad(table).unwrap();
    // Row 1 gathered thrice -> gradient 3 in each of its columns.
    assert_eq!(&grad[2..4], &[3.0, 3.0]);
    assert_eq!(&grad[0..2], &[0.0, 0.0]);
}

fn demo_csr() -> Arc<GraphCsr> {
    // 4 nodes: 0-1-2 path plus isolated-ish 3 (self loops added).
    Arc::new(GraphCsr::from_neighbor_lists(
        &[vec![1], vec![0, 2], vec![1], vec![]],
        true,
    ))
}

#[test]
fn grad_edge_scores() {
    let csr = demo_csr();
    check(&[t(4, 1, 43), t(4, 1, 44)], move |tp, ids| {
        tp.edge_scores(ids[0], ids[1], &csr)
    });
}

#[test]
fn grad_segmented_softmax() {
    let csr = demo_csr();
    let e = csr.num_edges();
    check(&[t(e, 1, 45)], move |tp, ids| {
        tp.segmented_softmax(ids[0], &csr)
    });
}

#[test]
fn grad_neighbor_sum() {
    let csr = demo_csr();
    let e = csr.num_edges();
    check(&[t_pos(e, 1, 46, 0.1, 1.0), t(4, 3, 47)], move |tp, ids| {
        tp.neighbor_sum(ids[0], ids[1], &csr)
    });
}

#[test]
fn segmented_softmax_sums_to_one_per_node() {
    let csr = demo_csr();
    let mut tp = Tape::new();
    let s = tp.leaf(t(csr.num_edges(), 1, 48));
    let y = tp.segmented_softmax(s, &csr);
    let v = tp.value(y);
    for i in 0..csr.num_nodes() {
        let sum: f32 = csr.segment(i).map(|e| v.data[e]).sum();
        assert!((sum - 1.0).abs() < 1e-5, "node {i} attention sums to {sum}");
    }
}

#[test]
fn grad_composite_gat_like_block() {
    // End-to-end chain: gather -> matmul -> edge scores -> leaky relu ->
    // segmented softmax -> neighbor sum -> mean. Exercises interaction of
    // the fused graph ops with dense ops.
    let csr = demo_csr();
    check(
        &[t(4, 3, 49), t(3, 2, 50), t(2, 1, 51), t(2, 1, 52)],
        move |tp, ids| {
            let h = tp.matmul(ids[0], ids[1]); // [4,2]
            let s_src = tp.matmul(h, ids[2]); // [4,1]
            let s_dst = tp.matmul(h, ids[3]); // [4,1]
            let scores = tp.edge_scores(s_src, s_dst, &csr);
            let scores = tp.leaky_relu(scores, 0.2);
            let alphas = tp.segmented_softmax(scores, &csr);
            tp.neighbor_sum(alphas, h, &csr)
        },
    );
}

#[test]
fn grad_layer_norm_composite() {
    // LayerNorm composed from primitives must differentiate exactly:
    // y = (x - mean) / sqrt(var + eps).
    check(&[t(1, 6, 53)], |tp, ids| {
        let x = ids[0];
        let mu = tp.mean_rows(x); // [1,6] row is itself; mean over rows is identity here
                                  // For a [1,C] row, mean over *columns*: transpose trick via matmul
                                  // with a column of ones is overkill — use mean_all.
        let m = tp.mean_all(x); // [1,1]
        let mrep = tp.repeat_rows(m, 1);
        // broadcast subtract via add_rowvec of -m (cols must match):
        let neg = tp.scale(mrep, -1.0);
        // expand scalar to [1,C]: use matmul [1,1]x[1,C] of ones
        let ones = tp.leaf(Tensor::full(1, 6, 1.0));
        let negrow = tp.matmul(neg, ones); // [1,6] all -m
        let centered = tp.add(x, negrow);
        let sq = tp.mul(centered, centered);
        let var = tp.mean_all(sq);
        let var_eps = tp.add_const(var, 1e-3);
        let std = tp.sqrt(var_eps);
        let inv = tp.recip(std); // [1,1]
        let invrow = tp.matmul(inv, ones); // [1,6]
        let _ = mu;
        tp.mul(centered, invrow)
    });
}

#[test]
fn grad_layer_norm_fused() {
    // The fused op's own backward (x, gamma, and beta all receive exact
    // analytic gradients).
    check(
        &[t(3, 6, 59), t_pos(1, 6, 60, 0.5, 1.5), t(1, 6, 61)],
        |tp, ids| tp.layer_norm(ids[0], ids[1], ids[2], 1e-3),
    );
}

#[test]
fn fused_layer_norm_forward_matches_composite() {
    // Same normalisation as grad_layer_norm_composite's composed graph,
    // with unit gain and zero shift: values must agree.
    let x = t(1, 6, 53);
    let mut tp = Tape::new();
    let xid = tp.leaf(x.clone());
    let gamma = tp.leaf(Tensor::full(1, 6, 1.0));
    let beta = tp.leaf(Tensor::zeros(1, 6));
    let y = tp.layer_norm(xid, gamma, beta, 1e-3);
    let v = tp.value(y);
    let mean: f32 = x.data.iter().sum::<f32>() / 6.0;
    let var: f32 = x.data.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / 6.0;
    for (got, &xi) in v.data.iter().zip(&x.data) {
        let want = (xi - mean) / (var + 1e-3).sqrt();
        assert!((got - want).abs() < 1e-5, "{got} vs {want}");
    }
}

#[test]
fn backward_requires_scalar_loss() {
    let mut tp = Tape::new();
    let x = tp.leaf(t(2, 2, 54));
    let y = tp.relu(x);
    let mut store = ParamStore::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        tp.backward(y, &mut store);
    }));
    assert!(result.is_err(), "non-scalar loss must panic");
}

#[test]
fn unused_inputs_get_no_gradient() {
    let mut tp = Tape::new();
    let used = tp.leaf(t(2, 2, 55));
    let unused = tp.leaf(t(2, 2, 56));
    let loss = tp.mean_all(used);
    let mut store = ParamStore::new();
    tp.backward(loss, &mut store);
    assert!(tp.grad(used).is_some());
    assert!(tp.grad(unused).is_none());
}

#[test]
fn dropout_eval_is_identity_train_masks() {
    let mut rng = StdRng::seed_from_u64(57);
    let x = t(8, 8, 58);
    let mut tp = Tape::new();
    let xid = tp.leaf(x.clone());
    let eval = tp.dropout(xid, 0.5, false, &mut rng);
    assert!(tp.value(eval).max_abs_diff(&x) < 1e-7);
    let train = tp.dropout(xid, 0.5, true, &mut rng);
    let v = tp.value(train);
    let zeros = v.data.iter().filter(|&&z| z == 0.0).count();
    assert!(zeros > 10, "expected roughly half zeroed, got {zeros}/64");
    // Survivors are scaled by 1/keep = 2.
    for (o, i) in v.data.iter().zip(&x.data) {
        assert!(*o == 0.0 || (*o - 2.0 * *i).abs() < 1e-6);
    }
}
