//! Property-based parity suite for the unified kernel layer.
//!
//! The refactor contract: the autograd tape forward, the tape-free
//! `infer` path, and the parallel kernels at every thread count all
//! compute **bit-identical** results, because they share one kernel body
//! per operation and the pool partitions only ever split disjoint output
//! ranges without reordering any accumulation.
//!
//! Since the SIMD backend split the sweep is two-dimensional: every case
//! runs under each available backend (`Scalar` always; `Avx2Fma` when the
//! host supports it) × `NN_THREADS ∈ {1, 2, 4}`. Within one backend
//! results are pinned bit-identical across thread counts and across the
//! tape/infer/kernels routes; the composed layer-norm-statistics route is
//! additionally pinned bit-identical to the fused kernel **on the scalar
//! backend** (the historical contract — under AVX2 the fused statistics
//! use partial-lane sums and are covered by the `check_bench` ULP gate
//! instead). The sparse segment head (`masked_matmul_cols`) is pinned
//! bit-identical to the dense matmul → hard-mask → log-softmax route.
//!
//! Each case draws random shapes (large enough that the pool actually
//! engages), random contents, and — for the CSR graph ops — random ragged
//! adjacency including isolated nodes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use rntrajrec_nn::kernels::backend::{self, Backend};
use rntrajrec_nn::{infer, kernels, pool, GraphCsr, ParamStore, Tape, Tensor};

/// A labelled parity case: (name, tape reference, tape-free recompute).
type ParityCase<'a> = (&'a str, &'a Tensor, Box<dyn Fn() -> Tensor + 'a>);

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Every backend the host can execute: scalar always, AVX2+FMA when
/// supported (with a visible notice when it is not, so a CI log shows
/// the sweep was narrowed rather than silently passing).
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    if backend::is_supported(Backend::Avx2Fma) {
        v.push(Backend::Avx2Fma);
    } else {
        eprintln!("NOTICE: host lacks AVX2+FMA; backend sweep covers scalar only");
    }
    v
}

fn tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    // Mix in exact zeros so the matmul zero-skip path is exercised.
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen::<f32>() < 0.05 {
                0.0
            } else {
                rng.gen_range(-1.5f32..1.5)
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Random ragged CSR: degrees 0..=6 per node (degree 0 without self-loops
/// leaves genuinely empty segments — the isolated-node edge case).
fn random_csr(rng: &mut StdRng, n: usize, self_loops: bool) -> Arc<GraphCsr> {
    let lists: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let deg = rng.gen_range(0usize..=6);
            (0..deg).map(|_| rng.gen_range(0..n)).collect()
        })
        .collect();
    Arc::new(GraphCsr::from_neighbor_lists(&lists, self_loops))
}

/// Run `f` once per sweep entry and assert every run equals the reference
/// bit-for-bit.
fn assert_thread_invariant(label: &str, reference: &Tensor, f: impl Fn() -> Tensor) {
    for threads in THREAD_SWEEP {
        pool::set_num_threads(threads);
        let got = f();
        assert_eq!(
            got.shape(),
            reference.shape(),
            "{label}: shape @ t={threads}"
        );
        assert_eq!(
            got.data, reference.data,
            "{label}: not bit-identical @ t={threads}"
        );
    }
    pool::set_num_threads(1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Matmul family: tape forward ≡ infer ≡ kernels at 1/2/4 threads,
    /// under every available backend (scalar and AVX2 each deterministic
    /// within themselves).
    #[test]
    fn matmul_family_parity(r in 1usize..96, k in 1usize..64, c in 1usize..96, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor(&mut rng, r, k);
        let b = tensor(&mut rng, k, c);
        let bt = tensor(&mut rng, c, k);
        let at = tensor(&mut rng, k, r);

        for bk in backends() {
            backend::with_backend(bk, || {
                let name = bk.name();
                pool::set_num_threads(1);
                let mut tape = Tape::new();
                let na = tape.leaf(a.clone());
                let nb = tape.leaf(b.clone());
                let nbt = tape.leaf(bt.clone());
                let mm_node = tape.matmul(na, nb);
                let nt_node = tape.matmul_nt(na, nbt);
                let mm = tape.value(mm_node).clone();
                let nt = tape.value(nt_node).clone();
                let tn = kernels::matmul_tn(&at, &b);

                assert_eq!(infer::matmul(&a, &b).data, mm.data, "{name}: matmul infer≡tape");
                assert_eq!(infer::matmul_nt(&a, &bt).data, nt.data, "{name}: nt infer≡tape");
                assert_thread_invariant("matmul", &mm, || kernels::matmul(&a, &b));
                assert_thread_invariant("matmul_nt", &nt, || kernels::matmul_nt(&a, &bt));
                assert_thread_invariant("matmul_tn", &tn, || kernels::matmul_tn(&at, &b));
            });
        }
    }

    /// Element-wise maps, broadcasts, softmax, gathers and layer-norm
    /// statistics.
    #[test]
    fn rowwise_kernels_parity(r in 1usize..80, c in 1usize..80, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor(&mut rng, r, c);
        let b = tensor(&mut rng, r, c);
        let v = tensor(&mut rng, 1, c);
        let cv = tensor(&mut rng, r, 1);
        let gamma = tensor(&mut rng, 1, c);
        let beta = tensor(&mut rng, 1, c);
        let idx: Vec<usize> = (0..2 * r).map(|i| (i * 7) % r).collect();

        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                let mut tape = Tape::new();
                let na = tape.leaf(a.clone());
                let nb = tape.leaf(b.clone());
                let nv = tape.leaf(v.clone());
                let ncv = tape.leaf(cv.clone());
                let n_add = tape.add(na, nb);
                let n_mul = tape.mul(na, nb);
                let n_sig = tape.sigmoid(na);
                let n_tanh = tape.tanh(na);
                let n_lrelu = tape.leaky_relu(na, 0.2);
                let n_arow = tape.add_rowvec(na, nv);
                let n_mcol = tape.mul_colvec(na, ncv);
                let n_smax = tape.softmax_rows(na);
                let n_lsmax = tape.log_softmax_rows(na);
                let n_gather = tape.gather_rows(na, &idx);

                let cases: Vec<ParityCase> = vec![
                    ("add", tape.value(n_add), Box::new(|| infer::add(&a, &b))),
                    ("mul", tape.value(n_mul), Box::new(|| infer::mul(&a, &b))),
                    ("sigmoid", tape.value(n_sig), Box::new(|| infer::sigmoid(&a))),
                    ("tanh", tape.value(n_tanh), Box::new(|| infer::tanh(&a))),
                    ("leaky_relu", tape.value(n_lrelu), Box::new(|| infer::leaky_relu(&a, 0.2))),
                    ("add_rowvec", tape.value(n_arow), Box::new(|| infer::add_rowvec(&a, &v))),
                    ("mul_colvec", tape.value(n_mcol), Box::new(|| infer::mul_colvec(&a, &cv))),
                    ("softmax_rows", tape.value(n_smax), Box::new(|| infer::softmax_rows(&a))),
                    ("log_softmax_rows", tape.value(n_lsmax), Box::new(|| infer::log_softmax_rows(&a))),
                    ("gather_rows", tape.value(n_gather), Box::new(|| infer::gather_rows(&a, &idx))),
                ];
                for (label, reference, f) in &cases {
                    assert_thread_invariant(label, reference, f);
                }

                match bk {
                    Backend::Scalar => {
                        // Layer-norm statistics: on the scalar backend the
                        // fused kernel must match the composed op-by-op
                        // route bit-for-bit, at every thread count.
                        pool::set_num_threads(1);
                        let ones = Tensor::full(c, 1, 1.0);
                        let mu = infer::scale(&infer::matmul(&a, &ones), 1.0 / c as f32);
                        let centered = infer::add_colvec(&a, &infer::scale(&mu, -1.0));
                        let var = infer::add_const(
                            &infer::scale(
                                &infer::matmul(&infer::mul(&centered, &centered), &ones),
                                1.0 / c as f32,
                            ),
                            1e-5,
                        );
                        let inv = infer::recip(&infer::sqrt(&var));
                        for threads in THREAD_SWEEP {
                            pool::set_num_threads(threads);
                            let (m, s) = kernels::row_norm_stats(&a, 1e-5);
                            assert_eq!(m.data, mu.data, "mean not bit-identical @ t={threads}");
                            assert_eq!(s.data, inv.data, "inv_std not bit-identical @ t={threads}");
                        }
                        pool::set_num_threads(1);

                        // Fused layer norm ≡ the composed primitive route,
                        // and the tape's fused op matches both.
                        let norm_ref = infer::add_rowvec(
                            &infer::mul_rowvec(&infer::mul_colvec(&centered, &inv), &gamma),
                            &beta,
                        );
                        let mut ln_tape = Tape::new();
                        let (lx, lg, lb) = (
                            ln_tape.leaf(a.clone()),
                            ln_tape.leaf(gamma.clone()),
                            ln_tape.leaf(beta.clone()),
                        );
                        let ln_node = ln_tape.layer_norm(lx, lg, lb, 1e-5);
                        assert_eq!(ln_tape.value(ln_node).data, norm_ref.data);
                        assert_thread_invariant("layer_norm", &norm_ref, || {
                            kernels::layer_norm(&a, &gamma, &beta, 1e-5)
                        });
                    }
                    Backend::Avx2Fma => {
                        // Under AVX2 the fused statistics use partial-lane
                        // sums (the composed route's rounding differs; the
                        // cross-backend drift is gated in `check_bench`),
                        // but the kernel must still be self-deterministic
                        // at any thread count.
                        pool::set_num_threads(1);
                        let (m1, s1) = kernels::row_norm_stats(&a, 1e-5);
                        let ln1 = kernels::layer_norm(&a, &gamma, &beta, 1e-5);
                        for threads in THREAD_SWEEP {
                            pool::set_num_threads(threads);
                            let (m, s) = kernels::row_norm_stats(&a, 1e-5);
                            assert_eq!(m.data, m1.data, "avx2 mean drift @ t={threads}");
                            assert_eq!(s.data, s1.data, "avx2 inv_std drift @ t={threads}");
                            assert_eq!(
                                kernels::layer_norm(&a, &gamma, &beta, 1e-5).data,
                                ln1.data,
                                "avx2 layer_norm drift @ t={threads}"
                            );
                        }
                        pool::set_num_threads(1);
                    }
                }
            });
        }
    }

    /// The fused mask+log-softmax epilogue ≡ dense mask build + `add` +
    /// `log_softmax_rows`, over random sparse masks (absent rows, empty
    /// entry lists, duplicate entries) at every thread count × backend.
    #[test]
    fn masked_log_softmax_parity(r in 1usize..40, c in 1usize..96, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor(&mut rng, r, c);
        let entries: Vec<Option<Vec<(usize, f32)>>> = (0..r)
            .map(|_| {
                rng.gen::<f32>().lt(&0.6).then(|| {
                    let n = rng.gen_range(0usize..=5);
                    (0..n)
                        .map(|_| (rng.gen_range(0..c), rng.gen_range(-3.0f32..0.5)))
                        .collect()
                })
            })
            .collect();
        let masks: Vec<Option<kernels::SparseLogMask>> = entries
            .iter()
            .map(|e| {
                e.as_deref().map(|entries| kernels::SparseLogMask {
                    default: -30.0,
                    entries,
                })
            })
            .collect();

        // Composed reference: dense mask rows built by overwrites.
        let mut mask_dense = Tensor::zeros(r, c);
        for (row, e) in entries.iter().enumerate() {
            if let Some(e) = e {
                let dense = &mut mask_dense.data[row * c..(row + 1) * c];
                dense.fill(-30.0);
                for &(col, lw) in e {
                    dense[col] = lw;
                }
            }
        }
        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                let want = infer::log_softmax_rows(&infer::add(&a, &mask_dense));
                assert_thread_invariant("masked_log_softmax_rows", &want, || {
                    kernels::masked_log_softmax_rows(&a, &masks)
                });
            });
        }
    }

    /// The sparse segment head ≡ the dense route under a *hard* mask
    /// (`-∞` on masked-out columns): matmul → `add_rowvec` → add mask →
    /// `log_softmax_rows`, bit-identical at every thread count × backend
    /// (the scalar leg is the pinned reference contract; AVX2 holds too
    /// because the per-column chains match the dense kernel's).
    #[test]
    fn masked_matmul_cols_equals_hard_masked_dense_route(
        r in 1usize..24, k in 1usize..32, c in 1usize..96, seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor(&mut rng, r, k);
        let w = tensor(&mut rng, k, c);
        let bias = tensor(&mut rng, 1, c);
        let entries: Vec<Option<Vec<(usize, f32)>>> = (0..r)
            .map(|_| {
                rng.gen::<f32>().lt(&0.7).then(|| {
                    let n = rng.gen_range(0usize..=6);
                    (0..n)
                        .map(|_| (rng.gen_range(0..c), rng.gen_range(-3.0f32..0.5)))
                        .collect()
                })
            })
            .collect();
        let masks: Vec<Option<kernels::SparseLogMask>> = entries
            .iter()
            .map(|e| {
                e.as_deref().map(|entries| kernels::SparseLogMask {
                    default: -2.0,
                    entries,
                })
            })
            .collect();

        // Hard dense mask: -∞ outside the allowed set for sparse rows,
        // the soft default for empty-entry rows, 0 for maskless rows.
        let mut mask_dense = Tensor::zeros(r, c);
        for (row, e) in entries.iter().enumerate() {
            if let Some(e) = e {
                let dense = &mut mask_dense.data[row * c..(row + 1) * c];
                dense.fill(if e.is_empty() { -2.0 } else { f32::NEG_INFINITY });
                for &(col, lw) in e {
                    dense[col] = lw;
                }
            }
        }
        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                let logits = infer::add_rowvec(&infer::matmul(&a, &w), &bias);
                let want = infer::log_softmax_rows(&infer::add(&logits, &mask_dense));
                assert_thread_invariant("masked_matmul_cols", &want, || {
                    kernels::masked_matmul_cols(&a, &w, &bias, &masks)
                });
            });
        }
    }

    /// The segmented decoder-fusion kernels (stacked attention
    /// pre-activation, per-segment softmax, per-segment context product)
    /// ≡ the per-member `infer` ops over random ragged segments (including
    /// empty members), at every thread count × backend.
    #[test]
    fn segmented_decoder_kernels_parity(nseg in 1usize..10, d in 1usize..24, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lens: Vec<usize> = (0..nseg).map(|_| rng.gen_range(0usize..12)).collect();
        let total: usize = lens.iter().sum();
        let mut segs = Vec::with_capacity(nseg);
        let mut off = 0;
        for &l in &lens {
            segs.push(off..off + l);
            off += l;
        }
        let keys = tensor(&mut rng, total, d);
        let v = tensor(&mut rng, nseg, d);
        let vatt = tensor(&mut rng, 1, d);

        for bk in backends() {
            backend::with_backend(bk, || {
                pool::set_num_threads(1);
                // Per-member reference: each member's own add_rowvec → tanh →
                // matmul_nt → softmax_rows → matmul chain (the sequential
                // decoder's Eq. 14), stacked for comparison.
                let mut pre_ref = Vec::new();
                let mut alpha_ref = Vec::new();
                let mut ctx_ref = Vec::new();
                for (s, seg) in segs.iter().enumerate() {
                    let k_i = infer::select_rows(&keys, seg.start, seg.len());
                    let v_i = infer::select_rows(&v, s, 1);
                    let pre_i = infer::add_rowvec(&k_i, &v_i);
                    let t_i = infer::tanh(&pre_i);
                    let mu_i = infer::matmul_nt(&vatt, &t_i);
                    let al_i = infer::softmax_rows(&mu_i);
                    let ctx_i = infer::matmul(&al_i, &k_i);
                    pre_ref.extend_from_slice(&pre_i.data);
                    alpha_ref.extend_from_slice(&al_i.data);
                    ctx_ref.extend_from_slice(&ctx_i.data);
                }
                let pre_ref = Tensor::from_vec(total, d, pre_ref);
                let alpha_ref = Tensor::from_vec(1, total, alpha_ref);
                let ctx_ref = Tensor::from_vec(nseg, d, ctx_ref);

                assert_thread_invariant("segments_add_rowvec", &pre_ref, || {
                    kernels::segments_add_rowvec(&keys, &v, &segs)
                });
                let t_all = infer::tanh(&pre_ref);
                let mu_all = infer::matmul_nt(&vatt, &t_all);
                assert_thread_invariant("softmax_segments", &alpha_ref, || {
                    kernels::softmax_segments(&mu_all, &lens)
                });
                assert_thread_invariant("segmented_attn_context", &ctx_ref, || {
                    kernels::segmented_attn_context(&alpha_ref, &keys, &segs)
                });
            });
        }
    }

    /// CSR graph-attention ops on random ragged graphs (including isolated
    /// nodes and empty segments).
    #[test]
    fn graph_kernels_parity(n in 1usize..120, d in 1usize..32, self_loops in 0u32..2, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let csr = random_csr(&mut rng, n, self_loops == 1);
        let src = tensor(&mut rng, n, 1);
        let dst = tensor(&mut rng, n, 1);
        let feats = tensor(&mut rng, n, d);

        for bk in backends() {
            backend::with_backend(bk, || {
                let name = bk.name();
                pool::set_num_threads(1);
                let mut tape = Tape::new();
                let ns = tape.leaf(src.clone());
                let nd = tape.leaf(dst.clone());
                let nf = tape.leaf(feats.clone());
                let scores_n = tape.edge_scores(ns, nd, &csr);
                let alphas_n = tape.segmented_softmax(scores_n, &csr);
                let agg_n = tape.neighbor_sum(alphas_n, nf, &csr);
                let scores = tape.value(scores_n).clone();
                let alphas = tape.value(alphas_n).clone();
                let agg = tape.value(agg_n).clone();

                assert_eq!(infer::edge_scores(&src, &dst, &csr).data, scores.data, "{name}");
                assert_eq!(infer::segmented_softmax(&scores, &csr).data, alphas.data, "{name}");
                assert_eq!(infer::neighbor_sum(&alphas, &feats, &csr).data, agg.data, "{name}");

                assert_thread_invariant("edge_scores", &scores, || kernels::edge_scores(&src, &dst, &csr));
                assert_thread_invariant("segmented_softmax", &alphas, || {
                    kernels::segmented_softmax(&scores, &csr)
                });
                assert_thread_invariant("neighbor_sum", &agg, || {
                    kernels::neighbor_sum(&alphas, &feats, &csr)
                });
            });
        }
    }

    /// Training parity: a full tape forward + backward produces identical
    /// input-side gradients at every thread count (the backward matmuls
    /// route through the same kernels), under every backend.
    #[test]
    fn backward_gradients_thread_invariant(r in 2usize..48, k in 2usize..32, c in 2usize..48, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor(&mut rng, r, k);
        let b = tensor(&mut rng, k, c);
        for bk in backends() {
            backend::with_backend(bk, || {
                let mut reference: Option<(Vec<f32>, Vec<f32>)> = None;
                for threads in THREAD_SWEEP {
                    pool::set_num_threads(threads);
                    let mut tape = Tape::new();
                    let na = tape.leaf(a.clone());
                    let nb = tape.leaf(b.clone());
                    let y = tape.matmul(na, nb);
                    let y = tape.tanh(y);
                    let loss = tape.mean_all(y);
                    let mut store = ParamStore::new();
                    tape.backward(loss, &mut store);
                    let ga = tape.grad(na).unwrap().to_vec();
                    let gb = tape.grad(nb).unwrap().to_vec();
                    match &reference {
                        None => reference = Some((ga, gb)),
                        Some((ra, rb)) => {
                            assert_eq!(ra, &ga, "grad A diverged @ t={threads}");
                            assert_eq!(rb, &gb, "grad B diverged @ t={threads}");
                        }
                    }
                }
                pool::set_num_threads(1);
            });
        }
    }
}
