//! The end-to-end recovery model and the method registry.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rntrajrec_geo::GridSpec;
use rntrajrec_models::{
    BatchMember, DecodeHooks, Decoder, DecoderConfig, GnnBackbone, GrownMember, GtsEncoder,
    MTrajRecEncoder, NeuTrajEncoder, RnTrajRecConfig, RnTrajRecEncoder, SampleInput, SegmentHead,
    StepOut, T2vecEncoder, T3sEncoder, TrajEncoder, TransformerBaseline,
};
use rntrajrec_nn::{NodeId, ParamStore, Tape, Tensor};
use rntrajrec_roadnet::RoadNetwork;

/// Every method of the paper's comparison (Tables III/IV) plus the
/// RNTrajRec ablations (Table V) and parameter variants (Fig. 6/7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodSpec {
    /// Two-stage: linear interpolation + HMM (no learning).
    LinearHmm,
    /// Two-stage: seq2seq position regression + Kalman + HMM.
    DhtrHmm,
    T2vec,
    Transformer,
    MTrajRec,
    T3s,
    Gts,
    NeuTraj,
    RnTrajRec,
    /// Table V ablations.
    RnTrajRecWoGrl,
    RnTrajRecWoGf,
    RnTrajRecWoGat,
    RnTrajRecWoGn,
    RnTrajRecWoGcl,
    /// Extra ablation: decoder constraint mask disabled.
    RnTrajRecNoMask,
    /// Fig. 7(a): road-network representation backbone.
    RnTrajRecBackbone(GnnBackbone),
    /// Fig. 7(a): plain GNN over segment-ID embeddings (no grid GRU).
    RnTrajRecPlainGnn(GnnBackbone),
    /// Fig. 6 / Fig. 7(b): number of GPSFormer blocks.
    RnTrajRecN(usize),
    /// Fig. 6: RNTrajRec* (w/o GRL) with N blocks.
    RnTrajRecWoGrlN(usize),
}

impl MethodSpec {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            MethodSpec::LinearHmm => "Linear + HMM".into(),
            MethodSpec::DhtrHmm => "DHTR + HMM".into(),
            MethodSpec::T2vec => "t2vec + Decoder".into(),
            MethodSpec::Transformer => "Transformer + Decoder".into(),
            MethodSpec::MTrajRec => "MTrajRec".into(),
            MethodSpec::T3s => "T3S + Decoder".into(),
            MethodSpec::Gts => "GTS + Decoder".into(),
            MethodSpec::NeuTraj => "NeuTraj + Decoder".into(),
            MethodSpec::RnTrajRec => "RNTrajRec (Ours)".into(),
            MethodSpec::RnTrajRecWoGrl => "w/o GRL".into(),
            MethodSpec::RnTrajRecWoGf => "w/o GF".into(),
            MethodSpec::RnTrajRecWoGat => "w/o GAT".into(),
            MethodSpec::RnTrajRecWoGn => "w/o GN".into(),
            MethodSpec::RnTrajRecWoGcl => "w/o GCL".into(),
            MethodSpec::RnTrajRecNoMask => "w/o Mask".into(),
            MethodSpec::RnTrajRecBackbone(b) => format!("GridGNN->{b:?}"),
            MethodSpec::RnTrajRecPlainGnn(b) => format!("{b:?} (no grid)"),
            MethodSpec::RnTrajRecN(n) => format!("RNTrajRec (N={n})"),
            MethodSpec::RnTrajRecWoGrlN(n) => format!("RNTrajRec* (N={n})"),
        }
    }

    /// The nine Table III rows, in the paper's order.
    pub fn table3() -> Vec<MethodSpec> {
        vec![
            MethodSpec::LinearHmm,
            MethodSpec::DhtrHmm,
            MethodSpec::T2vec,
            MethodSpec::Transformer,
            MethodSpec::MTrajRec,
            MethodSpec::T3s,
            MethodSpec::Gts,
            MethodSpec::NeuTraj,
            MethodSpec::RnTrajRec,
        ]
    }

    /// The Table V ablation rows.
    pub fn table5() -> Vec<MethodSpec> {
        vec![
            MethodSpec::RnTrajRecWoGrl,
            MethodSpec::RnTrajRecWoGf,
            MethodSpec::RnTrajRecWoGat,
            MethodSpec::RnTrajRecWoGn,
            MethodSpec::RnTrajRecWoGcl,
            MethodSpec::RnTrajRec,
        ]
    }

    /// Is this a learned, end-to-end "A + Decoder" method?
    pub fn is_end_to_end(&self) -> bool {
        !matches!(self, MethodSpec::LinearHmm | MethodSpec::DhtrHmm)
    }
}

/// Per-member recovered `(segment, rate)` paths plus a per-member
/// "cancelled mid-decode" flag, as returned by
/// [`EndToEnd::infer_predict_batch_ctl`].
pub type BatchDecodeOutcome = (Vec<Vec<(usize, f32)>>, Vec<bool>);

/// An encoder + the shared decoder + its parameters and loss weights.
pub struct EndToEnd {
    pub store: ParamStore,
    pub encoder: Box<dyn TrajEncoder>,
    pub decoder: Decoder,
    /// λ₁ (rate loss weight; paper: 10).
    pub lambda1: f32,
    /// λ₂ (graph classification loss weight; paper: 0.1; 0 disables).
    pub lambda2: f32,
    pub name: String,
}

impl EndToEnd {
    /// Build the model for an end-to-end [`MethodSpec`].
    ///
    /// # Panics
    /// Panics for the two-stage specs (`LinearHmm`, `DhtrHmm`) — those are
    /// handled by [`crate::twostage`].
    pub fn build(
        spec: &MethodSpec,
        net: &RoadNetwork,
        grid: &GridSpec,
        dim: usize,
        seed: u64,
    ) -> Self {
        assert!(spec.is_end_to_end(), "{spec:?} is a two-stage method");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let cells = grid.num_cells();
        let heads = if dim.is_multiple_of(4) { 4 } else { 2 };
        let mut lambda2 = 0.1;
        let mut use_mask = true;

        let encoder: Box<dyn TrajEncoder> = match spec {
            MethodSpec::T2vec => {
                lambda2 = 0.0;
                Box::new(T2vecEncoder::new(&mut store, &mut rng, cells, dim))
            }
            MethodSpec::Transformer => {
                lambda2 = 0.0;
                Box::new(TransformerBaseline::new(
                    &mut store, &mut rng, cells, dim, 2, heads,
                ))
            }
            MethodSpec::MTrajRec => {
                lambda2 = 0.0;
                Box::new(MTrajRecEncoder::new(&mut store, &mut rng, cells, dim))
            }
            MethodSpec::T3s => {
                lambda2 = 0.0;
                Box::new(T3sEncoder::new(&mut store, &mut rng, cells, dim, heads))
            }
            MethodSpec::Gts => {
                lambda2 = 0.0;
                Box::new(GtsEncoder::new(&mut store, &mut rng, net, dim))
            }
            MethodSpec::NeuTraj => {
                lambda2 = 0.0;
                Box::new(NeuTrajEncoder::new(
                    &mut store,
                    &mut rng,
                    grid.cols as usize,
                    grid.rows as usize,
                    dim,
                ))
            }
            MethodSpec::RnTrajRec
            | MethodSpec::RnTrajRecWoGrl
            | MethodSpec::RnTrajRecWoGf
            | MethodSpec::RnTrajRecWoGat
            | MethodSpec::RnTrajRecWoGn
            | MethodSpec::RnTrajRecWoGcl
            | MethodSpec::RnTrajRecNoMask
            | MethodSpec::RnTrajRecBackbone(_)
            | MethodSpec::RnTrajRecPlainGnn(_)
            | MethodSpec::RnTrajRecN(_)
            | MethodSpec::RnTrajRecWoGrlN(_) => {
                let mut cfg = RnTrajRecConfig::small(dim);
                match spec {
                    MethodSpec::RnTrajRecWoGrl => cfg.use_grl = false,
                    MethodSpec::RnTrajRecWoGf => cfg.grl.gated_fusion = false,
                    MethodSpec::RnTrajRecWoGat => cfg.grl.gat = false,
                    MethodSpec::RnTrajRecWoGn => cfg.grl.graph_norm = false,
                    MethodSpec::RnTrajRecWoGcl => lambda2 = 0.0,
                    MethodSpec::RnTrajRecNoMask => use_mask = false,
                    MethodSpec::RnTrajRecBackbone(b) => cfg.gridgnn.backbone = *b,
                    MethodSpec::RnTrajRecPlainGnn(b) => {
                        cfg.gridgnn.backbone = *b;
                        cfg.gridgnn.use_grid = false;
                    }
                    MethodSpec::RnTrajRecN(n) => cfg.n_blocks = *n,
                    MethodSpec::RnTrajRecWoGrlN(n) => {
                        cfg.n_blocks = *n;
                        cfg.use_grl = false;
                    }
                    _ => {}
                }
                if matches!(
                    spec,
                    MethodSpec::RnTrajRecWoGrl | MethodSpec::RnTrajRecWoGrlN(_)
                ) {
                    lambda2 = 0.0; // no graph output to classify
                }
                Box::new(RnTrajRecEncoder::new(&mut store, &mut rng, net, grid, cfg))
            }
            MethodSpec::LinearHmm | MethodSpec::DhtrHmm => unreachable!(),
        };
        let decoder = Decoder::new(
            &mut store,
            &mut rng,
            DecoderConfig {
                dim,
                num_segments: net.num_segments(),
                use_mask,
            },
        );
        EndToEnd {
            store,
            encoder,
            decoder,
            lambda1: 10.0,
            lambda2,
            name: spec.label(),
        }
    }

    /// Number of learnable scalars (Fig. 6's "#Para").
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Total batch loss `Σ_samples (L_id + λ₁·L_rate) + λ₂·L_enc` on the
    /// tape (full teacher forcing).
    pub fn batch_loss(&self, tape: &mut Tape, batch: &[&SampleInput], rng: &mut StdRng) -> NodeId {
        self.batch_loss_scheduled(tape, batch, 1.0, rng)
    }

    /// Batch loss with scheduled sampling: each decoder step conditions on
    /// the ground truth with probability `tf_prob`, otherwise on the
    /// model's own prediction (exposure-bias mitigation; observed steps
    /// always use the truth — they are given in the input).
    pub fn batch_loss_scheduled(
        &self,
        tape: &mut Tape,
        batch: &[&SampleInput],
        tf_prob: f32,
        rng: &mut StdRng,
    ) -> NodeId {
        use rand::Rng;
        let enc = self.encoder.encode(tape, &self.store, batch, true, rng);
        let mut id_terms = Vec::new();
        let mut rate_terms = Vec::new();
        for (out, sample) in enc.outputs.iter().zip(batch) {
            let observed: std::collections::HashSet<usize> =
                sample.obs_step.iter().copied().collect();
            let run = self
                .decoder
                .run_scheduled(tape, &self.store, out, sample, |j| {
                    observed.contains(&j) || tf_prob >= 1.0 || rng.gen::<f32>() < tf_prob
                });
            for (j, (&lp, &rate)) in run.logps.iter().zip(&run.rates).enumerate() {
                let picked = tape.select_cols(lp, sample.target_segs[j], 1);
                id_terms.push(tape.scale(picked, -1.0));
                let target = tape.leaf(rntrajrec_nn::Tensor::scalar(sample.target_rates[j]));
                let diff = tape.sub(rate, target);
                rate_terms.push(tape.mul(diff, diff));
            }
        }
        let id_all = tape.concat_rows(&id_terms);
        let l_id = tape.mean_all(id_all);
        let rate_all = tape.concat_rows(&rate_terms);
        let l_rate = tape.mean_all(rate_all);
        let l_rate = tape.scale(l_rate, self.lambda1);
        let mut total = tape.add(l_id, l_rate);
        if self.lambda2 > 0.0 {
            if let Some(aux) = enc.aux_loss {
                let aux = tape.scale(aux, self.lambda2);
                total = tape.add(total, aux);
            }
        }
        total
    }

    /// Greedy inference: predicted `(segment, rate)` per target step.
    pub fn predict(&self, input: &SampleInput, rng: &mut StdRng) -> Vec<(usize, f32)> {
        let mut tape = Tape::new();
        let enc = self
            .encoder
            .encode(&mut tape, &self.store, &[input], false, rng);
        let run = self
            .decoder
            .run(&mut tape, &self.store, &enc.outputs[0], input, false);
        run.preds
            .iter()
            .zip(&run.rates)
            .map(|(&seg, &rate)| (seg, tape.value(rate).item()))
            .collect()
    }

    /// Does this model offer the tape-free inference path?
    pub fn supports_infer(&self) -> bool {
        self.encoder.has_infer()
    }

    /// Precompute the input-independent road representation (`X_road`) for
    /// serving; `None` for encoders without a tape-free path.
    pub fn precompute_road(&self) -> Option<Tensor> {
        self.encoder.precompute_road(&self.store)
    }

    /// Tape-free greedy inference: the forward-only twin of
    /// [`EndToEnd::predict`] with no autograd allocation. `road` is the
    /// cached [`EndToEnd::precompute_road`] output (pass `None` to
    /// recompute per call). Returns `None` when the encoder has no
    /// tape-free path — callers fall back to [`EndToEnd::predict`].
    pub fn infer_predict(
        &self,
        input: &SampleInput,
        road: Option<&Tensor>,
    ) -> Option<Vec<(usize, f32)>> {
        self.infer_predict_with(input, road, SegmentHead::Sparse)
    }

    /// [`EndToEnd::infer_predict`] with an explicit decoder
    /// [`SegmentHead`] (dense reference, sparse default, or quantized).
    pub fn infer_predict_with(
        &self,
        input: &SampleInput,
        road: Option<&Tensor>,
        head: SegmentHead<'_>,
    ) -> Option<Vec<(usize, f32)>> {
        let enc = self.encoder.infer_one(&self.store, input, road)?;
        Some(
            self.decoder
                .infer_run_with(&self.store, &enc.per_point, &enc.traj, input, head),
        )
    }

    /// Tape-free **batched** greedy inference, fused end to end: the
    /// encoder runs one stacked pass over the whole batch
    /// ([`rntrajrec_models::TrajEncoder::infer_batch`] — RNTrajRec stacks
    /// every member's per-point rows into one matmul per projection while
    /// GraphNorm statistics stay scoped per member via segmented kernels,
    /// so cross-request batching cannot change results), then the fused
    /// decoder ([`Decoder::recover_batch_infer`]) recovers all members in
    /// lock-step — one stacked matmul per head per decode step instead of
    /// one per member. Results are bit-identical to calling
    /// [`EndToEnd::infer_predict`] per input, for any batch composition.
    /// Returns `None` when the encoder has no tape-free path.
    pub fn infer_predict_batch(
        &self,
        inputs: &[&SampleInput],
        road: Option<&Tensor>,
    ) -> Option<Vec<Vec<(usize, f32)>>> {
        self.infer_predict_batch_with(inputs, road, SegmentHead::Sparse)
    }

    /// [`EndToEnd::infer_predict_batch`] with an explicit decoder
    /// [`SegmentHead`].
    pub fn infer_predict_batch_with(
        &self,
        inputs: &[&SampleInput],
        road: Option<&Tensor>,
        head: SegmentHead<'_>,
    ) -> Option<Vec<Vec<(usize, f32)>>> {
        self.infer_predict_batch_ctl(inputs, road, head, &mut |_, _| false)
            .map(|(paths, _)| paths)
    }

    /// [`EndToEnd::infer_predict_batch_with`] with **mid-decode
    /// cancellation**: `cancel(member, step)` is consulted before each
    /// lock-step decode step, and members it cuts are retired through the
    /// decoder's state-compaction path
    /// ([`Decoder::recover_batch_infer_ctl`]) — survivors stay
    /// bit-identical to an uncancelled run. The serving engine uses this
    /// to stop decoding for requests whose deadline expired inside a
    /// fused batch. Returns per-member paths plus a cancelled flag.
    pub fn infer_predict_batch_ctl(
        &self,
        inputs: &[&SampleInput],
        road: Option<&Tensor>,
        head: SegmentHead<'_>,
        cancel: &mut dyn FnMut(usize, usize) -> bool,
    ) -> Option<BatchDecodeOutcome> {
        use std::sync::{Arc, OnceLock};
        static ENCODER_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
        static DECODER_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();

        let enc_started = std::time::Instant::now();
        let encs = {
            let _span = rntrajrec_obs::span("encoder.fused");
            self.encoder.infer_batch(&self.store, inputs, road)?
        };
        ENCODER_SECONDS
            .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("encoder"))
            .observe_duration(enc_started.elapsed());

        let members: Vec<BatchMember> = encs
            .iter()
            .zip(inputs)
            .map(|(enc, &sample)| BatchMember {
                per_point: &enc.per_point,
                traj: &enc.traj,
                sample,
            })
            .collect();

        let dec_started = std::time::Instant::now();
        let decoded = {
            let _span = rntrajrec_obs::span("decoder.fused");
            self.decoder
                .recover_batch_infer_ctl(&self.store, &members, head, cancel)
        };
        DECODER_SECONDS
            .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("decoder"))
            .observe_duration(dec_started.elapsed());
        Some(decoded)
    }

    /// The continuous-batching / streaming variant of
    /// [`EndToEnd::infer_predict_batch_ctl`]: between decode ticks the
    /// `admit` hook may hand over freshly dequeued requests — their
    /// encoder pass runs *now* (fused across co-arrivals, or solo) and
    /// the results are spliced into the live `[B, d]` decode stack
    /// ([`Decoder::recover_batch_infer_stream`]). Every decoded step is
    /// delivered through `on_step` as it is produced.
    ///
    /// Incumbent members are bit-identical to a closed batch whether or
    /// not anyone is admitted, and an admitted member is bit-identical
    /// to the closed batch it would have led — the same invariant the
    /// fused kernels already guarantee for arbitrary batch composition.
    ///
    /// Returns outcomes indexed with the initial members first, then
    /// admitted members in admission order. `None` when the encoder has
    /// no tape-free path (then nothing was consumed from `admit`).
    pub fn infer_predict_batch_stream(
        &self,
        inputs: &[&SampleInput],
        road: Option<&Tensor>,
        head: SegmentHead<'_>,
        ctl: &mut StreamCtl<'_>,
    ) -> Option<BatchDecodeOutcome> {
        use std::sync::{Arc, OnceLock};
        static ENCODER_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
        static DECODER_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();

        if !self.encoder.has_infer() {
            return None;
        }
        let enc_started = std::time::Instant::now();
        let encs = {
            let _span = rntrajrec_obs::span("encoder.fused");
            self.encoder.infer_batch(&self.store, inputs, road)?
        };
        ENCODER_SECONDS
            .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("encoder"))
            .observe_duration(enc_started.elapsed());

        let members: Vec<BatchMember> = encs
            .iter()
            .zip(inputs)
            .map(|(enc, &sample)| BatchMember {
                per_point: &enc.per_point,
                traj: &enc.traj,
                sample,
            })
            .collect();

        let mut admissions: u32 = 0;
        let mut admit = |live: usize| -> Vec<GrownMember> {
            let newcomers = (ctl.admit)(live);
            if newcomers.is_empty() {
                return Vec::new();
            }
            // The newcomer's encoder pass, fused across co-arrivals. One
            // span per admission event (rendered `decoder.admit[k]`).
            let _span = rntrajrec_obs::span_indexed("decoder.admit", admissions);
            admissions += 1;
            let started = std::time::Instant::now();
            let refs: Vec<&SampleInput> = newcomers.iter().collect();
            let encs = self
                .encoder
                .infer_batch(&self.store, &refs, road)
                .expect("encoder infer path validated at model load");
            ENCODER_SECONDS
                .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("encoder"))
                .observe_duration(started.elapsed());
            encs.into_iter()
                .zip(&newcomers)
                .map(|(enc, sample)| GrownMember {
                    per_point: enc.per_point,
                    traj: enc.traj,
                    target_len: sample.target_len(),
                    masks: sample.masks.clone(),
                })
                .collect()
        };

        let dec_started = std::time::Instant::now();
        let decoded = {
            let _span = rntrajrec_obs::span("decoder.fused");
            self.decoder.recover_batch_infer_stream(
                &self.store,
                &members,
                head,
                &mut DecodeHooks {
                    cancel: ctl.cancel,
                    admit: &mut admit,
                    on_step: ctl.on_step,
                },
            )
        };
        DECODER_SECONDS
            .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("decoder"))
            .observe_duration(dec_started.elapsed());
        Some(decoded)
    }
}

/// Control hooks for [`EndToEnd::infer_predict_batch_stream`]: the
/// model-level twin of [`rntrajrec_models::DecodeHooks`], except `admit`
/// hands over raw [`SampleInput`]s — the model runs their encoder pass
/// before splicing them into the decode.
pub struct StreamCtl<'h> {
    /// `cancel(member, step)` — retire the member before its step runs.
    pub cancel: &'h mut dyn FnMut(usize, usize) -> bool,
    /// Called between decode ticks with the live batch size; returned
    /// requests are encoded and admitted, becoming members
    /// `n, n+1, ...` in admission order.
    pub admit: &'h mut dyn FnMut(usize) -> Vec<SampleInput>,
    /// Observes every decoded step in production order.
    pub on_step: &'h mut dyn FnMut(StepOut),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rntrajrec_models::FeatureExtractor;
    use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    fn fixture() -> (SyntheticCity, Vec<SampleInput>, GridSpec) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 9,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let inputs = (0..3)
            .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
            .collect();
        (city, inputs, grid)
    }

    #[test]
    fn every_end_to_end_method_builds_and_losses() {
        let (city, inputs, grid) = fixture();
        let refs: Vec<&SampleInput> = inputs.iter().collect();
        let mut rng = StdRng::seed_from_u64(1);
        for spec in MethodSpec::table3()
            .into_iter()
            .filter(|s| s.is_end_to_end())
        {
            let model = EndToEnd::build(&spec, &city.net, &grid, 16, 7);
            let mut tape = Tape::new();
            let loss = model.batch_loss(&mut tape, &refs, &mut rng);
            let v = tape.value(loss).item();
            assert!(v.is_finite() && v > 0.0, "{}: loss {v}", model.name);
        }
    }

    #[test]
    fn ablation_variants_build() {
        let (city, inputs, grid) = fixture();
        let refs: Vec<&SampleInput> = inputs.iter().collect();
        let mut rng = StdRng::seed_from_u64(2);
        for spec in MethodSpec::table5() {
            let model = EndToEnd::build(&spec, &city.net, &grid, 16, 7);
            let mut tape = Tape::new();
            let loss = model.batch_loss(&mut tape, &refs[..1], &mut rng);
            assert!(tape.value(loss).item().is_finite(), "{}", model.name);
        }
    }

    #[test]
    fn predictions_have_target_length_and_valid_values() {
        let (city, inputs, grid) = fixture();
        let model = EndToEnd::build(&MethodSpec::MTrajRec, &city.net, &grid, 16, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let preds = model.predict(&inputs[0], &mut rng);
        assert_eq!(preds.len(), inputs[0].target_len());
        for &(seg, rate) in &preds {
            assert!(seg < city.net.num_segments());
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn tape_free_inference_matches_tape_predict() {
        let (city, inputs, grid) = fixture();
        let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
        assert!(model.supports_infer());
        let road = model.precompute_road().expect("X_road precompute");
        let mut rng = StdRng::seed_from_u64(9);
        for input in &inputs {
            let slow = model.predict(input, &mut rng);
            let fast = model.infer_predict(input, Some(&road)).expect("infer path");
            assert_eq!(slow.len(), fast.len());
            for (j, (&(s_seg, s_rate), &(f_seg, f_rate))) in slow.iter().zip(&fast).enumerate() {
                assert_eq!(s_seg, f_seg, "step {j}: segment diverged");
                // Tape-free mirrors the tape op-for-op: bit-identical.
                assert_eq!(s_rate, f_rate, "step {j}: rate not bit-identical");
            }
        }
    }

    #[test]
    fn baselines_fall_back_to_tape_predict() {
        let (city, inputs, grid) = fixture();
        let model = EndToEnd::build(&MethodSpec::MTrajRec, &city.net, &grid, 16, 7);
        assert!(!model.supports_infer());
        assert!(model.precompute_road().is_none());
        assert!(model.infer_predict(&inputs[0], None).is_none());
        assert!(model
            .infer_predict_batch(&[&inputs[0], &inputs[1]], None)
            .is_none());
    }

    #[test]
    fn batched_inference_matches_per_input_bitwise() {
        let (city, inputs, grid) = fixture();
        let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
        let road = model.precompute_road().expect("X_road precompute");
        let refs: Vec<&SampleInput> = inputs.iter().collect();
        let sequential: Vec<Vec<(usize, f32)>> = refs
            .iter()
            .map(|i| model.infer_predict(i, Some(&road)).expect("infer path"))
            .collect();
        let batched = model
            .infer_predict_batch(&refs, Some(&road))
            .expect("infer path");
        assert_eq!(batched, sequential, "fused decode diverged");
        // Empty batch is a no-op.
        assert_eq!(model.infer_predict_batch(&[], Some(&road)), Some(vec![]));
    }

    #[test]
    fn rntrajrec_has_more_params_than_mtrajrec() {
        // Fig. 6: RNTrajRec is the largest model in the comparison.
        let (city, _, grid) = fixture();
        let rn = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
        let mt = EndToEnd::build(&MethodSpec::MTrajRec, &city.net, &grid, 16, 7);
        assert!(rn.num_params() > mt.num_params());
    }

    #[test]
    #[should_panic(expected = "two-stage")]
    fn two_stage_specs_cannot_build_end_to_end() {
        let (city, _, grid) = fixture();
        let _ = EndToEnd::build(&MethodSpec::LinearHmm, &city.net, &grid, 16, 7);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<String> = MethodSpec::table3().iter().map(|s| s.label()).collect();
        labels.extend(MethodSpec::table5().iter().map(|s| s.label()));
        let n = labels.len();
        labels.sort();
        labels.dedup();
        // table5 contains RnTrajRec which is also in table3.
        assert_eq!(labels.len(), n - 1);
    }
}
