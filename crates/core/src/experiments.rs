//! Experiment drivers regenerating every table and figure of Section VI.
//!
//! Everything is parameterised by [`ExperimentScale`] so the same code
//! serves fast unit tests (`quick`) and the benchmark harness
//! (`paper_shape`). See EXPERIMENTS.md for the paper-vs-measured record.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use rntrajrec_geo::GridSpec;
use rntrajrec_mapmatch::HmmConfig;
use rntrajrec_models::{FeatureExtractor, SampleInput};
use rntrajrec_roadnet::RTree;
use rntrajrec_synth::{DatasetConfig, SplitDataset};

use crate::metrics::{sr_at_k, EvalMetrics, MetricsAccumulator};
use crate::model::{EndToEnd, MethodSpec};
use crate::train::{TrainConfig, Trainer};
use crate::twostage::{linear_hmm_predict, DhtrModel};

/// Knobs trading fidelity for runtime.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Trajectories generated per dataset (paper: ~150 000).
    pub num_traj: usize,
    /// Hidden size `d` (paper: 256–512).
    pub dim: usize,
    /// Training epochs (paper: 30).
    pub epochs: usize,
    pub batch: usize,
    /// Cap on evaluated test trajectories.
    pub max_eval: usize,
    pub seed: u64,
    /// Adam learning rate (paper: 1e-3; small-scale runs converge faster
    /// at 3e-3).
    pub lr: f32,
}

impl ExperimentScale {
    /// Minimal settings for unit tests (seconds, not minutes).
    pub fn quick() -> Self {
        Self {
            num_traj: 30,
            dim: 16,
            epochs: 2,
            batch: 4,
            max_eval: 5,
            seed: 7,
            lr: 3e-3,
        }
    }

    /// Bench-harness settings: small absolute scale, paper-shaped results.
    pub fn paper_shape() -> Self {
        Self {
            num_traj: 240,
            dim: 32,
            epochs: 20,
            batch: 8,
            max_eval: 24,
            seed: 7,
            lr: 3e-3,
        }
    }
}

/// One evaluated method: the row of a table plus efficiency data.
#[derive(Debug, Clone, Serialize)]
pub struct MethodResult {
    pub label: String,
    pub recall: f64,
    pub precision: f64,
    pub f1: f64,
    pub accuracy: f64,
    pub mae_m: f64,
    pub rmse_m: f64,
    /// Wall-clock training time, seconds.
    pub train_secs: f64,
    /// Mean inference time per trajectory, milliseconds (Fig. 6 x-axis).
    pub infer_ms: f64,
    /// Learnable scalar count (Fig. 6 bubble size); 0 for Linear+HMM.
    pub num_params: usize,
    /// `(truth, predicted)` segment sequences per test trajectory
    /// (consumed by the SR%k analysis, Fig. 4).
    #[serde(skip)]
    pub sr_cases: Vec<(Vec<usize>, Vec<usize>)>,
}

impl MethodResult {
    pub fn metrics(&self) -> EvalMetrics {
        EvalMetrics {
            recall: self.recall,
            precision: self.precision,
            f1: self.f1,
            accuracy: self.accuracy,
            mae_m: self.mae_m,
            rmse_m: self.rmse_m,
        }
    }
}

impl std::fmt::Display for MethodResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} {:.4}  {:.4}  {:.4}  {:.4}  {:8.2}  {:8.2}",
            self.label,
            self.recall,
            self.precision,
            self.f1,
            self.accuracy,
            self.mae_m,
            self.rmse_m
        )
    }
}

/// A prepared dataset: city, spatial index, grid, extracted features.
pub struct Pipeline {
    pub dataset: SplitDataset,
    pub rtree: RTree,
    pub grid: GridSpec,
    pub train_inputs: Vec<SampleInput>,
    pub valid_inputs: Vec<SampleInput>,
    pub test_inputs: Vec<SampleInput>,
    /// Extraction parameters used (Fig. 7(c)/(d) sweeps change them).
    pub delta_m: f64,
    pub gamma_m: f64,
}

impl Pipeline {
    /// Generate the dataset (overriding its trajectory count with the
    /// scale's) and extract features with the paper-default δ/γ.
    pub fn prepare(mut config: DatasetConfig, scale: &ExperimentScale) -> Self {
        config.num_trajectories = scale.num_traj;
        Self::prepare_with(config, 400.0, 30.0)
    }

    /// Prepare with explicit receptive field δ and bandwidth γ.
    pub fn prepare_with(config: DatasetConfig, delta_m: f64, gamma_m: f64) -> Self {
        let dataset = SplitDataset::generate(config);
        let rtree = RTree::build(&dataset.city.net);
        let grid = dataset.city.net.grid(50.0);
        let mut fx = FeatureExtractor::new(&dataset.city.net, &rtree, grid);
        fx.delta_m = delta_m;
        fx.gamma_m = gamma_m;
        let train_inputs = dataset.train.iter().map(|s| fx.extract(s)).collect();
        let valid_inputs = dataset.valid.iter().map(|s| fx.extract(s)).collect();
        let test_inputs = dataset.test.iter().map(|s| fx.extract(s)).collect();
        Pipeline {
            dataset,
            rtree,
            grid,
            train_inputs,
            valid_inputs,
            test_inputs,
            delta_m,
            gamma_m,
        }
    }

    /// Feature extractor with this pipeline's parameters.
    pub fn fx(&self) -> FeatureExtractor<'_> {
        let mut fx = FeatureExtractor::new(&self.dataset.city.net, &self.rtree, self.grid);
        fx.delta_m = self.delta_m;
        fx.gamma_m = self.gamma_m;
        fx
    }

    /// True for segments on the elevated/trunk corridor (Fig. 4's "hard"
    /// sub-trajectories).
    pub fn is_corridor_segment(&self, seg: usize) -> bool {
        self.dataset
            .city
            .elevated
            .iter()
            .chain(&self.dataset.city.trunk_under_elevated)
            .any(|s| s.index() == seg)
    }

    /// Train (if learned) and evaluate one method.
    pub fn train_and_eval(&self, spec: &MethodSpec, scale: &ExperimentScale) -> MethodResult {
        let eps_rho = self.dataset.config.sim.eps_rho_s;
        let hmm = HmmConfig::default();
        let n_eval = self.test_inputs.len().min(scale.max_eval);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x5eed);

        let t_train = Instant::now();
        enum Trained {
            Linear,
            Dhtr(Box<DhtrModel>),
            E2e(Box<EndToEnd>),
        }
        let trained = match spec {
            MethodSpec::LinearHmm => Trained::Linear,
            MethodSpec::DhtrHmm => {
                let mut m = DhtrModel::new(scale.dim, scale.seed);
                m.fit(
                    &self.train_inputs,
                    &TrainConfig {
                        epochs: scale.epochs,
                        batch_size: scale.batch,
                        seed: scale.seed,
                        lr: scale.lr,
                        ..Default::default()
                    },
                );
                Trained::Dhtr(Box::new(m))
            }
            _ => {
                let mut m = EndToEnd::build(
                    spec,
                    &self.dataset.city.net,
                    &self.grid,
                    scale.dim,
                    scale.seed,
                );
                let mut trainer = Trainer::new(TrainConfig {
                    epochs: scale.epochs,
                    batch_size: scale.batch,
                    seed: scale.seed,
                    lr: scale.lr,
                    ..Default::default()
                });
                trainer.fit(&mut m, &self.train_inputs, None);
                Trained::E2e(Box::new(m))
            }
        };
        let train_secs = t_train.elapsed().as_secs_f64();

        // Evaluation.
        let fx = self.fx();
        let mut acc = MetricsAccumulator::new(&self.dataset.city.net);
        let mut sr_cases = Vec::with_capacity(n_eval);
        let t_infer = Instant::now();
        for i in 0..n_eval {
            let input = &self.test_inputs[i];
            let pred: Vec<(usize, f32)> = match &trained {
                Trained::Linear => linear_hmm_predict(
                    &self.dataset.city.net,
                    &self.rtree,
                    &hmm,
                    &self.dataset.test[i],
                    eps_rho,
                ),
                Trained::Dhtr(m) => m.predict(&fx, &self.rtree, &hmm, input, eps_rho),
                Trained::E2e(m) => m.predict(input, &mut rng),
            };
            let truth: Vec<(usize, f32)> = input
                .target_segs
                .iter()
                .zip(&input.target_rates)
                .map(|(&s, &r)| (s, r))
                .collect();
            sr_cases.push((
                truth.iter().map(|&(s, _)| s).collect(),
                pred.iter().map(|&(s, _)| s).collect(),
            ));
            acc.add(&truth, &pred);
        }
        let infer_ms = t_infer.elapsed().as_secs_f64() * 1000.0 / n_eval.max(1) as f64;

        let num_params = match &trained {
            Trained::Linear => 0,
            Trained::Dhtr(m) => m.num_params(),
            Trained::E2e(m) => m.num_params(),
        };
        let m = acc.finish();
        MethodResult {
            label: spec.label(),
            recall: m.recall,
            precision: m.precision,
            f1: m.f1,
            accuracy: m.accuracy,
            mae_m: m.mae_m,
            rmse_m: m.rmse_m,
            train_secs,
            infer_ms,
            num_params,
            sr_cases,
        }
    }

    /// Fig. 4: SR%k curve for an already-evaluated method.
    pub fn sr_curve(&self, result: &MethodResult, ks: &[f64]) -> Vec<(f64, f64)> {
        ks.iter()
            .map(|&k| {
                (
                    k,
                    sr_at_k(&result.sr_cases, |s| self.is_corridor_segment(s), k),
                )
            })
            .collect()
    }
}

/// Table III/IV: run a list of methods on one dataset.
pub fn run_comparison(
    config: DatasetConfig,
    methods: &[MethodSpec],
    scale: &ExperimentScale,
) -> (Pipeline, Vec<MethodResult>) {
    let pipeline = Pipeline::prepare(config, scale);
    let results = methods
        .iter()
        .map(|m| pipeline.train_and_eval(m, scale))
        .collect();
    (pipeline, results)
}

/// Fig. 7(b): sweep the number of GPSFormer blocks.
pub fn sweep_n_blocks(
    pipeline: &Pipeline,
    ns: &[usize],
    scale: &ExperimentScale,
) -> Vec<(usize, MethodResult)> {
    ns.iter()
        .map(|&n| {
            (
                n,
                pipeline.train_and_eval(&MethodSpec::RnTrajRecN(n), scale),
            )
        })
        .collect()
}

/// Fig. 7(c)/(d): sweep δ or γ (features are re-extracted per value).
pub fn sweep_extraction(
    config: DatasetConfig,
    deltas_gammas: &[(f64, f64)],
    scale: &ExperimentScale,
) -> Vec<((f64, f64), MethodResult)> {
    deltas_gammas
        .iter()
        .map(|&(d, g)| {
            let mut cfg = config.clone();
            cfg.num_trajectories = scale.num_traj;
            let p = Pipeline::prepare_with(cfg, d, g);
            ((d, g), p.train_and_eval(&MethodSpec::RnTrajRec, scale))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_pipeline() -> (Pipeline, ExperimentScale) {
        let scale = ExperimentScale::quick();
        (Pipeline::prepare(DatasetConfig::tiny(8, 30), &scale), scale)
    }

    #[test]
    fn pipeline_prepares_consistent_splits() {
        let (p, _) = quick_pipeline();
        assert_eq!(p.train_inputs.len(), p.dataset.train.len());
        assert_eq!(p.test_inputs.len(), p.dataset.test.len());
        assert!(!p.test_inputs.is_empty());
    }

    #[test]
    fn linear_hmm_evaluates() {
        let (p, scale) = quick_pipeline();
        let r = p.train_and_eval(&MethodSpec::LinearHmm, &scale);
        assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0);
        assert!(r.mae_m >= 0.0 && r.mae_m.is_finite());
        assert_eq!(r.num_params, 0);
        assert_eq!(r.sr_cases.len(), p.test_inputs.len().min(scale.max_eval));
    }

    #[test]
    fn end_to_end_method_evaluates() {
        let (p, scale) = quick_pipeline();
        let r = p.train_and_eval(&MethodSpec::MTrajRec, &scale);
        assert!(r.f1 > 0.0, "trained model should find some segments: {r}");
        assert!(r.num_params > 0);
        assert!(r.infer_ms > 0.0);
    }

    #[test]
    fn sr_curve_is_monotone_nonincreasing() {
        let (p, scale) = quick_pipeline();
        let r = p.train_and_eval(&MethodSpec::LinearHmm, &scale);
        let curve = p.sr_curve(&r, &[0.1, 0.5, 0.9]);
        for w in curve.windows(2) {
            assert!(w[0].1 >= w[1].1, "SR%k must not increase with k: {curve:?}");
        }
    }

    #[test]
    fn corridor_segments_detected() {
        let (p, _) = quick_pipeline();
        let any = (0..p.dataset.city.net.num_segments()).any(|s| p.is_corridor_segment(s));
        assert!(any, "tiny city must have a corridor");
    }
}
