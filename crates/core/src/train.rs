//! Training loop: Adam + teacher forcing + gradient clipping (§VI-A3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::model::EndToEnd;
use rntrajrec_models::SampleInput;
use rntrajrec_nn::{clip_global_norm, Adam, Tape};

/// Training hyper-parameters (paper defaults where CPU-feasible).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Paper: 30 epochs; benches use fewer.
    pub epochs: usize,
    /// Paper: 64; smaller here to keep tapes small.
    pub batch_size: usize,
    /// Paper: 1e-3 Adam.
    pub lr: f32,
    pub clip_norm: f32,
    pub seed: u64,
    /// Scheduled sampling: teacher-forcing probability decays linearly
    /// from 1.0 to this floor over the epochs (1.0 disables).
    pub tf_floor: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 8,
            lr: 1e-3,
            clip_norm: 5.0,
            seed: 17,
            tf_floor: 0.4,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_loss: f32,
    pub valid_loss: Option<f32>,
}

/// Owns the optimiser state over a training run.
pub struct Trainer {
    pub config: TrainConfig,
    opt: Adam,
    rng: StdRng,
}

impl Trainer {
    pub fn new(config: TrainConfig) -> Self {
        let opt = Adam::new(config.lr);
        let rng = StdRng::seed_from_u64(config.seed);
        Self { config, opt, rng }
    }

    /// One pass over the training set; returns the mean batch loss.
    pub fn train_epoch(&mut self, model: &mut EndToEnd, train: &[SampleInput]) -> f32 {
        self.train_epoch_scheduled(model, train, 1.0)
    }

    /// One pass with the given teacher-forcing probability.
    pub fn train_epoch_scheduled(
        &mut self,
        model: &mut EndToEnd,
        train: &[SampleInput],
        tf_prob: f32,
    ) -> f32 {
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(&mut self.rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(self.config.batch_size) {
            let batch: Vec<&SampleInput> = chunk.iter().map(|&i| &train[i]).collect();
            let mut tape = Tape::new();
            let loss = model.batch_loss_scheduled(&mut tape, &batch, tf_prob, &mut self.rng);
            total += tape.value(loss).item();
            batches += 1;
            model.store.zero_grad();
            tape.backward(loss, &mut model.store);
            clip_global_norm(&mut model.store, self.config.clip_norm);
            self.opt.step(&mut model.store);
        }
        total / batches.max(1) as f32
    }

    /// Loss on a held-out set (teacher forcing, no updates).
    pub fn eval_loss(&mut self, model: &EndToEnd, data: &[SampleInput]) -> f32 {
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in data.chunks(self.config.batch_size) {
            let batch: Vec<&SampleInput> = chunk.iter().collect();
            let mut tape = Tape::new();
            let loss = model.batch_loss(&mut tape, &batch, &mut self.rng);
            total += tape.value(loss).item();
            batches += 1;
        }
        total / batches.max(1) as f32
    }

    /// Full training run with optional validation tracking.
    pub fn fit(
        &mut self,
        model: &mut EndToEnd,
        train: &[SampleInput],
        valid: Option<&[SampleInput]>,
    ) -> Vec<EpochStats> {
        let mut stats = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            // Linear teacher-forcing decay 1.0 -> tf_floor (scheduled
            // sampling; see DESIGN.md deviation list).
            let progress = if self.config.epochs > 1 {
                epoch as f32 / (self.config.epochs - 1) as f32
            } else {
                0.0
            };
            let tf_prob = 1.0 - (1.0 - self.config.tf_floor) * progress;
            let train_loss = self.train_epoch_scheduled(model, train, tf_prob);
            let valid_loss = valid.map(|v| self.eval_loss(model, v));
            stats.push(EpochStats {
                epoch,
                train_loss,
                valid_loss,
            });
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MethodSpec;
    use rntrajrec_models::FeatureExtractor;
    use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    fn fixture(n: usize) -> (SyntheticCity, Vec<SampleInput>) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 9,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(21);
        let inputs = (0..n)
            .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
            .collect();
        (city, inputs)
    }

    #[test]
    fn training_reduces_loss_mtrajrec() {
        let (city, inputs) = fixture(8);
        let grid = city.net.grid(50.0);
        let mut model = EndToEnd::build(&MethodSpec::MTrajRec, &city.net, &grid, 16, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 4,
            ..Default::default()
        });
        let stats = trainer.fit(&mut model, &inputs, None);
        let first = stats.first().unwrap().train_loss;
        let last = stats.last().unwrap().train_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_reduces_loss_rntrajrec() {
        let (city, inputs) = fixture(6);
        let grid = city.net.grid(50.0);
        let mut model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 3,
            ..Default::default()
        });
        let stats = trainer.fit(&mut model, &inputs, None);
        let first = stats.first().unwrap().train_loss;
        let last = stats.last().unwrap().train_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(stats.iter().all(|s| s.train_loss.is_finite()));
    }

    #[test]
    fn overfits_tiny_set_to_high_accuracy() {
        // End-to-end sanity: with enough epochs on 4 samples the model must
        // drive teacher-forced loss way down (guards the whole pipeline).
        let (city, inputs) = fixture(4);
        let grid = city.net.grid(50.0);
        let mut model = EndToEnd::build(&MethodSpec::MTrajRec, &city.net, &grid, 16, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 4,
            lr: 3e-3,
            ..Default::default()
        });
        let stats = trainer.fit(&mut model, &inputs, None);
        let last = stats.last().unwrap().train_loss;
        let first = stats.first().unwrap().train_loss;
        assert!(last < 0.7 * first, "failed to overfit: {first} -> {last}");
    }

    #[test]
    fn validation_loss_is_tracked() {
        let (city, inputs) = fixture(6);
        let grid = city.net.grid(50.0);
        let mut model = EndToEnd::build(&MethodSpec::MTrajRec, &city.net, &grid, 16, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        });
        let stats = trainer.fit(&mut model, &inputs[..4], Some(&inputs[4..]));
        assert!(stats.iter().all(|s| s.valid_loss.is_some()));
    }
}
