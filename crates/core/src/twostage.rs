//! Two-stage baselines: `Linear + HMM` and `DHTR + HMM` (Table III rows
//! 1–2). Both first densify the low-sample trajectory to the ϵρ rate, then
//! map-match the densified trace with the Newson–Krumm HMM.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rntrajrec_geo::XY;
use rntrajrec_mapmatch::{linear_interpolate, HmmConfig, HmmMatcher, KalmanSmoother};
use rntrajrec_models::{DhtrSeq2Seq, FeatureExtractor, SampleInput};
use rntrajrec_nn::{clip_global_norm, Adam, ParamStore, Tape};
use rntrajrec_roadnet::{RTree, RoadNetwork};
use rntrajrec_synth::{RawPoint, RawTrajectory, TrajSample};

use crate::train::TrainConfig;

/// Predict with linear interpolation + HMM. Returns `(segment, rate)` per
/// target step.
pub fn linear_hmm_predict(
    net: &RoadNetwork,
    rtree: &RTree,
    hmm: &HmmConfig,
    sample: &TrajSample,
    eps_rho_s: f64,
) -> Vec<(usize, f32)> {
    let dense = linear_interpolate(&sample.raw, eps_rho_s, sample.target.len());
    let mut matcher = HmmMatcher::new(net, rtree, hmm.clone());
    let matched = matcher.match_trajectory(&dense);
    matched
        .points
        .iter()
        .map(|p| (p.pos.seg.index(), p.pos.frac as f32))
        .collect()
}

/// DHTR: learned seq2seq interpolation + Kalman smoothing + HMM.
pub struct DhtrModel {
    pub store: ParamStore,
    pub seq2seq: DhtrSeq2Seq,
    pub kalman: KalmanSmoother,
}

impl DhtrModel {
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let seq2seq = DhtrSeq2Seq::new(&mut store, &mut rng, dim);
        Self {
            store,
            seq2seq,
            kalman: KalmanSmoother::default(),
        }
    }

    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Train the position-regression seq2seq with MSE (per the DHTR paper).
    pub fn fit(&mut self, train: &[SampleInput], config: &TrainConfig) -> Vec<f32> {
        let mut opt = Adam::new(config.lr);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let mut order: Vec<usize> = (0..train.len()).collect();
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(config.batch_size) {
                let mut tape = Tape::new();
                let mut terms = Vec::new();
                for &i in chunk {
                    let pred = self.seq2seq.forward(&mut tape, &self.store, &train[i]);
                    let target = tape.leaf(train[i].target_xy_norm.clone());
                    let d = tape.sub(pred, target);
                    terms.push(tape.mul(d, d));
                }
                let all = tape.concat_rows(&terms);
                let loss = tape.mean_all(all);
                total += tape.value(loss).item();
                batches += 1;
                self.store.zero_grad();
                tape.backward(loss, &mut self.store);
                clip_global_norm(&mut self.store, config.clip_norm);
                opt.step(&mut self.store);
            }
            losses.push(total / batches.max(1) as f32);
        }
        losses
    }

    /// Predict: regress positions, Kalman-smooth, HMM-match.
    pub fn predict(
        &self,
        fx: &FeatureExtractor<'_>,
        rtree: &RTree,
        hmm: &HmmConfig,
        input: &SampleInput,
        eps_rho_s: f64,
    ) -> Vec<(usize, f32)> {
        let mut tape = Tape::new();
        let pred = self.seq2seq.forward(&mut tape, &self.store, input);
        let v = tape.value(pred);
        let raw_xy: Vec<XY> = (0..v.rows)
            .map(|r| fx.denormalize(v.get(r, 0), v.get(r, 1)))
            .collect();
        let smoothed = self.kalman.smooth(&raw_xy, eps_rho_s);
        let dense = RawTrajectory {
            points: smoothed
                .iter()
                .enumerate()
                .map(|(j, &xy)| RawPoint {
                    xy,
                    t: j as f64 * eps_rho_s,
                })
                .collect(),
        };
        let mut matcher = HmmMatcher::new(fx.net, rtree, hmm.clone());
        let matched = matcher.match_trajectory(&dense);
        matched
            .points
            .iter()
            .map(|p| (p.pos.seg.index(), p.pos.frac as f32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rntrajrec_roadnet::{CityConfig, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    fn fixture() -> (SyntheticCity, RTree, Vec<TrajSample>) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 9,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(31);
        let samples = (0..4).map(|_| sim.sample(&mut rng, 8)).collect();
        (city, rtree, samples)
    }

    #[test]
    fn linear_hmm_full_length_predictions() {
        let (city, rtree, samples) = fixture();
        let pred = linear_hmm_predict(&city.net, &rtree, &HmmConfig::default(), &samples[0], 12.0);
        assert_eq!(pred.len(), samples[0].target.len());
        assert!(pred
            .iter()
            .all(|&(s, r)| s < city.net.num_segments() && (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn dhtr_trains_and_predicts() {
        let (city, rtree, samples) = fixture();
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let inputs: Vec<SampleInput> = samples.iter().map(|s| fx.extract(s)).collect();
        let mut model = DhtrModel::new(16, 5);
        let losses = model.fit(
            &inputs,
            &TrainConfig {
                epochs: 5,
                batch_size: 2,
                ..Default::default()
            },
        );
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
        let pred = model.predict(&fx, &rtree, &HmmConfig::default(), &inputs[0], 12.0);
        assert_eq!(pred.len(), inputs[0].target_len());
    }
}
