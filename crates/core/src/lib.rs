//! RNTrajRec — Road Network Enhanced Trajectory Recovery with
//! Spatial-Temporal Transformer (ICDE 2023), reproduced in Rust.
//!
//! This crate assembles the full system on top of the substrate crates:
//!
//! * [`model`] — the end-to-end recovery model (any encoder + the shared
//!   multi-task decoder), the multi-task loss `L_id + λ₁L_rate + λ₂L_enc`
//!   (Eq. 16–19), and the method registry covering every row of Table III.
//! * [`train`] — Adam training with teacher forcing and gradient clipping.
//! * [`metrics`] — Recall/Precision/F1, Accuracy, MAE/RMSE in road-network
//!   metres, and `SR%k` (Section VI-A2, Fig. 4).
//! * [`twostage`] — the Linear+HMM and DHTR+HMM two-stage baselines.
//! * [`experiments`] — drivers regenerating every table and figure of the
//!   paper's evaluation at configurable scale.
//! * [`wire`] — the JSON wire format of the HTTP serving front-end
//!   (`rntrajrec-serve`): recover request/response bodies and their
//!   validation.
//!
//! # Quickstart
//!
//! ```no_run
//! use rntrajrec::experiments::{ExperimentScale, Pipeline};
//! use rntrajrec::model::MethodSpec;
//! use rntrajrec_synth::DatasetConfig;
//!
//! let scale = ExperimentScale::quick();
//! let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, 40), &scale);
//! let row = pipeline.train_and_eval(&MethodSpec::RnTrajRec, &scale);
//! println!("{row}");
//! ```

pub mod experiments;
pub mod metrics;
pub mod model;
pub mod train;
pub mod twostage;
pub mod wire;

pub use experiments::{ExperimentScale, Pipeline};
pub use metrics::{EvalMetrics, MetricsAccumulator};
pub use model::{BatchDecodeOutcome, EndToEnd, MethodSpec, StreamCtl};
pub use train::{TrainConfig, Trainer};
