//! Wire-format types for the HTTP serving front-end.
//!
//! A recovery request travels as JSON carrying the *raw* low-sample GPS
//! trajectory (planar metres + seconds, exactly what the sensor reports —
//! Definition 2) and the desired ϵρ target length; the server runs feature
//! extraction and the model, and answers with the recovered `(segment,
//! moving-rate)` sequence. Serialization uses the vendored serde derive;
//! deserialization is explicit [`serde::Value`] walking (the vendored
//! stand-in has no `Deserialize` derive), with field-precise errors that
//! the HTTP layer maps to `400`.

use rntrajrec_geo::XY;
use rntrajrec_synth::{RawPoint, RawTrajectory};
use serde::{Serialize, Value};

/// Hard cap on raw input points per request (defense against abusive
/// bodies; the paper's trajectories are far shorter).
pub const MAX_WIRE_POINTS: usize = 4096;
/// Hard cap on requested recovery steps.
pub const MAX_WIRE_TARGET_LEN: usize = 4096;

/// `POST /v1/recover` body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoverRequest {
    /// Raw GPS observations as `[x_metres, y_metres, t_seconds]` triples;
    /// `t` is relative to the first point and must be non-decreasing.
    pub points: Vec<[f64; 3]>,
    /// Number of ϵρ-interval steps to recover (`l_ρ`).
    pub target_len: usize,
    /// Absolute departure time on the synthetic calendar (seconds; epoch 0
    /// = Monday 00:00). Drives the hour/holiday context features.
    pub depart_epoch_s: f64,
}

/// Why a wire request was rejected (HTTP layer maps these to `400`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but malformed.
    Invalid { field: &'static str, reason: String },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Missing(field) => write!(f, "missing field '{field}'"),
            WireError::Invalid { field, reason } => {
                write!(f, "invalid field '{field}': {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn invalid(field: &'static str, reason: impl Into<String>) -> WireError {
    WireError::Invalid {
        field,
        reason: reason.into(),
    }
}

impl RecoverRequest {
    /// Build from a parsed JSON document.
    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let points_v = v.get("points").ok_or(WireError::Missing("points"))?;
        let rows = points_v
            .as_array()
            .ok_or_else(|| invalid("points", "expected an array of [x, y, t] triples"))?;
        if rows.is_empty() {
            return Err(invalid("points", "at least one GPS point is required"));
        }
        if rows.len() > MAX_WIRE_POINTS {
            return Err(invalid(
                "points",
                format!("{} points exceeds the cap of {MAX_WIRE_POINTS}", rows.len()),
            ));
        }
        let mut points = Vec::with_capacity(rows.len());
        let mut prev_t = f64::NEG_INFINITY;
        for (i, row) in rows.iter().enumerate() {
            let triple = row.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                invalid("points", format!("point {i} is not an [x, y, t] triple"))
            })?;
            let mut xyz = [0.0f64; 3];
            for (k, item) in triple.iter().enumerate() {
                let f = item.as_f64().filter(|f| f.is_finite()).ok_or_else(|| {
                    invalid("points", format!("point {i} has a non-finite entry"))
                })?;
                xyz[k] = f;
            }
            if xyz[2] < prev_t {
                return Err(invalid(
                    "points",
                    format!("timestamps must be non-decreasing (point {i})"),
                ));
            }
            prev_t = xyz[2];
            points.push(xyz);
        }
        let target_len = v
            .get("target_len")
            .ok_or(WireError::Missing("target_len"))?
            .as_u64()
            .ok_or_else(|| invalid("target_len", "expected a non-negative integer"))?
            as usize;
        if target_len == 0 || target_len > MAX_WIRE_TARGET_LEN {
            return Err(invalid(
                "target_len",
                format!("must be in 1..={MAX_WIRE_TARGET_LEN}"),
            ));
        }
        let depart_epoch_s = match v.get("depart_epoch_s") {
            None => 0.0,
            Some(d) => d
                .as_f64()
                .filter(|f| f.is_finite() && *f >= 0.0)
                .ok_or_else(|| {
                    invalid("depart_epoch_s", "expected a finite non-negative number")
                })?,
        };
        Ok(Self {
            points,
            target_len,
            depart_epoch_s,
        })
    }

    /// Parse straight from a JSON body. Parse errors become a
    /// [`WireError::Invalid`] on a synthetic `body` field.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let v = serde_json::from_str(body).map_err(|e| invalid("body", e.to_string()))?;
        Self::from_value(&v)
    }

    /// The raw trajectory this request describes.
    pub fn raw_trajectory(&self) -> RawTrajectory {
        RawTrajectory {
            points: self
                .points
                .iter()
                .map(|&[x, y, t]| RawPoint {
                    xy: XY::new(x, y),
                    t,
                })
                .collect(),
        }
    }

    /// Build a request from a raw trajectory (client-side convenience —
    /// tests, benchmarks, and the example all speak the wire format
    /// through this).
    pub fn from_raw(raw: &RawTrajectory, target_len: usize, depart_epoch_s: f64) -> Self {
        Self {
            points: raw.points.iter().map(|p| [p.xy.x, p.xy.y, p.t]).collect(),
            target_len,
            depart_epoch_s,
        }
    }
}

/// `POST /v1/recover` success body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoverResponse {
    /// Engine submission id.
    pub id: u64,
    /// Recovered road-segment index per target step.
    pub segments: Vec<usize>,
    /// Recovered moving rate per target step.
    pub rates: Vec<f32>,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
    /// Submit-to-completion latency in milliseconds.
    pub latency_ms: f64,
}

impl RecoverResponse {
    /// Assemble from an engine result path.
    pub fn from_path(id: u64, path: &[(usize, f32)], batch_size: usize, latency_ms: f64) -> Self {
        Self {
            id,
            segments: path.iter().map(|&(s, _)| s).collect(),
            rates: path.iter().map(|&(_, r)| r).collect(),
            batch_size,
            latency_ms,
        }
    }

    /// Parse a response body (client-side: tests/bench verify bit-identity
    /// through this).
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let v = serde_json::from_str(body).map_err(|e| invalid("body", e.to_string()))?;
        let id = v
            .get("id")
            .and_then(Value::as_u64)
            .ok_or(WireError::Missing("id"))?;
        let segments = v
            .get("segments")
            .and_then(Value::as_array)
            .ok_or(WireError::Missing("segments"))?
            .iter()
            .map(|s| {
                s.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| invalid("segments", "expected integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rates = v
            .get("rates")
            .and_then(Value::as_array)
            .ok_or(WireError::Missing("rates"))?
            .iter()
            .map(|r| {
                r.as_f64()
                    .map(|f| f as f32)
                    .ok_or_else(|| invalid("rates", "expected numbers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let batch_size = v
            .get("batch_size")
            .and_then(Value::as_u64)
            .ok_or(WireError::Missing("batch_size"))? as usize;
        let latency_ms = v
            .get("latency_ms")
            .and_then(Value::as_f64)
            .ok_or(WireError::Missing("latency_ms"))?;
        Ok(Self {
            id,
            segments,
            rates,
            batch_size,
            latency_ms,
        })
    }

    /// The engine-path view: zipped `(segment, rate)` pairs.
    pub fn path(&self) -> Vec<(usize, f32)> {
        self.segments
            .iter()
            .copied()
            .zip(self.rates.iter().copied())
            .collect()
    }
}

/// JSON error body shared by every non-2xx response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ErrorBody {
    /// Human-readable reason.
    pub error: String,
    /// The HTTP status code, repeated in-body for log pipelines.
    pub code: u16,
}

impl ErrorBody {
    pub fn new(code: u16, error: impl Into<String>) -> Self {
        Self {
            error: error.into(),
            code,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("error body serializes")
    }
}

/// Version 2 of the wire protocol: the same recovery payload plus an
/// explicit `options` object (deadline, streaming, head selection), and
/// the chunked-stream event types for `POST /v2/recover/stream`.
///
/// `/v1` is frozen: v1 types above serve it unchanged, byte-for-byte
/// (pinned by a parity test in the HTTP round-trip suite).
pub mod v2 {
    use super::{invalid, RecoverRequest, Value, WireError};
    use rntrajrec_synth::RawTrajectory;
    use serde::Serialize;

    /// Per-request options (`options` object in a v2 request body). All
    /// fields optional on the wire; defaults are the v1 semantics.
    #[derive(Debug, Clone, PartialEq, Serialize)]
    pub struct RecoverOptions {
        /// Soft deadline for the whole recovery, milliseconds from
        /// receipt. Expiring mid-decode cancels the request out of its
        /// fused batch (v1 signals this via the `X-Deadline-Ms` header;
        /// v2 carries it in-body).
        pub deadline_ms: Option<u64>,
        /// Stream per-step events (`/v2/recover/stream` implies this).
        pub stream: bool,
        /// Segment-head preference: `"default"`, `"sparse"`, or
        /// `"int8"`. Advisory — decode batches are fused, so the server
        /// picks one head per batch (brownout may force `int8`); unknown
        /// values are a `400`.
        pub head: String,
    }

    impl Default for RecoverOptions {
        fn default() -> Self {
            Self {
                deadline_ms: None,
                stream: false,
                head: "default".to_string(),
            }
        }
    }

    impl RecoverOptions {
        /// Parse from the (optional) `options` field of a v2 body.
        pub fn from_value(v: Option<&Value>) -> Result<Self, WireError> {
            let mut opts = Self::default();
            let Some(v) = v else { return Ok(opts) };
            if v.as_object().is_none() {
                return Err(invalid("options", "expected an object"));
            }
            if let Some(d) = v.get("deadline_ms") {
                if !d.is_null() {
                    let ms = d.as_u64().filter(|&ms| ms > 0).ok_or_else(|| {
                        invalid("options.deadline_ms", "expected a positive integer")
                    })?;
                    opts.deadline_ms = Some(ms);
                }
            }
            if let Some(s) = v.get("stream") {
                opts.stream = s
                    .as_bool()
                    .ok_or_else(|| invalid("options.stream", "expected a boolean"))?;
            }
            if let Some(h) = v.get("head") {
                let head = h
                    .as_str()
                    .ok_or_else(|| invalid("options.head", "expected a string"))?;
                if !matches!(head, "default" | "sparse" | "int8") {
                    return Err(invalid(
                        "options.head",
                        format!("unknown head '{head}' (expected default|sparse|int8)"),
                    ));
                }
                opts.head = head.to_string();
            }
            Ok(opts)
        }
    }

    /// `POST /v2/recover` / `POST /v2/recover/stream` body: the v1
    /// payload fields plus [`RecoverOptions`].
    #[derive(Debug, Clone, PartialEq, Serialize)]
    pub struct RecoverRequestV2 {
        pub points: Vec<[f64; 3]>,
        pub target_len: usize,
        pub depart_epoch_s: f64,
        pub options: RecoverOptions,
    }

    impl RecoverRequestV2 {
        pub fn from_value(v: &Value) -> Result<Self, WireError> {
            let base = RecoverRequest::from_value(v)?;
            let options = RecoverOptions::from_value(v.get("options"))?;
            Ok(Self {
                points: base.points,
                target_len: base.target_len,
                depart_epoch_s: base.depart_epoch_s,
                options,
            })
        }

        pub fn from_json(body: &str) -> Result<Self, WireError> {
            let v = serde_json::from_str(body).map_err(|e| invalid("body", e.to_string()))?;
            Self::from_value(&v)
        }

        pub fn from_raw(
            raw: &RawTrajectory,
            target_len: usize,
            depart_epoch_s: f64,
            options: RecoverOptions,
        ) -> Self {
            let base = RecoverRequest::from_raw(raw, target_len, depart_epoch_s);
            Self {
                points: base.points,
                target_len: base.target_len,
                depart_epoch_s: base.depart_epoch_s,
                options,
            }
        }

        /// The v1 view of the payload (feature extraction is shared).
        pub fn base(&self) -> RecoverRequest {
            RecoverRequest {
                points: self.points.clone(),
                target_len: self.target_len,
                depart_epoch_s: self.depart_epoch_s,
            }
        }
    }

    /// One streamed decode step: a chunk on `/v2/recover/stream` holds
    /// exactly one of these as a JSON line (`event: "step"`).
    #[derive(Debug, Clone, PartialEq, Serialize)]
    pub struct StepEvent {
        /// Always `"step"`.
        pub event: String,
        /// Engine submission id.
        pub id: u64,
        /// 0-based step index; strictly monotonic within a stream.
        pub step: usize,
        /// Predicted road segment for this step.
        pub segment: usize,
        /// Predicted moving rate for this step.
        pub rate: f32,
        /// Log-probability of the chosen segment under the masked head.
        pub logprob: f32,
    }

    impl StepEvent {
        pub fn new(id: u64, step: usize, segment: usize, rate: f32, logprob: f32) -> Self {
            Self {
                event: "step".to_string(),
                id,
                step,
                segment,
                rate,
                logprob,
            }
        }
    }

    /// Terminal success event (`event: "summary"`): the full recovered
    /// path (including steps already streamed) and request accounting —
    /// exactly one terminal event (summary *or* error) ends a stream.
    #[derive(Debug, Clone, PartialEq, Serialize)]
    pub struct SummaryEvent {
        /// Always `"summary"`.
        pub event: String,
        pub id: u64,
        pub segments: Vec<usize>,
        pub rates: Vec<f32>,
        pub batch_size: usize,
        pub latency_ms: f64,
    }

    impl SummaryEvent {
        /// Build the terminal summary from the buffered (v1-shaped)
        /// response, so streamed and un-streamed answers agree field
        /// for field.
        pub fn from_response(resp: &super::RecoverResponse) -> Self {
            Self {
                event: "summary".to_string(),
                id: resp.id,
                segments: resp.segments.clone(),
                rates: resp.rates.clone(),
                batch_size: resp.batch_size,
                latency_ms: resp.latency_ms,
            }
        }
    }

    /// Terminal failure event (`event: "error"`).
    #[derive(Debug, Clone, PartialEq, Serialize)]
    pub struct ErrorEvent {
        /// Always `"error"`.
        pub event: String,
        pub error: String,
        /// The HTTP status this failure would have carried un-streamed
        /// (the stream itself is already committed to `200`).
        pub code: u16,
        /// The failure was a time failure (deadline / watchdog) — safe
        /// to retry.
        pub timed_out: bool,
    }

    impl ErrorEvent {
        pub fn new(error: String, code: u16, timed_out: bool) -> Self {
            Self {
                event: "error".to_string(),
                error,
                code,
                timed_out,
            }
        }
    }

    /// A parsed stream event (client side).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Event {
        Step(StepEvent),
        Summary(SummaryEvent),
        Error(ErrorEvent),
    }

    impl Event {
        /// Parse one stream chunk (a JSON line).
        pub fn from_json(line: &str) -> Result<Self, WireError> {
            let v = serde_json::from_str(line).map_err(|e| invalid("body", e.to_string()))?;
            let kind = v
                .get("event")
                .and_then(Value::as_str)
                .ok_or(WireError::Missing("event"))?;
            match kind {
                "step" => Ok(Event::Step(StepEvent {
                    event: kind.to_string(),
                    id: v
                        .get("id")
                        .and_then(Value::as_u64)
                        .ok_or(WireError::Missing("id"))?,
                    step: v
                        .get("step")
                        .and_then(Value::as_u64)
                        .ok_or(WireError::Missing("step"))? as usize,
                    segment: v
                        .get("segment")
                        .and_then(Value::as_u64)
                        .ok_or(WireError::Missing("segment"))?
                        as usize,
                    rate: v
                        .get("rate")
                        .and_then(Value::as_f64)
                        .ok_or(WireError::Missing("rate"))? as f32,
                    logprob: v
                        .get("logprob")
                        .and_then(Value::as_f64)
                        .ok_or(WireError::Missing("logprob"))? as f32,
                })),
                "summary" => {
                    let segments = v
                        .get("segments")
                        .and_then(Value::as_array)
                        .ok_or(WireError::Missing("segments"))?
                        .iter()
                        .map(|s| {
                            s.as_u64()
                                .map(|u| u as usize)
                                .ok_or_else(|| invalid("segments", "expected integers"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    let rates = v
                        .get("rates")
                        .and_then(Value::as_array)
                        .ok_or(WireError::Missing("rates"))?
                        .iter()
                        .map(|r| {
                            r.as_f64()
                                .map(|f| f as f32)
                                .ok_or_else(|| invalid("rates", "expected numbers"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Event::Summary(SummaryEvent {
                        event: kind.to_string(),
                        id: v
                            .get("id")
                            .and_then(Value::as_u64)
                            .ok_or(WireError::Missing("id"))?,
                        segments,
                        rates,
                        batch_size: v
                            .get("batch_size")
                            .and_then(Value::as_u64)
                            .ok_or(WireError::Missing("batch_size"))?
                            as usize,
                        latency_ms: v
                            .get("latency_ms")
                            .and_then(Value::as_f64)
                            .ok_or(WireError::Missing("latency_ms"))?,
                    }))
                }
                "error" => Ok(Event::Error(ErrorEvent {
                    event: kind.to_string(),
                    error: v
                        .get("error")
                        .and_then(Value::as_str)
                        .ok_or(WireError::Missing("error"))?
                        .to_string(),
                    code: v
                        .get("code")
                        .and_then(Value::as_u64)
                        .ok_or(WireError::Missing("code"))? as u16,
                    timed_out: v.get("timed_out").and_then(Value::as_bool).unwrap_or(false),
                })),
                other => Err(invalid("event", format!("unknown event kind '{other}'"))),
            }
        }

        /// `true` for the stream-ending events (summary / error).
        pub fn is_terminal(&self) -> bool {
            !matches!(self, Event::Step(_))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> String {
        r#"{"points": [[10.0, 20.0, 0.0], [30.0, 25.5, 12.0]], "target_len": 5, "depart_epoch_s": 3600}"#
            .to_string()
    }

    #[test]
    fn parses_a_valid_request() {
        let req = RecoverRequest::from_json(&sample_json()).expect("valid");
        assert_eq!(req.points.len(), 2);
        assert_eq!(req.points[1], [30.0, 25.5, 12.0]);
        assert_eq!(req.target_len, 5);
        assert_eq!(req.depart_epoch_s, 3600.0);
        let raw = req.raw_trajectory();
        assert_eq!(raw.len(), 2);
        assert_eq!(raw.points[0].xy, XY::new(10.0, 20.0));
        assert_eq!(raw.points[1].t, 12.0);
    }

    #[test]
    fn depart_epoch_defaults_to_zero() {
        let req =
            RecoverRequest::from_json(r#"{"points": [[0, 0, 0]], "target_len": 1}"#).expect("ok");
        assert_eq!(req.depart_epoch_s, 0.0);
    }

    #[test]
    fn request_roundtrips_through_serde() {
        let req = RecoverRequest::from_json(&sample_json()).expect("valid");
        let json = serde_json::to_string(&req).expect("serializes");
        assert_eq!(RecoverRequest::from_json(&json).expect("reparses"), req);
    }

    #[test]
    fn rejects_malformed_requests() {
        for (body, field) in [
            ("{", "body"),
            ("[]", "points"),
            (r#"{"target_len": 3}"#, "points"),
            (r#"{"points": [], "target_len": 3}"#, "points"),
            (r#"{"points": [[0, 0]], "target_len": 3}"#, "points"),
            (r#"{"points": [[0, 0, "x"]], "target_len": 3}"#, "points"),
            (
                r#"{"points": [[0, 0, 5], [0, 0, 1]], "target_len": 3}"#,
                "points",
            ),
            (r#"{"points": [[0, 0, 0]]}"#, "target_len"),
            (r#"{"points": [[0, 0, 0]], "target_len": 0}"#, "target_len"),
            (r#"{"points": [[0, 0, 0]], "target_len": -2}"#, "target_len"),
            (
                r#"{"points": [[0, 0, 0]], "target_len": 1, "depart_epoch_s": -5}"#,
                "depart_epoch_s",
            ),
        ] {
            let err = RecoverRequest::from_json(body).expect_err(body);
            let msg = err.to_string();
            assert!(msg.contains(field), "error {msg:?} should name {field:?}");
        }
    }

    #[test]
    fn response_roundtrips_rates_exactly() {
        let path = vec![(3usize, 0.123_456_79_f32), (7, 1.0 / 3.0), (0, 0.0)];
        let resp = RecoverResponse::from_path(9, &path, 4, 1.25);
        let json = serde_json::to_string(&resp).expect("serializes");
        let back = RecoverResponse::from_json(&json).expect("parses");
        assert_eq!(back, resp);
        assert_eq!(back.path(), path);
        for (a, b) in back.rates.iter().zip(&resp.rates) {
            assert_eq!(a.to_bits(), b.to_bits(), "rate corrupted in transit");
        }
    }

    #[test]
    fn error_body_renders() {
        let e = ErrorBody::new(429, "engine queue full");
        let s = e.to_json();
        assert!(s.contains("429") && s.contains("engine queue full"));
    }

    #[test]
    fn v2_request_defaults_match_v1_semantics() {
        let req = v2::RecoverRequestV2::from_json(&sample_json()).expect("valid without options");
        assert_eq!(req.options, v2::RecoverOptions::default());
        assert_eq!(
            req.base(),
            RecoverRequest::from_json(&sample_json()).unwrap()
        );
    }

    #[test]
    fn v2_options_parse_and_roundtrip() {
        let body = r#"{"points": [[0, 0, 0]], "target_len": 3,
            "options": {"deadline_ms": 250, "stream": true, "head": "int8"}}"#;
        let req = v2::RecoverRequestV2::from_json(body).expect("valid");
        assert_eq!(req.options.deadline_ms, Some(250));
        assert!(req.options.stream);
        assert_eq!(req.options.head, "int8");
        let json = serde_json::to_string(&req).expect("serializes");
        assert_eq!(
            v2::RecoverRequestV2::from_json(&json).expect("reparses"),
            req
        );
    }

    #[test]
    fn v2_rejects_bad_options() {
        for (body, field) in [
            (
                r#"{"points": [[0,0,0]], "target_len": 1, "options": 7}"#,
                "options",
            ),
            (
                r#"{"points": [[0,0,0]], "target_len": 1, "options": {"deadline_ms": 0}}"#,
                "deadline_ms",
            ),
            (
                r#"{"points": [[0,0,0]], "target_len": 1, "options": {"stream": 1}}"#,
                "stream",
            ),
            (
                r#"{"points": [[0,0,0]], "target_len": 1, "options": {"head": "fp8"}}"#,
                "head",
            ),
        ] {
            let err = v2::RecoverRequestV2::from_json(body).expect_err(body);
            let msg = err.to_string();
            assert!(msg.contains(field), "error {msg:?} should name {field:?}");
        }
    }

    #[test]
    fn v2_stream_events_roundtrip() {
        let step = v2::StepEvent::new(4, 2, 17, 0.75, -0.25);
        let line = serde_json::to_string(&step).expect("serializes");
        let parsed = v2::Event::from_json(&line).expect("parses");
        assert_eq!(parsed, v2::Event::Step(step));
        assert!(!parsed.is_terminal());

        let summary = v2::SummaryEvent {
            event: "summary".to_string(),
            id: 4,
            segments: vec![17, 3],
            rates: vec![0.75, 0.5],
            batch_size: 2,
            latency_ms: 1.5,
        };
        let line = serde_json::to_string(&summary).expect("serializes");
        let parsed = v2::Event::from_json(&line).expect("parses");
        assert_eq!(parsed, v2::Event::Summary(summary));
        assert!(parsed.is_terminal());

        let error = v2::ErrorEvent {
            event: "error".to_string(),
            error: "deadline exceeded mid-decode".to_string(),
            code: 503,
            timed_out: true,
        };
        let line = serde_json::to_string(&error).expect("serializes");
        let parsed = v2::Event::from_json(&line).expect("parses");
        assert_eq!(parsed, v2::Event::Error(error));
        assert!(parsed.is_terminal());

        assert!(v2::Event::from_json(r#"{"event": "snack"}"#).is_err());
    }
}
