//! Evaluation metrics (Section VI-A2): Recall / Precision / F1, Accuracy,
//! MAE / RMSE in road-network metres, and SR%k for the elevated-road study.

use std::collections::HashSet;

use rntrajrec_roadnet::{NetworkDistance, RoadNetwork, RoadPosition, SegmentId};

/// Predicted trajectory as `(segment index, moving ratio)` per step.
pub type Prediction = [(usize, f32)];

/// One row of Table III/IV/V.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalMetrics {
    pub recall: f64,
    pub precision: f64,
    pub f1: f64,
    pub accuracy: f64,
    pub mae_m: f64,
    pub rmse_m: f64,
}

impl std::fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "R {:.4}  P {:.4}  F1 {:.4}  Acc {:.4}  MAE {:7.2}  RMSE {:7.2}",
            self.recall, self.precision, self.f1, self.accuracy, self.mae_m, self.rmse_m
        )
    }
}

/// Travel path: consecutive-deduplicated segment sequence (`E_ρ`).
pub fn travel_path(segs: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for s in segs {
        if out.last() != Some(&s) {
            out.push(s);
        }
    }
    out
}

/// Recall / Precision / F1 between two travel paths (set semantics, as in
/// MTrajRec's protocol [11]).
pub fn path_prf(truth: &[usize], pred: &[usize]) -> (f64, f64, f64) {
    let t: HashSet<usize> = truth.iter().copied().collect();
    let p: HashSet<usize> = pred.iter().copied().collect();
    if t.is_empty() || p.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let inter = t.intersection(&p).count() as f64;
    let recall = inter / t.len() as f64;
    let precision = inter / p.len() as f64;
    let f1 = if recall + precision > 0.0 {
        2.0 * recall * precision / (recall + precision)
    } else {
        0.0
    };
    (recall, precision, f1)
}

/// Accumulates metrics over a test set, with the expensive road-network
/// distance engine reused across trajectories.
pub struct MetricsAccumulator<'a> {
    nd: NetworkDistance<'a>,
    n_traj: usize,
    recall: f64,
    precision: f64,
    f1: f64,
    correct_steps: usize,
    total_steps: usize,
    abs_err_sum: f64,
    sq_err_sum: f64,
}

impl<'a> MetricsAccumulator<'a> {
    pub fn new(net: &'a RoadNetwork) -> Self {
        Self {
            nd: NetworkDistance::new(net),
            n_traj: 0,
            recall: 0.0,
            precision: 0.0,
            f1: 0.0,
            correct_steps: 0,
            total_steps: 0,
            abs_err_sum: 0.0,
            sq_err_sum: 0.0,
        }
    }

    /// Add one trajectory: ground truth `(seg, rate)` vs. prediction.
    pub fn add(&mut self, truth: &Prediction, pred: &Prediction) {
        assert_eq!(truth.len(), pred.len(), "length mismatch");
        let tp = travel_path(truth.iter().map(|&(s, _)| s));
        let pp = travel_path(pred.iter().map(|&(s, _)| s));
        let (r, p, f1) = path_prf(&tp, &pp);
        self.recall += r;
        self.precision += p;
        self.f1 += f1;
        self.n_traj += 1;
        for (&(ts, tr), &(ps, pr)) in truth.iter().zip(pred.iter()) {
            self.total_steps += 1;
            if ts == ps {
                self.correct_steps += 1;
            }
            let a = RoadPosition::new(SegmentId(ts as u32), tr as f64);
            let b = RoadPosition::new(SegmentId(ps as u32), pr as f64);
            let d = self.nd.metric_m(&a, &b);
            self.abs_err_sum += d;
            self.sq_err_sum += d * d;
        }
    }

    pub fn finish(&self) -> EvalMetrics {
        let n = self.n_traj.max(1) as f64;
        let steps = self.total_steps.max(1) as f64;
        EvalMetrics {
            recall: self.recall / n,
            precision: self.precision / n,
            f1: self.f1 / n,
            accuracy: self.correct_steps as f64 / steps,
            mae_m: self.abs_err_sum / steps,
            rmse_m: (self.sq_err_sum / steps).sqrt(),
        }
    }

    pub fn num_trajectories(&self) -> usize {
        self.n_traj
    }
}

/// SR%k (Section VI-A2): the share of trajectories whose *elevated-road
/// sub-trajectory* F1 exceeds `k`. `is_hard(seg)` marks the elevated/trunk
/// corridor segments.
pub fn sr_at_k(
    cases: &[(Vec<usize>, Vec<usize>)], // (truth segs, pred segs) per trajectory
    is_hard: impl Fn(usize) -> bool,
    k: f64,
) -> f64 {
    let mut eligible = 0usize;
    let mut success = 0usize;
    for (truth, pred) in cases {
        // Sub-trajectory: steps whose ground truth lies on the corridor.
        let idx: Vec<usize> = (0..truth.len()).filter(|&i| is_hard(truth[i])).collect();
        if idx.is_empty() {
            continue;
        }
        eligible += 1;
        let t_sub = travel_path(idx.iter().map(|&i| truth[i]));
        let p_sub = travel_path(idx.iter().map(|&i| pred[i]));
        let (_, _, f1) = path_prf(&t_sub, &p_sub);
        if f1 > k {
            success += 1;
        }
    }
    if eligible == 0 {
        0.0
    } else {
        success as f64 / eligible as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rntrajrec_geo::{Polyline, XY};
    use rntrajrec_roadnet::{RoadLevel, RoadNetworkBuilder};

    fn line_net(n: usize) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            let x = i as f64 * 100.0;
            b.add_segment(
                Polyline::segment(XY::new(x, 0.0), XY::new(x + 100.0, 0.0)),
                RoadLevel::Primary,
            );
        }
        b.build()
    }

    #[test]
    fn travel_path_dedups() {
        assert_eq!(travel_path([1, 1, 2, 2, 1]), vec![1, 2, 1]);
        assert_eq!(travel_path(std::iter::empty()), Vec::<usize>::new());
    }

    #[test]
    fn prf_perfect_and_disjoint() {
        assert_eq!(path_prf(&[1, 2, 3], &[1, 2, 3]), (1.0, 1.0, 1.0));
        let (r, p, f1) = path_prf(&[1, 2], &[3, 4]);
        assert_eq!((r, p, f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn prf_partial_overlap() {
        // truth {1,2,3,4}, pred {3,4,5}: inter 2 -> R=0.5, P=2/3.
        let (r, p, f1) = path_prf(&[1, 2, 3, 4], &[3, 4, 5]);
        assert!((r - 0.5).abs() < 1e-12);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        let expect = 2.0 * r * p / (r + p);
        assert!((f1 - expect).abs() < 1e-12);
    }

    #[test]
    fn accumulator_perfect_prediction() {
        let net = line_net(5);
        let mut acc = MetricsAccumulator::new(&net);
        let truth = vec![(0usize, 0.5f32), (1, 0.25), (2, 0.75)];
        acc.add(&truth, &truth);
        let m = acc.finish();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
        assert!(m.mae_m < 1e-6);
        assert!(m.rmse_m < 1e-6);
    }

    #[test]
    fn accumulator_distance_errors() {
        let net = line_net(5);
        let mut acc = MetricsAccumulator::new(&net);
        // Truth at seg0@0.5 (x=50); pred at seg1@0.5 (x=150): 100 m apart.
        acc.add(&[(0, 0.5)], &[(1, 0.5)]);
        let m = acc.finish();
        assert_eq!(m.accuracy, 0.0);
        assert!((m.mae_m - 100.0).abs() < 1e-6, "mae {}", m.mae_m);
        assert!((m.rmse_m - 100.0).abs() < 1e-6);
    }

    #[test]
    fn rmse_penalises_outliers_more() {
        let net = line_net(5);
        let mut acc = MetricsAccumulator::new(&net);
        acc.add(&[(0, 0.5), (1, 0.5)], &[(0, 0.5), (3, 0.5)]); // errors 0, 200
        let m = acc.finish();
        assert!((m.mae_m - 100.0).abs() < 1e-6);
        assert!((m.rmse_m - (200.0f64 * 200.0 / 2.0).sqrt()).abs() < 1e-6);
        assert!(m.rmse_m > m.mae_m);
    }

    #[test]
    fn metrics_average_over_trajectories() {
        let net = line_net(5);
        let mut acc = MetricsAccumulator::new(&net);
        acc.add(&[(0, 0.0), (1, 0.0)], &[(0, 0.0), (1, 0.0)]); // F1 = 1
        acc.add(&[(0, 0.0), (1, 0.0)], &[(3, 0.0), (4, 0.0)]); // F1 = 0
        let m = acc.finish();
        assert!((m.f1 - 0.5).abs() < 1e-12);
        assert!((m.accuracy - 0.5).abs() < 1e-12);
        assert_eq!(acc.num_trajectories(), 2);
    }

    #[test]
    fn sr_at_k_counts_only_corridor_trajectories() {
        let is_hard = |s: usize| s >= 10;
        let cases = vec![
            (vec![10, 11, 1], vec![10, 11, 2]), // corridor F1 = 1
            (vec![10, 12, 1], vec![10, 13, 1]), // corridor F1 = 0.5
            (vec![1, 2, 3], vec![1, 2, 3]),     // no corridor steps: excluded
        ];
        assert!((sr_at_k(&cases, is_hard, 0.8) - 0.5).abs() < 1e-12);
        assert!((sr_at_k(&cases, is_hard, 0.4) - 1.0).abs() < 1e-12);
        // k = 1.0 is strict ">": nothing passes.
        assert_eq!(sr_at_k(&cases, is_hard, 1.0), 0.0);
    }

    #[test]
    fn sr_at_k_empty_input() {
        assert_eq!(sr_at_k(&[], |_| true, 0.5), 0.0);
    }
}
