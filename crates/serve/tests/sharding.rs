//! Multi-city sharded serving + versioned-artifact hot reload, end to end
//! over real TCP sockets.
//!
//! The acceptance properties:
//! - bbox routing: each request lands on the shard whose bounding box
//!   contains it, straddling requests are a typed 422 and out-of-region
//!   requests a typed 404 — never a crash, never the wrong model;
//! - isolation: concurrent traffic against two shards produces exactly
//!   the answers each city's in-process engine would give;
//! - hot reload: `POST /admin/reload` swaps a shard's model with zero
//!   failed or invalid responses under concurrent load, and every
//!   rejected reload (corrupt file, wrong city) leaves the old model
//!   serving.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec::wire::{RecoverRequest, RecoverResponse};
use rntrajrec_artifact::pack_fresh;
use rntrajrec_roadnet::{CityConfig, SyntheticCity};
use rntrajrec_serve::http::client;
use rntrajrec_serve::{
    CityShard, EngineConfig, HttpConfig, HttpServer, QueryContext, RecoveryEngine, ServingModel,
    ShardRouter,
};
use rntrajrec_synth::{SimConfig, Simulator, TrajSample};

/// Kernel counters are process-global; serialize the tests.
static SEQUENTIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Beta city = alpha's grid translated far east, so the two bounding
/// boxes are disjoint by tens of kilometres.
const BETA_OFFSET_X: f64 = 50_000.0;

fn alpha_config() -> CityConfig {
    CityConfig::tiny()
}

fn beta_config() -> CityConfig {
    CityConfig {
        origin_x: BETA_OFFSET_X,
        ..CityConfig::tiny()
    }
}

fn quick_engine() -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        workers: 2,
        threads_per_worker: 0,
        queue_capacity: None,
        ..EngineConfig::default()
    }
}

fn ephemeral_http() -> HttpConfig {
    HttpConfig {
        addr: "127.0.0.1:0".to_string(),
        ..HttpConfig::default()
    }
}

struct ShardFixture {
    engine: Arc<RecoveryEngine>,
    ctx: Arc<QueryContext>,
    samples: Vec<TrajSample>,
}

impl ShardFixture {
    fn request_for(&self, i: usize) -> RecoverRequest {
        let s = &self.samples[i % self.samples.len()];
        RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s)
    }

    fn in_process(&self, req: &RecoverRequest) -> Vec<(usize, f32)> {
        self.engine
            .recover(self.ctx.sample_input(req).expect("valid request"))
            .path
    }
}

/// Build one shard from an in-process synthetic city.
fn build_shard(
    name: &str,
    config: CityConfig,
    seed: u64,
    n_samples: usize,
) -> (CityShard, ShardFixture) {
    let city = SyntheticCity::generate(config);
    let grid = city.net.grid(50.0);
    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, seed);
    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec serves"));
    let mut sim = Simulator::new(
        &city.net,
        SimConfig {
            target_len: 9,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(5));
    let samples: Vec<TrajSample> = (0..n_samples).map(|_| sim.sample(&mut rng, 8)).collect();
    let ctx = Arc::new(QueryContext::new(city.net, 50.0));
    let engine = Arc::new(RecoveryEngine::start(serving, quick_engine()));
    let shard = CityShard::new(name, Arc::clone(&engine), Arc::clone(&ctx), None);
    (
        shard,
        ShardFixture {
            engine,
            ctx,
            samples,
        },
    )
}

struct TwoCityHarness {
    server: HttpServer,
    alpha: ShardFixture,
    beta: ShardFixture,
}

impl TwoCityHarness {
    fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }
}

fn boot_two_cities() -> TwoCityHarness {
    let (shard_a, alpha) = build_shard("alpha", alpha_config(), 7, 6);
    let (shard_b, beta) = build_shard("beta", beta_config(), 7, 6);
    let router = Arc::new(ShardRouter::new(vec![shard_a, shard_b]));
    let server = HttpServer::start_router(router, ephemeral_http()).expect("bind ephemeral port");
    TwoCityHarness {
        server,
        alpha,
        beta,
    }
}

fn post(addr: std::net::SocketAddr, path: &str, req: &RecoverRequest) -> client::HttpResponse {
    let body = serde_json::to_string(req).expect("request serializes");
    client::post_json(addr, path, &body).expect("http roundtrip")
}

fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rntrajrec_sharding_{}_{tag}.rnta",
        std::process::id()
    ))
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

#[test]
fn requests_route_to_their_city_and_match_in_process() {
    let _g = lock();
    let h = boot_two_cities();
    for i in 0..4 {
        let req_a = h.alpha.request_for(i);
        let want_a = h.alpha.in_process(&req_a);
        let resp = post(h.addr(), "/v1/recover", &req_a);
        assert_eq!(resp.status, 200, "alpha request {i}: {}", resp.body);
        let parsed = RecoverResponse::from_json(&resp.body).expect("well-formed response");
        assert_eq!(parsed.path(), want_a, "alpha shard diverged (request {i})");

        let req_b = h.beta.request_for(i);
        let want_b = h.beta.in_process(&req_b);
        let resp = post(h.addr(), "/v1/recover", &req_b);
        assert_eq!(resp.status, 200, "beta request {i}: {}", resp.body);
        let parsed = RecoverResponse::from_json(&resp.body).expect("well-formed response");
        assert_eq!(parsed.path(), want_b, "beta shard diverged (request {i})");
    }
}

#[test]
fn straddling_request_is_422() {
    let _g = lock();
    let h = boot_two_cities();
    let mut req = h.alpha.request_for(0);
    // Translate the last point into beta's (identical, shifted) grid.
    let n = req.points.len();
    req.points[n - 1][0] += BETA_OFFSET_X;
    let resp = post(h.addr(), "/v1/recover", &req);
    assert_eq!(resp.status, 422, "body: {}", resp.body);
    assert!(
        resp.body.contains("alpha") && resp.body.contains("beta"),
        "straddle error should name both shards: {}",
        resp.body
    );
    // Same contract on v2 (v1 body parses there with default options).
    let body = serde_json::to_string(&req).expect("serializes");
    let resp = client::post_json(h.addr(), "/v2/recover", &body).expect("http");
    assert_eq!(resp.status, 422, "v2 body: {}", resp.body);
}

#[test]
fn out_of_region_request_is_404() {
    let _g = lock();
    let h = boot_two_cities();
    let mut req = h.alpha.request_for(0);
    for p in &mut req.points {
        p[0] += 9.0e6;
        p[1] -= 9.0e6;
    }
    let resp = post(h.addr(), "/v1/recover", &req);
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    assert!(
        resp.body.contains("no city shard"),
        "error should say no shard covers the point: {}",
        resp.body
    );
}

#[test]
fn example_endpoint_requires_city_when_sharded() {
    let _g = lock();
    let h = boot_two_cities();
    let resp = client::get(h.addr(), "/v1/example").expect("http");
    assert_eq!(resp.status, 400, "body: {}", resp.body);
    let resp = client::get(h.addr(), "/v1/example?city=nowhere").expect("http");
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    // These shards were built without examples.
    let resp = client::get(h.addr(), "/v1/example?city=alpha").expect("http");
    assert_eq!(resp.status, 404, "body: {}", resp.body);
}

#[test]
fn concurrent_two_shard_traffic_stays_isolated() {
    let _g = lock();
    let h = boot_two_cities();
    let addr = h.addr();
    let mut expected_a = Vec::new();
    let mut expected_b = Vec::new();
    for i in 0..3 {
        let ra = h.alpha.request_for(i);
        expected_a.push((ra.clone(), h.alpha.in_process(&ra)));
        let rb = h.beta.request_for(i);
        expected_b.push((rb.clone(), h.beta.in_process(&rb)));
    }
    let run = |expected: Vec<(RecoverRequest, Vec<(usize, f32)>)>| {
        std::thread::spawn(move || {
            for _round in 0..3 {
                for (req, want) in &expected {
                    let resp = post(addr, "/v1/recover", req);
                    assert_eq!(resp.status, 200, "body: {}", resp.body);
                    let parsed =
                        RecoverResponse::from_json(&resp.body).expect("well-formed response");
                    assert_eq!(&parsed.path(), want, "shard isolation broken");
                }
            }
        })
    };
    let ta = run(expected_a);
    let tb = run(expected_b);
    ta.join().expect("alpha client");
    tb.join().expect("beta client");

    let metrics = client::get(addr, "/metrics").expect("metrics").body;
    assert!(
        metrics.contains("rntrajrec_engine_requests_total{city=\"alpha\"}"),
        "per-shard engine counters missing:\n{metrics}"
    );
    assert!(metrics.contains("rntrajrec_engine_requests_total{city=\"beta\"}"));
}

// ---------------------------------------------------------------------------
// Artifacts + hot reload
// ---------------------------------------------------------------------------

#[test]
fn artifact_loaded_shard_is_byte_identical_to_in_process() {
    let _g = lock();
    // Same config/dim/seed two ways: built in-process vs round-tripped
    // through a packed artifact file.
    let (shard_mem, fixture) = build_shard("alpha", alpha_config(), 7, 4);
    let artifact = pack_fresh("alpha", "v1", &alpha_config(), 50.0, 16, 7);
    let path = scratch_path("bitwise");
    artifact.write_to(&path).expect("write artifact");
    let loaded = rntrajrec_artifact::Artifact::read_from(&path)
        .expect("read artifact")
        .instantiate()
        .expect("instantiate");
    std::fs::remove_file(&path).ok();
    let serving = ServingModel::from_parts(loaded.model, loaded.x_road, loaded.quant, false)
        .expect("artifact serves");
    let ctx = Arc::new(QueryContext::new(loaded.city.net, 50.0));
    let engine = Arc::new(RecoveryEngine::start(Arc::new(serving), quick_engine()));
    let shard_art = CityShard::new("alpha-art", engine, ctx, None);

    let server_mem =
        HttpServer::start_router(Arc::new(ShardRouter::single(shard_mem)), ephemeral_http())
            .expect("bind");
    let server_art =
        HttpServer::start_router(Arc::new(ShardRouter::single(shard_art)), ephemeral_http())
            .expect("bind");

    for i in 0..4 {
        let req = fixture.request_for(i);
        let a = post(server_mem.local_addr(), "/v1/recover", &req);
        let b = post(server_art.local_addr(), "/v1/recover", &req);
        assert_eq!(a.status, 200, "body: {}", a.body);
        assert_eq!(b.status, 200, "body: {}", b.body);
        // `id` and `latency_ms` are per-server; the recovered path —
        // segment ids AND f32 rates — must be bitwise identical.
        let pa = RecoverResponse::from_json(&a.body).expect("well-formed response");
        let pb = RecoverResponse::from_json(&b.body).expect("well-formed response");
        assert_eq!(
            pa.path(),
            pb.path(),
            "artifact-loaded shard diverged from in-process (request {i})"
        );
    }
}

#[test]
fn rejected_reloads_leave_old_model_serving() {
    let _g = lock();
    let (shard, fixture) = build_shard("alpha", alpha_config(), 7, 2);
    let router = Arc::new(ShardRouter::single(shard));
    let server = HttpServer::start_router(router, ephemeral_http()).expect("bind");
    let addr = server.local_addr();

    let req = fixture.request_for(0);
    let baseline = post(addr, "/v1/recover", &req);
    assert_eq!(baseline.status, 200);
    let baseline_path = RecoverResponse::from_json(&baseline.body)
        .expect("well-formed response")
        .path();

    // Corrupt artifact: valid file with flipped payload bytes → 422.
    let good = pack_fresh("alpha", "v2", &alpha_config(), 50.0, 16, 7);
    let corrupt_path = scratch_path("corrupt");
    let mut bytes = good.to_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&corrupt_path, &bytes).expect("write corrupt artifact");
    let body = format!(
        "{{\"city\":\"alpha\",\"path\":\"{}\"}}",
        corrupt_path.display()
    );
    let resp = client::post_json(addr, "/admin/reload", &body).expect("http");
    assert_eq!(resp.status, 422, "corrupt reload body: {}", resp.body);
    std::fs::remove_file(&corrupt_path).ok();

    // Truncated artifact → 422.
    let trunc_path = scratch_path("trunc");
    std::fs::write(&trunc_path, &good.to_bytes()[..40]).expect("write truncated artifact");
    let body = format!(
        "{{\"city\":\"alpha\",\"path\":\"{}\"}}",
        trunc_path.display()
    );
    let resp = client::post_json(addr, "/admin/reload", &body).expect("http");
    assert_eq!(resp.status, 422, "truncated reload body: {}", resp.body);
    std::fs::remove_file(&trunc_path).ok();

    // Wrong city artifact → 409.
    let beta = pack_fresh("beta", "v1", &beta_config(), 50.0, 16, 7);
    let beta_path = scratch_path("wrongcity");
    beta.write_to(&beta_path).expect("write beta artifact");
    let body = format!(
        "{{\"city\":\"alpha\",\"path\":\"{}\"}}",
        beta_path.display()
    );
    let resp = client::post_json(addr, "/admin/reload", &body).expect("http");
    assert_eq!(resp.status, 409, "wrong-city reload body: {}", resp.body);
    std::fs::remove_file(&beta_path).ok();

    // Unknown shard name → 404; missing file → 400.
    let resp = client::post_json(addr, "/admin/reload", "{\"city\":\"nope\",\"path\":\"/x\"}")
        .expect("http");
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    let resp = client::post_json(
        addr,
        "/admin/reload",
        "{\"city\":\"alpha\",\"path\":\"/definitely/not/here.rnta\"}",
    )
    .expect("http");
    assert_eq!(resp.status, 400, "body: {}", resp.body);

    // After every rejected reload, the original model still serves the
    // exact same answer.
    let after = post(addr, "/v1/recover", &req);
    assert_eq!(after.status, 200, "body: {}", after.body);
    let after_path = RecoverResponse::from_json(&after.body)
        .expect("well-formed response")
        .path();
    assert_eq!(
        after_path, baseline_path,
        "rejected reloads must leave the old model untouched"
    );
}

#[test]
fn hot_reload_under_load_has_zero_invalid_responses() {
    let _g = lock();
    let (shard, fixture) = build_shard("alpha", alpha_config(), 7, 4);
    let router = Arc::new(ShardRouter::single(shard));
    let server = HttpServer::start_router(router, ephemeral_http()).expect("bind");
    let addr = server.local_addr();

    // v2 artifact: identical city/config/seed, so answers stay bitwise
    // stable across the swap and every in-flight response is checkable.
    let artifact = pack_fresh("alpha", "v2", &alpha_config(), 50.0, 16, 7);
    let path = scratch_path("hotswap");
    artifact.write_to(&path).expect("write artifact");

    let mut expected = Vec::new();
    for i in 0..4 {
        let req = fixture.request_for(i);
        let want = fixture.in_process(&req);
        expected.push((req, want));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut i = worker;
                while !stop.load(Ordering::Relaxed) {
                    let (req, want) = &expected[i % expected.len()];
                    i += 1;
                    let resp = post(addr, "/v1/recover", req);
                    assert_eq!(resp.status, 200, "mid-reload failure: {}", resp.body);
                    let parsed =
                        RecoverResponse::from_json(&resp.body).expect("well-formed response");
                    assert_eq!(&parsed.path(), want, "mid-reload answer diverged");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Two hot swaps while traffic is flowing.
    for round in 0..2 {
        std::thread::sleep(Duration::from_millis(50));
        let body = format!("{{\"city\":\"alpha\",\"path\":\"{}\"}}", path.display());
        let resp = client::post_json(addr, "/admin/reload", &body).expect("http");
        assert_eq!(resp.status, 200, "reload {round} failed: {}", resp.body);
        assert!(
            resp.body.contains("\"model_version\":\"v2\""),
            "reload receipt missing version: {}",
            resp.body
        );
    }
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let mut served = 0;
    for c in clients {
        served += c.join().expect("client thread");
    }
    assert!(served > 0, "load generator never got a request through");
    std::fs::remove_file(&path).ok();

    let metrics = client::get(addr, "/metrics").expect("metrics").body;
    assert!(
        metrics.contains("rntrajrec_engine_model_swaps_total{city=\"alpha\"} 2"),
        "expected two recorded model swaps:\n{metrics}"
    );
    assert!(
        metrics.contains("rntrajrec_artifact_info{city=\"alpha\",model_version=\"v2\""),
        "artifact_info gauge should reflect the loaded artifact:\n{metrics}"
    );
    let health = client::get(addr, "/healthz").expect("healthz").body;
    assert!(
        health.contains("\"model_version\":\"v2\"") && health.contains("\"reloads\":2"),
        "healthz should report the reloaded shard: {health}"
    );
}
