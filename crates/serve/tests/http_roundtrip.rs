//! End-to-end HTTP serving tests over real TCP sockets.
//!
//! The acceptance property: recovery over the wire is **bit-identical**
//! to in-process engine dispatch — JSON, the socket, and the micro-batch
//! composition must all be unobservable in the results. Plus the
//! admission-control and robustness paths: malformed JSON → 400 without
//! killing the worker, oversized body → 413, saturated queue → 429,
//! blown deadline → 503, and concurrent clients actually sharing one
//! fused micro-batch (asserted through the kernel matmul counter).

use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec::wire::{RecoverRequest, RecoverResponse};
use rntrajrec_nn::kernels;
use rntrajrec_roadnet::{CityConfig, SyntheticCity};
use rntrajrec_serve::http::client;
use rntrajrec_serve::{
    EngineConfig, HttpConfig, HttpServer, QueryContext, RecoveryEngine, ServingModel,
};
use rntrajrec_synth::{SimConfig, Simulator, TrajSample};

/// The kernel matmul counter is process-global; serialize the tests so
/// deltas measured around one server's traffic are attributable to it.
static SEQUENTIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner())
}

struct Harness {
    server: HttpServer,
    engine: Arc<RecoveryEngine>,
    ctx: Arc<QueryContext>,
    samples: Vec<TrajSample>,
}

impl Harness {
    fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    fn request_for(&self, i: usize) -> RecoverRequest {
        let s = &self.samples[i];
        RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s)
    }

    /// The in-process reference: the same wire request through the same
    /// query context and engine, no network.
    fn in_process(&self, req: &RecoverRequest) -> Vec<(usize, f32)> {
        self.engine
            .recover(self.ctx.sample_input(req).expect("valid request"))
            .path
    }
}

fn boot(engine_cfg: EngineConfig, http_cfg: HttpConfig, n_samples: usize) -> Harness {
    let city = SyntheticCity::generate(CityConfig::tiny());
    let grid = city.net.grid(50.0);
    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
    let serving = Arc::new(ServingModel::new(model).expect("RNTrajRec serves"));
    let mut sim = Simulator::new(
        &city.net,
        SimConfig {
            target_len: 9,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(23);
    let samples: Vec<TrajSample> = (0..n_samples).map(|_| sim.sample(&mut rng, 8)).collect();
    let ctx = Arc::new(QueryContext::new(city.net, 50.0));
    let engine = Arc::new(RecoveryEngine::start(serving, engine_cfg));
    let server = HttpServer::start(Arc::clone(&engine), Arc::clone(&ctx), http_cfg, None)
        .expect("bind ephemeral port");
    Harness {
        server,
        engine,
        ctx,
        samples,
    }
}

fn quick_engine() -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        workers: 2,
        threads_per_worker: 0,
        queue_capacity: None,
        ..EngineConfig::default()
    }
}

fn ephemeral_http() -> HttpConfig {
    HttpConfig {
        addr: "127.0.0.1:0".to_string(),
        ..HttpConfig::default()
    }
}

#[test]
fn tcp_roundtrip_is_bitwise_identical_to_in_process() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 6);
    for i in 0..h.samples.len() {
        let req = h.request_for(i);
        let want = h.in_process(&req);
        let body = serde_json::to_string(&req).expect("request serializes");
        let resp = client::post_json(h.addr(), "/v1/recover", &body).expect("http roundtrip");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let parsed = RecoverResponse::from_json(&resp.body).expect("well-formed response");
        assert_eq!(parsed.segments.len(), req.target_len);
        assert_eq!(
            parsed.path(),
            want,
            "HTTP recovery diverged from in-process dispatch (request {i})"
        );
        for (wire, local) in parsed.rates.iter().zip(want.iter().map(|&(_, r)| r)) {
            assert_eq!(wire.to_bits(), local.to_bits(), "rate bits corrupted");
        }
        assert!(parsed.batch_size >= 1);
        assert!(parsed.latency_ms >= 0.0);
    }
}

#[test]
fn malformed_json_returns_400_without_killing_the_worker() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 1);
    for garbage in ["{not json", "[]", "{\"points\": 3}", ""] {
        let resp = client::post_json(h.addr(), "/v1/recover", garbage).expect("connects");
        assert_eq!(resp.status, 400, "{garbage:?} -> {}", resp.body);
        assert!(
            resp.body.contains("error"),
            "error body missing: {}",
            resp.body
        );
    }
    // The pool survives: a valid request on a fresh connection still works.
    let req = h.request_for(0);
    let want = h.in_process(&req);
    let body = serde_json::to_string(&req).unwrap();
    let resp = client::post_json(h.addr(), "/v1/recover", &body).expect("still serving");
    assert_eq!(resp.status, 200);
    assert_eq!(RecoverResponse::from_json(&resp.body).unwrap().path(), want);
}

/// GPS points that pass JSON parsing but are garbage for the road network
/// — NaN / ±∞ coordinates and antipodal-scale positions far outside the
/// study area — must come back as field-precise `400`s, never panic a
/// connection worker. The antipodal cases exercise the typed
/// `QueryError` path in `FeatureExtractor::extract_query` (formerly an
/// `assert!`-able region reachable from network input); the non-finite
/// cases pin the wire/parse guards in front of it.
#[test]
fn invalid_gps_points_return_400_and_workers_survive() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 1);
    let cases: &[(&str, &str)] = &[
        // Antipodal-scale coordinates: finite, valid JSON, rejected by
        // feature extraction's study-area margin.
        (
            r#"{"points": [[20000000, -20000000, 0]], "target_len": 3}"#,
            "points",
        ),
        // A valid point followed by a far-off-site one: the error names
        // the offending point index.
        (
            r#"{"points": [[100.0, 100.0, 0], [-1e7, 3e7, 5]], "target_len": 3}"#,
            "point 1",
        ),
        // NaN is not valid JSON: rejected at parse time.
        (r#"{"points": [[NaN, 0, 0]], "target_len": 3}"#, "body"),
        // An overflowing exponent parses to +inf: rejected as non-finite.
        (r#"{"points": [[1e999, 0, 0]], "target_len": 3}"#, "points"),
        (r#"{"points": [[0, -1e999, 0]], "target_len": 3}"#, "points"),
    ];
    for &(body, field) in cases {
        let resp = client::post_json(h.addr(), "/v1/recover", body).expect("connects");
        assert_eq!(
            resp.status, 400,
            "{body:?} -> {} {}",
            resp.status, resp.body
        );
        assert!(
            resp.body.contains(field),
            "{body:?}: error {:?} should name {field:?}",
            resp.body
        );
        // The worker pool survives every rejection: a valid request on a
        // fresh connection still round-trips bit-identically.
        let req = h.request_for(0);
        let want = h.in_process(&req);
        let ok_body = serde_json::to_string(&req).unwrap();
        let resp = client::post_json(h.addr(), "/v1/recover", &ok_body).expect("still serving");
        assert_eq!(resp.status, 200, "pool damaged after {body:?}");
        assert_eq!(RecoverResponse::from_json(&resp.body).unwrap().path(), want);
    }
    // No worker death shows up as engine failures either.
    assert_eq!(h.engine.stats().failed, 0);
}

#[test]
fn oversized_body_returns_413() {
    let _g = lock();
    let h = boot(
        quick_engine(),
        HttpConfig {
            max_body_bytes: 512,
            ..ephemeral_http()
        },
        0,
    );
    let big = format!("{{\"points\": [{}]}}", "[0,0,0],".repeat(200));
    let resp = client::post_json(h.addr(), "/v1/recover", &big).expect("connects");
    assert_eq!(resp.status, 413, "{}", resp.body);
}

#[test]
fn saturated_queue_sheds_429_with_retry_after() {
    let _g = lock();
    let h = boot(
        EngineConfig {
            queue_capacity: Some(0), // shed everything: deterministic 429
            ..quick_engine()
        },
        ephemeral_http(),
        1,
    );
    let body = serde_json::to_string(&h.request_for(0)).unwrap();
    let resp = client::post_json(h.addr(), "/v1/recover", &body).expect("connects");
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert!(
        resp.header("Retry-After").is_some(),
        "429 must carry Retry-After"
    );
    assert_eq!(h.engine.stats().rejected, 1);
}

#[test]
fn blown_deadline_sheds_503_with_retry_after() {
    let _g = lock();
    let h = boot(
        quick_engine(),
        HttpConfig {
            deadline: Duration::ZERO,
            ..ephemeral_http()
        },
        1,
    );
    let body = serde_json::to_string(&h.request_for(0)).unwrap();
    let resp = client::post_json(h.addr(), "/v1/recover", &body).expect("connects");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(
        resp.header("Retry-After").is_some(),
        "503 must carry Retry-After"
    );
}

/// Concurrent HTTP clients must land in one fused micro-batch: every
/// response reports the full batch size, and the whole batched run costs
/// fewer matmul invocations than the same requests served one by one
/// (the decoder runs one stacked product per head per step instead of
/// one per member).
#[test]
fn concurrent_clients_share_a_fused_batch() {
    let _g = lock();
    let clients = 4usize;
    let h = boot(
        EngineConfig {
            max_batch: clients,
            // Long flush deadline: the batch waits for all clients, so
            // batching is deterministic rather than timing-dependent.
            max_delay: Duration::from_secs(2),
            workers: 1,
            threads_per_worker: 0,
            queue_capacity: None,
            ..EngineConfig::default()
        },
        HttpConfig {
            connection_workers: clients,
            ..ephemeral_http()
        },
        clients,
    );

    // Reference: the same requests sequentially, one engine batch each
    // (they flush alone only after max_delay, so use the model directly).
    // `profile_scope` counts matmuls invoked from this thread only — the
    // sequential reference runs inline, so the count is attributable
    // without the old global reset dance.
    let reqs: Vec<RecoverRequest> = (0..clients).map(|i| h.request_for(i)).collect();
    let inputs: Vec<_> = reqs
        .iter()
        .map(|r| h.ctx.sample_input(r).expect("valid request"))
        .collect();
    let prof = kernels::profile_scope("sequential_reference");
    let sequential: Vec<Vec<(usize, f32)>> =
        inputs.iter().map(|i| h.engine.model().recover(i)).collect();
    let seq = prof.finish();
    assert!(
        seq.matmuls > 0 && seq.flops > 0,
        "profile scope saw no work"
    );

    // Batched side: the matmuls happen on the engine worker thread, so
    // count them through the span recorder — every kernel event lands on
    // exactly one (innermost) span, so summing span matmuls is exact.
    rntrajrec_obs::clear();
    rntrajrec_obs::set_enabled(true);
    let results: Vec<(u16, RecoverResponse)> = std::thread::scope(|s| {
        let handles: Vec<_> = reqs
            .iter()
            .map(|req| {
                let addr = h.addr();
                let body = serde_json::to_string(req).unwrap();
                s.spawn(move || {
                    let resp = client::post_json(addr, "/v1/recover", &body).expect("roundtrip");
                    (
                        resp.status,
                        RecoverResponse::from_json(&resp.body).expect("parses"),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    rntrajrec_obs::set_enabled(false);
    // Compute-side spans are flushed before each Recovered is delivered,
    // so once every client has joined the store holds all batch work.
    let spans = rntrajrec_obs::drain();
    let batched_matmuls: u64 = spans.iter().map(|s| s.matmuls).sum();
    assert!(batched_matmuls > 0, "span recorder saw no kernel work");

    for ((status, resp), want) in results.iter().zip(&sequential) {
        assert_eq!(*status, 200);
        assert_eq!(
            resp.batch_size, clients,
            "clients did not share one micro-batch"
        );
        assert_eq!(&resp.path(), want, "batched HTTP diverged from sequential");
    }
    assert!(
        batched_matmuls < seq.matmuls,
        "fused batch should cost fewer matmuls than sequential dispatch \
         ({batched_matmuls} vs {})",
        seq.matmuls
    );
}

/// A client that starts a request and stalls must get `408` and lose its
/// connection — it must not pin a connection worker (the pool is small,
/// so a handful of stalled clients would otherwise deny service while
/// the engine sits idle).
#[test]
fn stalled_request_times_out_with_408_and_frees_the_worker() {
    use std::io::{Read, Write};
    let _g = lock();
    let h = boot(
        quick_engine(),
        HttpConfig {
            connection_workers: 1, // a single pinned worker would be fatal
            request_read_timeout: Duration::from_millis(400),
            ..ephemeral_http()
        },
        1,
    );
    let mut stalled = std::net::TcpStream::connect(h.addr()).expect("connect");
    stalled
        .write_all(b"POST /v1/recover HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
        .expect("partial request");
    // Never send the body: the server must give up on its own.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut resp = String::new();
    stalled.read_to_string(&mut resp).expect("server answers");
    assert!(resp.starts_with("HTTP/1.1 408"), "got: {resp}");

    // The lone worker is free again: a real request still succeeds.
    let req = h.request_for(0);
    let want = h.in_process(&req);
    let body = serde_json::to_string(&req).unwrap();
    let resp = client::post_json(h.addr(), "/v1/recover", &body).expect("still serving");
    assert_eq!(resp.status, 200);
    assert_eq!(RecoverResponse::from_json(&resp.body).unwrap().path(), want);
}

#[test]
fn healthz_and_metrics_render() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 1);
    let body = serde_json::to_string(&h.request_for(0)).unwrap();
    assert_eq!(
        client::post_json(h.addr(), "/v1/recover", &body)
            .unwrap()
            .status,
        200
    );

    let health = client::get(h.addr(), "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);

    let metrics = client::get(h.addr(), "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    for key in [
        "rntrajrec_http_responses_total{class=\"2xx\"}",
        "rntrajrec_http_shed_total{reason=\"overload\"}",
        "rntrajrec_http_recover_latency_ms{quantile=\"0.99\"}",
        "rntrajrec_engine_queue_depth",
        "rntrajrec_engine_in_flight_batches",
        "rntrajrec_nn_matmul_invocations_total",
        "rntrajrec_kernel_backend{backend=\"",
        "rntrajrec_segment_head{city=\"default\",head=\"",
        "rntrajrec_artifact_info{city=\"default\",model_version=\"in-process\"",
    ] {
        assert!(
            metrics.body.contains(key),
            "missing {key} in:\n{}",
            metrics.body
        );
    }

    assert_eq!(client::get(h.addr(), "/nope").unwrap().status, 404);
    assert_eq!(
        client::request(h.addr(), "POST", "/metrics", Some(""))
            .unwrap()
            .status,
        405
    );
}

#[test]
fn graceful_shutdown_stops_accepting_after_drain() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 1);
    let addr = h.addr();
    // Serve one request, then drain.
    let body = serde_json::to_string(&h.request_for(0)).unwrap();
    assert_eq!(
        client::post_json(addr, "/v1/recover", &body)
            .unwrap()
            .status,
        200
    );
    let Harness { server, engine, .. } = h;
    server.shutdown();
    // The listener is gone: new connections are refused (or reset).
    assert!(
        client::get(addr, "/healthz").is_err(),
        "listener must stop accepting after shutdown"
    );
    // The engine drains cleanly afterwards.
    assert_eq!(engine.stats().completed, 1);
    drop(engine);
}

/// One traced POST must yield a complete Chrome-trace span tree at
/// `GET /debug/trace`: the root `request` span plus every lifecycle
/// phase from socket read to kernel, with matmul counts attached to the
/// compute spans.
#[test]
fn debug_trace_exposes_the_request_span_tree() {
    let _g = lock();
    rntrajrec_obs::clear();
    rntrajrec_obs::set_enabled(true);
    let h = boot(quick_engine(), ephemeral_http(), 1);
    let body = serde_json::to_string(&h.request_for(0)).unwrap();
    assert_eq!(
        client::post_json(h.addr(), "/v1/recover", &body)
            .unwrap()
            .status,
        200
    );

    // The root span is recorded after the response bytes hit the socket,
    // so the client can observe its own 200 slightly before the trace is
    // complete — poll briefly.
    let mut trace = String::new();
    for _ in 0..100 {
        let resp = client::get(h.addr(), "/debug/trace?last=4").expect("trace endpoint");
        assert_eq!(resp.status, 200);
        if resp.body.contains("\"request\"") {
            trace = resp.body;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    rntrajrec_obs::set_enabled(false);

    let doc = serde_json::from_str(&trace).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    for phase in [
        "\"request\"",
        "http.read",
        "parse",
        "queue.wait",
        "batch.assemble",
        "encoder.fused",
        "decoder.step[0]",
        "serialize",
        "http.write",
    ] {
        assert!(trace.contains(phase), "span {phase} missing in:\n{trace}");
    }
    // Kernel attribution: at least one compute span carries matmuls.
    let max_matmuls = events
        .iter()
        .filter_map(|e| e.get("args").and_then(|a| a.get("matmuls")))
        .filter_map(|v| v.as_u64())
        .max()
        .unwrap_or(0);
    assert!(max_matmuls > 0, "no span carries a matmul count:\n{trace}");
    // Bad query strings answer 400-class, never panic the worker.
    assert_eq!(
        client::get(h.addr(), "/debug/trace?last=zillion")
            .unwrap()
            .status,
        200,
        "unparseable last= falls back to the default"
    );
    rntrajrec_obs::clear();
}

/// `/metrics` must stay a valid Prometheus text document while request
/// traffic and scrapes race: no duplicate series, TYPE before samples,
/// monotone cumulative histogram buckets with `+Inf == _count`.
#[test]
fn metrics_lint_passes_under_concurrent_load() {
    let _g = lock();
    rntrajrec_obs::set_enabled(true);
    let clients = 4usize;
    let h = boot(
        quick_engine(),
        HttpConfig {
            connection_workers: clients + 1,
            ..ephemeral_http()
        },
        clients,
    );

    let scraped: Vec<String> = std::thread::scope(|s| {
        for i in 0..clients {
            let addr = h.addr();
            let body = serde_json::to_string(&h.request_for(i)).unwrap();
            s.spawn(move || {
                for _ in 0..3 {
                    let resp = client::post_json(addr, "/v1/recover", &body).expect("roundtrip");
                    assert_eq!(resp.status, 200);
                }
            });
        }
        // Scrape while the posts are in flight.
        (0..6)
            .map(|_| {
                let resp = client::get(h.addr(), "/metrics").expect("metrics");
                assert_eq!(resp.status, 200);
                std::thread::sleep(Duration::from_millis(5));
                resp.body
            })
            .collect()
    });
    rntrajrec_obs::set_enabled(false);

    for (i, doc) in scraped.iter().enumerate() {
        let problems = rntrajrec_obs::promlint::lint(doc);
        assert!(
            problems.is_empty(),
            "scrape {i} failed the lint: {problems:?}\n{doc}"
        );
    }
    // The final scrape has seen traffic: the phase histograms exist.
    let last = scraped.last().unwrap();
    for family in [
        "rntrajrec_build_info{",
        "rntrajrec_uptime_seconds",
        "rntrajrec_engine_mean_queue_wait_ms",
        "rntrajrec_engine_mean_compute_ms",
        "rntrajrec_nn_pool_jobs_total{mode=\"parallel\"}",
        "rntrajrec_phase_seconds_bucket{phase=\"encoder\"",
        "rntrajrec_phase_seconds_bucket{phase=\"decoder\"",
        "rntrajrec_phase_seconds_bucket{phase=\"queue_wait\"",
        "rntrajrec_phase_seconds_bucket{phase=\"serialize\"",
        "rntrajrec_phase_seconds_bucket{phase=\"e2e\"",
        "rntrajrec_batch_size_bucket",
        "rntrajrec_batch_occupancy_bucket",
    ] {
        assert!(last.contains(family), "missing {family} in:\n{last}");
    }
    rntrajrec_obs::clear();
}

// ===== v2 API and streamed decode steps =====================================

use rntrajrec::wire::v2;

/// Satellite contract for the v2 rollout: `/v1/recover` is versioned and
/// frozen. The response body must keep its exact wire shape — key order,
/// key names, no additions — and `/v2/recover` with default options must
/// recover the identical path.
#[test]
fn v1_body_is_byte_stable_and_v2_defaults_match_it() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 1);
    let req = h.request_for(0);
    let want = h.in_process(&req);
    let body = serde_json::to_string(&req).expect("request serializes");

    let r1 = client::post_json(h.addr(), "/v1/recover", &body).expect("v1 roundtrip");
    assert_eq!(r1.status, 200, "body: {}", r1.body);
    let parsed = RecoverResponse::from_json(&r1.body).expect("well-formed v1 response");
    assert_eq!(parsed.path(), want);
    // Byte-for-byte pin: the body is exactly the serde serialization of
    // the typed response — field order and formatting included — and the
    // key sequence is the frozen v1 layout.
    assert_eq!(
        r1.body,
        serde_json::to_string(&parsed).expect("response reserializes"),
        "v1 body must be the exact typed serialization"
    );
    let key_order = [
        "\"id\":",
        "\"segments\":",
        "\"rates\":",
        "\"batch_size\":",
        "\"latency_ms\":",
    ];
    let mut at = 0;
    for key in key_order {
        let pos = r1.body[at..]
            .find(key)
            .unwrap_or_else(|| panic!("v1 body lost or reordered {key}: {}", r1.body));
        at += pos;
    }

    // v2 with an explicit empty options object and with options omitted:
    // both recover the same bits as v1.
    let v2_req = v2::RecoverRequestV2::from_raw(
        &h.samples[0].raw,
        h.samples[0].target.len(),
        h.samples[0].depart_epoch_s,
        v2::RecoverOptions::default(),
    );
    let v2_body = serde_json::to_string(&v2_req).expect("v2 request serializes");
    let r2 = client::post_json(h.addr(), "/v2/recover", &v2_body).expect("v2 roundtrip");
    assert_eq!(r2.status, 200, "body: {}", r2.body);
    let parsed2 = RecoverResponse::from_json(&r2.body).expect("well-formed v2 response");
    assert_eq!(parsed2.path(), want, "v2 defaults diverged from v1");

    let r3 = client::post_json(h.addr(), "/v2/recover", &body).expect("v2 without options");
    assert_eq!(r3.status, 200, "body: {}", r3.body);
    assert_eq!(
        RecoverResponse::from_json(&r3.body).expect("parses").path(),
        want,
        "v2 with omitted options diverged from v1"
    );
}

/// The streaming route: chunked transfer encoding, one `step` event per
/// decode step with strictly sequential indices, then **exactly one**
/// terminal `summary` whose path is bit-identical to the unary answer.
#[test]
fn v2_stream_emits_steps_then_exactly_one_terminal_summary() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 1);
    let req = h.request_for(0);
    let want = h.in_process(&req);
    let body = serde_json::to_string(&req).expect("request serializes");

    let mut live_lines = 0usize;
    let resp = client::post_stream(h.addr(), "/v2/recover/stream", &body, |_| live_lines += 1)
        .expect("stream roundtrip");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(
        resp.header("Transfer-Encoding")
            .map(str::to_ascii_lowercase),
        Some("chunked".to_string())
    );
    let events: Vec<v2::Event> = resp
        .body
        .lines()
        .map(|l| v2::Event::from_json(l).expect("well-formed event line"))
        .collect();
    assert_eq!(live_lines, events.len(), "on_line saw every event");
    assert!(!events.is_empty());
    let (terminal, steps) = events.split_last().expect("nonempty");
    let mut streamed = Vec::new();
    for (i, ev) in steps.iter().enumerate() {
        match ev {
            v2::Event::Step(s) => {
                assert_eq!(s.step, i, "step indices must be sequential");
                streamed.push((s.segment, s.rate));
            }
            other => panic!("non-terminal event {i} is not a step: {other:?}"),
        }
    }
    match terminal {
        v2::Event::Summary(s) => {
            let path: Vec<(usize, f32)> = s
                .segments
                .iter()
                .copied()
                .zip(s.rates.iter().copied())
                .collect();
            assert_eq!(path, want, "streamed summary diverged from unary recovery");
            assert_eq!(
                streamed[..],
                want[..],
                "streamed steps diverged from the path"
            );
        }
        other => panic!("terminal event is not a summary: {other:?}"),
    }
}

/// v2 input validation: malformed options are field-precise 400s, the
/// unary route refuses `options.stream`, and the stream route only
/// accepts POST.
#[test]
fn v2_validation_rejects_bad_options() {
    let _g = lock();
    let h = boot(quick_engine(), ephemeral_http(), 1);
    let req = h.request_for(0);
    let base = serde_json::to_string(&req).expect("request serializes");
    let with_options = |opts: &str| {
        let mut s = base.clone();
        s.truncate(s.len() - 1);
        format!("{s},\"options\":{opts}}}")
    };

    let r = client::post_json(
        h.addr(),
        "/v2/recover",
        &with_options("{\"head\":\"float16\"}"),
    )
    .expect("responds");
    assert_eq!(r.status, 400, "unknown head must 400: {}", r.body);
    assert!(
        r.body.contains("options.head"),
        "field-precise error: {}",
        r.body
    );

    let r = client::post_json(
        h.addr(),
        "/v2/recover",
        &with_options("{\"deadline_ms\":0}"),
    )
    .expect("responds");
    assert_eq!(r.status, 400, "zero deadline must 400: {}", r.body);

    let r = client::post_json(h.addr(), "/v2/recover", &with_options("{\"stream\":true}"))
        .expect("responds");
    assert_eq!(
        r.status, 400,
        "stream on the unary route must 400: {}",
        r.body
    );
    assert!(
        r.body.contains("/v2/recover/stream"),
        "points at the stream route: {}",
        r.body
    );

    let r = client::get(h.addr(), "/v2/recover/stream").expect("responds");
    assert_eq!(r.status, 405);
    assert_eq!(r.header("Allow"), Some("POST"));
}

/// A client-shortened v2 deadline that cannot be met streams a clean
/// terminal `error` event (`timed_out`, retryable) — never a truncated
/// or hung stream — and the new continuous-batching serving metrics are
/// exported.
#[test]
fn v2_stream_deadline_yields_terminal_error_event() {
    let _g = lock();
    let h = boot(
        EngineConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(40),
            workers: 1,
            threads_per_worker: 0,
            queue_capacity: None,
            ..EngineConfig::default()
        },
        ephemeral_http(),
        1,
    );
    let req = h.request_for(0);
    let body = serde_json::to_string(&req).expect("request serializes");
    // 1 ms budget against a 40 ms batching delay: the deadline expires
    // before (or while) the decode runs, whichever way the race falls.
    let v2_body = {
        let mut s = body.clone();
        s.truncate(s.len() - 1);
        format!("{s},\"options\":{{\"deadline_ms\":1}}}}")
    };
    let resp = client::post_stream(h.addr(), "/v2/recover/stream", &v2_body, |_| {})
        .expect("stream roundtrip");
    assert_eq!(resp.status, 200, "stream is committed before the deadline");
    let events: Vec<v2::Event> = resp
        .body
        .lines()
        .map(|l| v2::Event::from_json(l).expect("well-formed event line"))
        .collect();
    let (terminal, steps) = events.split_last().expect("at least the terminal event");
    for ev in steps {
        assert!(
            matches!(ev, v2::Event::Step(_)),
            "non-terminal must be steps"
        );
    }
    match terminal {
        v2::Event::Error(e) => {
            assert!(e.timed_out, "deadline failures are time failures");
            assert_eq!(e.code, 503, "would-be status is 503: {}", e.error);
        }
        v2::Event::Summary(_) => {
            // The tiny fixture occasionally finishes inside 1 ms; the
            // contract still holds: exactly one terminal event.
        }
        v2::Event::Step(_) => panic!("stream ended without a terminal event"),
    }

    let metrics = client::get(h.addr(), "/metrics").expect("metrics");
    for needle in [
        "rntrajrec_time_to_first_step_seconds",
        "rntrajrec_engine_admitted_total",
        "rntrajrec_engine_abandoned_cancelled_total",
    ] {
        assert!(
            metrics.body.contains(needle),
            "metrics must export {needle}"
        );
    }
}
