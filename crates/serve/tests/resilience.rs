//! Fault-injection and self-healing tests: the engine and HTTP layer
//! under deterministic chaos.
//!
//! Each test arms `rntrajrec_chaos` with a seeded spec, drives traffic,
//! and asserts the failure is (a) contained — typed errors, never hangs
//! or wedged queues — and (b) healed — crashed workers respawn, hung
//! batches are failed by the watchdog, expired members are cancelled
//! mid-decode, shed load is refused with a retryable status.
//!
//! Chaos state is process-global, so the tests serialize on a mutex and
//! disarm before releasing it.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec::wire::RecoverRequest;
use rntrajrec_models::{FeatureExtractor, SampleInput};
use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
use rntrajrec_serve::http::client;
use rntrajrec_serve::{
    EngineConfig, HttpConfig, HttpServer, QueryContext, RecoveryEngine, ServingModel, SubmitOptions,
};
use rntrajrec_synth::{SimConfig, Simulator, TrajSample};

static SEQUENTIAL: Mutex<()> = Mutex::new(());

/// Serialize tests (chaos config is process-global) and guarantee the
/// process is disarmed when the guard drops, pass or fail.
struct ChaosGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl ChaosGuard {
    fn arm(spec: &str, seed: u64) -> Self {
        let g = SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner());
        rntrajrec_chaos::configure(spec, seed).expect("valid chaos spec");
        ChaosGuard(g)
    }

    fn unarmed() -> Self {
        let g = SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner());
        rntrajrec_chaos::disarm();
        ChaosGuard(g)
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        rntrajrec_chaos::disarm();
    }
}

fn fixture(n: usize) -> (SyntheticCity, Vec<SampleInput>, Vec<TrajSample>) {
    let city = SyntheticCity::generate(CityConfig::tiny());
    let rtree = RTree::build(&city.net);
    let grid = city.net.grid(50.0);
    let fx = FeatureExtractor::new(&city.net, &rtree, grid);
    let mut sim = Simulator::new(
        &city.net,
        SimConfig {
            target_len: 9,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(11);
    let samples: Vec<TrajSample> = (0..n).map(|_| sim.sample(&mut rng, 8)).collect();
    let inputs = samples.iter().map(|s| fx.extract(s)).collect();
    (city, inputs, samples)
}

fn serving(city: &SyntheticCity) -> Arc<ServingModel> {
    let grid = city.net.grid(50.0);
    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
    Arc::new(ServingModel::new(model).expect("RNTrajRec serves"))
}

fn engine_cfg(workers: usize) -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        workers,
        threads_per_worker: 0,
        queue_capacity: None,
        supervise_every: Duration::from_millis(2),
        restart_backoff: Duration::from_millis(2),
        ..EngineConfig::default()
    }
}

/// Poll `f` until it returns true or the budget expires.
fn eventually(budget: Duration, mut f: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    f()
}

#[test]
fn supervisor_restarts_a_crashed_worker_and_fails_only_its_batch() {
    let _c = ChaosGuard::arm("engine.worker=panic@1x1", 0);
    let (city, inputs, _) = fixture(3);
    let engine = RecoveryEngine::start(serving(&city), engine_cfg(1));

    // First batch: the (only) worker panics mid-batch. The supervisor
    // must fail exactly its members with a typed error — not hang them.
    let r = engine
        .submit(inputs[0].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait_timeout(Duration::from_secs(10))
        .expect("crashed batch must be failed, not hung");
    let err = r.error.expect("member of a crashed batch fails");
    assert!(
        err.contains("worker crashed"),
        "typed crash error, got: {err}"
    );
    assert!(!r.timed_out, "a crash is not a timeout");

    // The supervisor respawns the worker (capped backoff) and service
    // resumes on the same engine.
    assert!(
        eventually(Duration::from_secs(10), || engine.stats().worker_restarts
            >= 1),
        "supervisor never recorded a restart"
    );
    let r = engine
        .submit(inputs[1].clone(), SubmitOptions::default())
        .expect("accepts after restart")
        .wait_timeout(Duration::from_secs(10))
        .expect("restarted worker must serve");
    assert!(
        r.error.is_none(),
        "post-restart request failed: {:?}",
        r.error
    );
    assert!(!r.path.is_empty());

    let stats = engine.stats();
    assert_eq!(stats.failed, 1);
    assert!(stats.completed >= 1);
}

#[test]
fn watchdog_fails_hung_batches_without_wedging_the_queue() {
    // One injected 2 s stall inside the kernel dispatch; the watchdog
    // budget is 50 ms, so the hung batch's members must come back as
    // typed timeouts long before the stall clears. Armed only once the
    // engine is up — model build also dispatches kernels and would
    // otherwise consume the x1-limited fault.
    let _c = ChaosGuard::unarmed();
    let (city, inputs, _) = fixture(2);
    let engine = RecoveryEngine::start(
        serving(&city),
        EngineConfig {
            batch_timeout: Some(Duration::from_millis(50)),
            ..engine_cfg(2)
        },
    );
    rntrajrec_chaos::configure("kernel.dispatch=delay:2000@1x1", 0).unwrap();

    let t0 = Instant::now();
    let r = engine
        .submit(inputs[0].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait_timeout(Duration::from_secs(10))
        .expect("hung batch must be failed by the watchdog, not block");
    assert!(
        t0.elapsed() < Duration::from_millis(1500),
        "watchdog must answer before the injected stall clears ({:?})",
        t0.elapsed()
    );
    let err = r.error.expect("watchdog-failed member carries an error");
    assert!(err.contains("watchdog"), "typed watchdog error, got: {err}");
    assert!(r.timed_out, "watchdog failures are time failures (503)");
    assert!(eventually(Duration::from_secs(5), || {
        engine.stats().watchdog_timeouts >= 1
    }));

    // The fault was x1-limited: the queue is not wedged — the second
    // worker (or the first, once its stall clears) keeps serving.
    let r = engine
        .submit(inputs[1].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait_timeout(Duration::from_secs(10))
        .expect("engine serves after a watchdog kill");
    assert!(r.error.is_none(), "follow-up failed: {:?}", r.error);
}

#[test]
fn expired_deadlines_cancel_members_mid_decode() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs, _) = fixture(2);
    let engine = RecoveryEngine::start(serving(&city), engine_cfg(1));

    // An already-expired deadline: the member is cancelled through the
    // decoder's compaction path and completes with a typed timeout.
    let r = engine
        .submit(
            inputs[0].clone(),
            SubmitOptions::new().deadline(Instant::now()),
        )
        .expect("accepts")
        .wait_timeout(Duration::from_secs(10))
        .expect("expired member completes with an error, never hangs");
    let err = r.error.expect("expired member fails");
    assert!(err.contains("deadline"), "typed deadline error, got: {err}");
    assert!(r.timed_out);
    assert!(r.path.is_empty());

    // A generous deadline is untouched.
    let r = engine
        .submit(
            inputs[1].clone(),
            SubmitOptions::new().deadline(Instant::now() + Duration::from_secs(60)),
        )
        .expect("accepts")
        .wait_timeout(Duration::from_secs(10))
        .expect("unexpired member completes");
    assert!(r.error.is_none(), "unexpired member failed: {:?}", r.error);
    assert!(!r.path.is_empty());
    assert!(eventually(Duration::from_secs(5), || {
        engine.stats().deadline_cancelled >= 1
    }));
}

#[test]
fn mixed_deadline_batch_leaves_survivors_bit_identical() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs, _) = fixture(4);
    let model = serving(&city);

    // Reference: each input recovered alone, no deadlines.
    let reference = RecoveryEngine::start(Arc::clone(&model), engine_cfg(1));
    let want: Vec<Vec<(usize, f32)>> = inputs
        .iter()
        .map(|i| {
            let r = reference.recover(i.clone());
            assert!(r.error.is_none());
            r.path
        })
        .collect();
    drop(reference);

    // One fused batch where members 1 and 3 are pre-expired: they are
    // compacted out at step 0 and the survivors' rows must be bitwise
    // what they were without the cancelled neighbours.
    let engine = RecoveryEngine::start(
        model,
        EngineConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(200),
            ..engine_cfg(1)
        },
    );
    let handles: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let deadline = if i % 2 == 1 {
                Some(Instant::now() - Duration::from_millis(1))
            } else {
                Some(Instant::now() + Duration::from_secs(60))
            };
            let mut opts = SubmitOptions::new();
            opts.deadline = deadline;
            engine.submit(input.clone(), opts).expect("accepts")
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h
            .wait_timeout(Duration::from_secs(10))
            .expect("no member of a mixed batch may hang");
        if i % 2 == 1 {
            assert!(r.timed_out, "expired member {i} must time out");
        } else {
            assert!(r.error.is_none(), "survivor {i} failed: {:?}", r.error);
            assert_eq!(r.path, want[i], "survivor {i} not bit-identical");
        }
    }
}

#[test]
fn brownout_override_walks_the_ladder() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs, _) = fixture(2);
    let engine = RecoveryEngine::start(serving(&city), engine_cfg(1));
    assert_eq!(engine.brownout_mode(), "normal");

    // Forced shed: submissions are refused with the typed brownout error.
    engine.set_brownout_override(Some(3));
    assert_eq!(engine.brownout_mode(), "shed");
    match engine.submit(inputs[0].clone(), SubmitOptions::default()) {
        Err(rntrajrec_serve::EngineError::Brownout) => {}
        other => panic!("shed level must refuse submissions, got {other:?}"),
    }
    assert!(engine.stats().rejected >= 1);

    // Degraded head: requests are served (by the int8 head).
    engine.set_brownout_override(Some(1));
    assert_eq!(engine.brownout_mode(), "degraded_head");
    let r = engine
        .submit(inputs[0].clone(), SubmitOptions::default())
        .expect("degraded mode serves")
        .wait_timeout(Duration::from_secs(10))
        .expect("degraded mode completes");
    assert!(r.error.is_none(), "degraded request failed: {:?}", r.error);
    assert!(!r.path.is_empty());

    // Back to auto: the controller sees an idle engine and recovers.
    engine.set_brownout_override(None);
    assert!(
        eventually(Duration::from_secs(10), || engine.brownout_mode()
            == "normal"),
        "idle engine must settle back to normal, stuck at {}",
        engine.brownout_mode()
    );
    let r = engine
        .submit(inputs[1].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait();
    assert!(r.error.is_none());
    assert!(engine.stats().brownout_shifts >= 2);
}

#[test]
fn http_write_fault_is_recovered_by_client_retry() {
    // Drop exactly one response on the floor at the write point: the
    // client's first attempt dies on a closed socket, the jittered
    // retry succeeds, and the payload is the normal recovery.
    let _c = ChaosGuard::arm("http.write=error@1x1", 0);
    let (city, _, samples) = fixture(1);
    let ctx = Arc::new(QueryContext::new(city.net.clone(), 50.0));
    let engine = Arc::new(RecoveryEngine::start(serving(&city), engine_cfg(1)));
    let server = HttpServer::start(
        Arc::clone(&engine),
        ctx,
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            ..HttpConfig::default()
        },
        None,
    )
    .expect("bind");

    let s = &samples[0];
    let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
    let body = serde_json::to_string(&req).expect("serializes");
    let policy = client::RetryPolicy {
        max_retries: 3,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(100),
        seed: 1,
    };
    let resp = client::request_with_retry(
        server.local_addr(),
        "POST",
        "/v1/recover",
        Some(&body),
        &policy,
    )
    .expect("retry must absorb the single write fault");
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    let snap = rntrajrec_chaos::snapshot();
    let write = snap.iter().find(|p| p.point == "http.write").unwrap();
    assert_eq!(write.fired, 1, "exactly one injected write fault");
    server.shutdown();
}

#[test]
fn submit_fault_maps_to_typed_503_with_retry_after() {
    let _c = ChaosGuard::arm("engine.submit=error@1x1", 0);
    let (city, _, samples) = fixture(1);
    let ctx = Arc::new(QueryContext::new(city.net.clone(), 50.0));
    let engine = Arc::new(RecoveryEngine::start(serving(&city), engine_cfg(1)));
    let server = HttpServer::start(
        Arc::clone(&engine),
        ctx,
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            ..HttpConfig::default()
        },
        None,
    )
    .expect("bind");

    let s = &samples[0];
    let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
    let body = serde_json::to_string(&req).expect("serializes");

    // Injected submit fault → typed 503 naming the point, with a
    // Retry-After the client policy can honor…
    let resp = client::post_json(server.local_addr(), "/v1/recover", &body).expect("http");
    assert_eq!(resp.status, 503, "body: {}", resp.body);
    assert!(resp.body.contains("engine.submit"), "body: {}", resp.body);
    let retry_after = resp
        .header("Retry-After")
        .expect("503 carries Retry-After")
        .parse::<u64>()
        .expect("integral seconds");
    assert!((1..=60).contains(&retry_after));

    // …and the x1 limit means the retry itself succeeds.
    let resp = client::post_json(server.local_addr(), "/v1/recover", &body).expect("http");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    server.shutdown();
}

#[test]
fn chaos_and_resilience_metrics_are_exported() {
    let _c = ChaosGuard::arm("engine.worker=panic@1x1", 7);
    let (city, _, samples) = fixture(1);
    let ctx = Arc::new(QueryContext::new(city.net.clone(), 50.0));
    let engine = Arc::new(RecoveryEngine::start(serving(&city), engine_cfg(1)));
    let server = HttpServer::start(
        Arc::clone(&engine),
        ctx,
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            ..HttpConfig::default()
        },
        None,
    )
    .expect("bind");

    let s = &samples[0];
    let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
    let body = serde_json::to_string(&req).expect("serializes");
    // First request rides the crashing batch → 503 (timed out or failed
    // by supervisor → 500/503 depending on classification; crash is 500).
    let resp = client::post_json(server.local_addr(), "/v1/recover", &body).expect("http");
    assert_eq!(resp.status, 500, "body: {}", resp.body);
    assert!(
        eventually(Duration::from_secs(10), || engine.stats().worker_restarts
            >= 1),
        "restart not observed"
    );

    let metrics = client::get(server.local_addr(), "/metrics")
        .expect("metrics")
        .body;
    for needle in [
        "rntrajrec_engine_worker_restarts_total",
        "rntrajrec_engine_watchdog_timeouts_total",
        "rntrajrec_engine_deadline_cancelled_total",
        "rntrajrec_engine_brownout_mode{city=\"default\",mode=\"normal\"} 1",
        "rntrajrec_engine_brownout_level",
        "rntrajrec_engine_drain_rate_per_sec",
        "rntrajrec_chaos_enabled 1",
        "rntrajrec_chaos_injected_total{point=\"engine.worker\",kind=\"panic\"} 1",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }
    let restarts_line = metrics
        .lines()
        .find(|l| l.starts_with("rntrajrec_engine_worker_restarts_total"))
        .unwrap();
    let restarts: u64 = restarts_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(restarts >= 1, "restart counter must be visible on /metrics");

    // The exposition stays promlint-clean with every new series.
    let findings = rntrajrec_obs::promlint::lint(&metrics);
    assert!(findings.is_empty(), "promlint findings: {findings:?}");
    server.shutdown();
}

#[test]
fn chaos_off_points_are_transparent() {
    let _c = ChaosGuard::unarmed();
    // Disarmed fault points must be invisible: same results, no errors.
    let (city, inputs, _) = fixture(2);
    let engine = RecoveryEngine::start(serving(&city), engine_cfg(1));
    for input in &inputs {
        let r = engine.recover(input.clone());
        assert!(r.error.is_none());
        assert!(!r.path.is_empty());
    }
    assert!(rntrajrec_chaos::snapshot().is_empty());
    assert!(!rntrajrec_chaos::enabled());
}
