//! Continuous-batching tests: the engine admits newcomers into a decode
//! batch that is already running, streams per-step events, and cancels
//! members whose handle was dropped — all without perturbing incumbent
//! results by a single bit.
//!
//! Decode steps on the tiny fixture are microseconds, so tests that need
//! a request to still be decoding when the next one arrives arm a
//! per-kernel chaos delay (`kernel.dispatch=delay:1@1.0`) *after* model
//! build; that stretches one decode into tens of milliseconds and makes
//! the mid-flight window reliable. Chaos state is process-global, so the
//! tests serialize on a mutex and disarm on drop.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec_models::{FeatureExtractor, SampleInput};
use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
use rntrajrec_serve::{EngineConfig, RecoveryEngine, ServingModel, StepWait, SubmitOptions};

static SEQUENTIAL: Mutex<()> = Mutex::new(());

struct ChaosGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl ChaosGuard {
    fn unarmed() -> Self {
        let g = SEQUENTIAL.lock().unwrap_or_else(|e| e.into_inner());
        rntrajrec_chaos::disarm();
        ChaosGuard(g)
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        rntrajrec_chaos::disarm();
    }
}

/// Slow every kernel dispatch by 1 ms so in-flight decodes stay open
/// long enough for a newcomer to arrive mid-batch.
fn slow_decode() {
    rntrajrec_chaos::configure("kernel.dispatch=delay:1@1.0", 0).expect("valid chaos spec");
}

fn fixture(n: usize) -> (SyntheticCity, Vec<SampleInput>) {
    let city = SyntheticCity::generate(CityConfig::tiny());
    let rtree = RTree::build(&city.net);
    let grid = city.net.grid(50.0);
    let fx = FeatureExtractor::new(&city.net, &rtree, grid);
    let mut sim = Simulator::new(
        &city.net,
        rntrajrec_synth::SimConfig {
            target_len: 9,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(41);
    let inputs = (0..n)
        .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
        .collect();
    (city, inputs)
}

use rntrajrec_synth::Simulator;

fn serving(city: &SyntheticCity) -> Arc<ServingModel> {
    let grid = city.net.grid(50.0);
    let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
    Arc::new(ServingModel::new(model).expect("RNTrajRec serves"))
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        workers: 1,
        threads_per_worker: 0,
        queue_capacity: None,
        ..EngineConfig::default()
    }
}

/// Poll `f` until it returns true or the budget expires.
fn eventually(budget: Duration, mut f: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    f()
}

/// Streamed step events reproduce the final path exactly: one event per
/// decode step, indices strictly sequential, payloads bit-identical to
/// the corresponding path entries.
#[test]
fn streamed_steps_match_final_path_bitwise() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(1);
    let engine = RecoveryEngine::start(serving(&city), engine_cfg());

    let handle = engine
        .submit(inputs[0].clone(), SubmitOptions::new().stream())
        .expect("accepts");
    let steps: Vec<_> = handle.steps().collect();
    let r = handle.wait();
    assert!(r.error.is_none(), "streamed request failed: {:?}", r.error);
    assert_eq!(steps.len(), r.path.len(), "one event per decoded step");
    for (i, s) in steps.iter().enumerate() {
        assert_eq!(s.id, r.id, "event carries the submission id");
        assert_eq!(s.step, i, "step indices must be sequential");
        assert_eq!(
            (s.segment, s.rate),
            r.path[i],
            "step {i} event diverged from the final path"
        );
        assert!(s.logprob <= 0.0, "log-probability must be non-positive");
    }
}

/// A request that arrives while a batch is decoding is admitted into it
/// mid-flight, and *both* the incumbent and the newcomer finish
/// bit-identical to running alone.
#[test]
fn mid_decode_admission_leaves_members_bit_identical() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(2);
    let model = serving(&city);
    let want: Vec<Vec<(usize, f32)>> = inputs.iter().map(|i| model.recover(i)).collect();
    let engine = RecoveryEngine::start(model, engine_cfg());
    slow_decode();

    let a = engine
        .submit(inputs[0].clone(), SubmitOptions::new().stream())
        .expect("accepts");
    // Wait for decode to actually start, then enqueue the newcomer: the
    // worker checks the queue between steps and must splice it in.
    match a.next_step(Duration::from_secs(30)) {
        StepWait::Step(_) => {}
        other => panic!("expected a first step, got {other:?}"),
    }
    let b = engine
        .submit(inputs[1].clone(), SubmitOptions::default())
        .expect("accepts");

    let ra = a
        .wait_timeout(Duration::from_secs(60))
        .expect("A completes");
    let rb = b
        .wait_timeout(Duration::from_secs(60))
        .expect("B completes");
    rntrajrec_chaos::disarm();

    assert!(ra.error.is_none(), "incumbent failed: {:?}", ra.error);
    assert!(rb.error.is_none(), "newcomer failed: {:?}", rb.error);
    assert_eq!(ra.path, want[0], "incumbent not bit-identical");
    assert_eq!(rb.path, want[1], "newcomer not bit-identical");
    let stats = engine.stats();
    assert!(
        stats.admitted >= 1,
        "newcomer was never admitted mid-decode (admitted = {})",
        stats.admitted
    );
    assert_eq!(rb.batch_size, 2, "newcomer joined a 2-member session");
}

/// A newcomer whose deadline already expired is refused at the admission
/// gate (or cancelled at its first step) — it gets a typed timeout, and
/// the incumbent is untouched.
#[test]
fn pre_expired_newcomer_is_refused_not_decoded() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(2);
    let model = serving(&city);
    let want = model.recover(&inputs[0]);
    let engine = RecoveryEngine::start(model, engine_cfg());
    slow_decode();

    let a = engine
        .submit(inputs[0].clone(), SubmitOptions::new().stream())
        .expect("accepts");
    match a.next_step(Duration::from_secs(30)) {
        StepWait::Step(_) => {}
        other => panic!("expected a first step, got {other:?}"),
    }
    let b = engine
        .submit(
            inputs[1].clone(),
            SubmitOptions::new().deadline(Instant::now() - Duration::from_millis(1)),
        )
        .expect("accepts");

    let rb = b.wait_timeout(Duration::from_secs(60)).expect("B answered");
    let ra = a
        .wait_timeout(Duration::from_secs(60))
        .expect("A completes");
    rntrajrec_chaos::disarm();

    let err = rb.error.expect("expired newcomer must fail");
    assert!(err.contains("deadline"), "typed deadline error, got: {err}");
    assert!(rb.timed_out);
    assert!(rb.path.is_empty());
    assert!(ra.error.is_none(), "incumbent failed: {:?}", ra.error);
    assert_eq!(ra.path, want, "incumbent perturbed by refused newcomer");
}

/// Brownout levels ≥ 2 already shrink batches; growing one mid-decode
/// would fight that, so admission is refused and the newcomer waits for
/// its own (smaller, degraded) batch instead.
#[test]
fn brownout_refuses_admission_but_still_serves() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(2);
    let engine = RecoveryEngine::start(serving(&city), engine_cfg());
    engine.set_brownout_override(Some(2));
    slow_decode();

    let a = engine
        .submit(inputs[0].clone(), SubmitOptions::new().stream())
        .expect("level 2 serves");
    match a.next_step(Duration::from_secs(30)) {
        StepWait::Step(_) => {}
        other => panic!("expected a first step, got {other:?}"),
    }
    let b = engine
        .submit(inputs[1].clone(), SubmitOptions::default())
        .expect("level 2 serves");

    let ra = a
        .wait_timeout(Duration::from_secs(60))
        .expect("A completes");
    let rb = b
        .wait_timeout(Duration::from_secs(60))
        .expect("B completes");
    rntrajrec_chaos::disarm();

    assert!(ra.error.is_none(), "incumbent failed: {:?}", ra.error);
    assert!(
        rb.error.is_none(),
        "held-back request failed: {:?}",
        rb.error
    );
    assert_eq!(
        engine.stats().admitted,
        0,
        "brownout level 2 must refuse mid-decode admission"
    );
    assert_eq!(rb.batch_size, 1, "held-back request forms its own batch");
}

/// Dropping a `RecoveryHandle` cancels its member mid-decode through the
/// same compaction path deadlines use — abandoned work is cut, and the
/// engine keeps serving.
#[test]
fn dropped_handle_cancels_member_mid_decode() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(2);
    let model = serving(&city);
    let want = model.recover(&inputs[1]);
    let engine = RecoveryEngine::start(model, engine_cfg());
    slow_decode();

    let a = engine
        .submit(inputs[0].clone(), SubmitOptions::new().stream())
        .expect("accepts");
    match a.next_step(Duration::from_secs(30)) {
        StepWait::Step(_) => {}
        other => panic!("expected a first step, got {other:?}"),
    }
    drop(a); // client walked away mid-decode

    assert!(
        eventually(Duration::from_secs(30), || {
            engine.stats().abandoned_cancelled >= 1
        }),
        "abandoned member was never cancelled mid-decode"
    );
    rntrajrec_chaos::disarm();

    // The worker survives the cut and serves the next request exactly.
    let r = engine
        .submit(inputs[1].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait_timeout(Duration::from_secs(60))
        .expect("engine serves after an abandoned cut");
    assert!(r.error.is_none(), "follow-up failed: {:?}", r.error);
    assert_eq!(r.path, want);
}

/// The `SubmitOptions` combinations the removed pre-PR-9 shims covered
/// (plain, traced, traced + deadline) all route through the one `submit`
/// entry point with identical semantics.
#[test]
fn submit_options_cover_former_shim_combinations() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(1);
    let model = serving(&city);
    let want = model.recover(&inputs[0]);
    let engine = RecoveryEngine::start(model, engine_cfg());

    let r = engine
        .submit(inputs[0].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait();
    assert!(r.error.is_none());
    assert_eq!(r.path, want);

    let r = engine
        .submit(inputs[0].clone(), SubmitOptions::new().trace(None))
        .expect("accepts")
        .wait();
    assert_eq!(r.path, want);

    let r = engine
        .submit(
            inputs[0].clone(),
            SubmitOptions::new()
                .trace(None)
                .deadline(Instant::now() + Duration::from_secs(60)),
        )
        .expect("accepts")
        .wait();
    assert_eq!(r.path, want);
}

/// `poll` is non-consuming: `None` while in flight, then a cached
/// reference once delivered, and `wait` still works afterwards.
#[test]
fn poll_then_wait_delivers_once() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(1);
    let engine = RecoveryEngine::start(serving(&city), engine_cfg());

    let mut handle = engine
        .submit(inputs[0].clone(), SubmitOptions::default())
        .expect("accepts");
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.poll().is_none() {
        assert!(Instant::now() < deadline, "request never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let peeked = handle.poll().expect("cached after first Some").path.clone();
    let r = handle.wait();
    assert!(r.error.is_none());
    assert_eq!(r.path, peeked, "wait must deliver the same cached result");
}

/// Hot-swapping the model over a live engine: requests submitted after
/// the swap are served bit-identically to the new model's direct
/// inference, with no restart, drain, or failed request.
#[test]
fn swap_model_serves_new_weights_for_new_batches() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(1);
    let model_a = serving(&city);
    let model_b = {
        let grid = city.net.grid(50.0);
        let m = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 8);
        Arc::new(ServingModel::new(m).expect("RNTrajRec serves"))
    };
    let want_a = model_a.recover(&inputs[0]);
    let want_b = model_b.recover(&inputs[0]);

    let engine = RecoveryEngine::start(model_a, engine_cfg());
    let r = engine
        .submit(inputs[0].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait();
    assert!(r.error.is_none());
    assert_eq!(r.path, want_a, "pre-swap batches run the original model");

    engine.swap_model(model_b);
    let r = engine
        .submit(inputs[0].clone(), SubmitOptions::default())
        .expect("accepts")
        .wait();
    assert!(r.error.is_none());
    assert_eq!(r.path, want_b, "post-swap batches run the new model");
    assert_eq!(engine.stats().model_swaps, 1);
}

/// A streaming consumer that stops draining its step queue is degraded
/// to summary-only: its step stream ends early, the terminal result
/// still arrives intact, and the engine counts the lagged stream.
#[test]
fn slow_stream_consumer_degrades_to_summary_only() {
    let _c = ChaosGuard::unarmed();
    let (city, inputs) = fixture(1);
    let engine = RecoveryEngine::start(
        serving(&city),
        EngineConfig {
            // Two buffered steps, then the decode loop closes the sink:
            // the fixture decodes 9 steps, so an undrained consumer is
            // guaranteed to lag.
            stream_queue: 2,
            ..engine_cfg()
        },
    );

    let handle = engine
        .submit(inputs[0].clone(), SubmitOptions::new().stream())
        .expect("accepts");
    // Do not touch the step queue until the decode has fully finished.
    let r = handle
        .wait_timeout(Duration::from_secs(60))
        .expect("completes");
    assert!(
        r.error.is_none(),
        "lagging must not fail the request: {:?}",
        r.error
    );
    assert_eq!(r.path.len(), 9, "terminal result is intact");
    assert_eq!(engine.stats().stream_lagged, 1, "lagged stream counted");
}
