//! Brownout degradation: a load-watermark controller that trades result
//! cost for survival under pressure.
//!
//! The controller watches two signals the engine already produces — queue
//! depth and queue-wait p99 — and steps through a ladder of degraded
//! modes, one level per tick:
//!
//! | level | mode            | effect                                        |
//! |-------|-----------------|-----------------------------------------------|
//! | 0     | `normal`        | configured head, configured batching          |
//! | 1     | `degraded_head` | decoder segment head → int8 quantized         |
//! | 2     | `shrink_batch`  | + `max_batch`/2 and `max_delay`/4             |
//! | 3     | `shed`          | + new submissions refused (`503 Retry-After`) |
//!
//! Stepping **up** is immediate (pressure at the next level's watermark);
//! stepping **down** requires the load to fall below `exit_fraction` of
//! the current level's watermarks and *stay* there for
//! [`BrownoutConfig::dwell_ticks`] consecutive ticks — the hysteresis
//! that keeps the mode from flapping when load hovers at a threshold.
//!
//! The controller is a pure function of its observations (no clocks, no
//! atomics), so every transition is unit-testable; the engine's
//! supervisor thread feeds it once per tick and applies the resulting
//! level to the live batching knobs.

/// Watermarks and hysteresis for the brownout ladder.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Queue-depth watermark to *enter* level `i + 1`.
    pub enter_depth: [usize; 3],
    /// Queue-wait p99 watermark (milliseconds) to *enter* level `i + 1`.
    pub enter_p99_ms: [f64; 3],
    /// To step down, load must fall below `exit_fraction ×` the current
    /// level's enter watermarks (both of them).
    pub exit_fraction: f64,
    /// Consecutive calm ticks required before stepping down one level.
    pub dwell_ticks: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            enter_depth: [16, 32, 64],
            enter_p99_ms: [50.0, 200.0, 1000.0],
            exit_fraction: 0.5,
            dwell_ticks: 50,
        }
    }
}

impl BrownoutConfig {
    /// Scale the depth watermarks to a bounded queue: enter the ladder at
    /// 1/4, 1/2, and 3/4 of `capacity` (each at least 1), keeping the
    /// default latency watermarks.
    pub fn for_queue_capacity(capacity: usize) -> Self {
        Self {
            enter_depth: [
                (capacity / 4).max(1),
                (capacity / 2).max(2),
                (capacity * 3 / 4).max(3),
            ],
            ..Self::default()
        }
    }
}

/// Names for the four ladder levels, used on `/metrics` and in
/// `EngineStats`.
pub const MODE_NAMES: [&str; 4] = ["normal", "degraded_head", "shrink_batch", "shed"];

/// Human-readable name of a ladder level (out-of-range clamps to `shed`).
pub fn mode_name(level: u8) -> &'static str {
    MODE_NAMES[(level as usize).min(MODE_NAMES.len() - 1)]
}

/// The ladder state machine; see the module docs for the transition
/// rules.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    level: u8,
    /// Consecutive calm ticks observed at the current level.
    calm: u32,
}

impl BrownoutController {
    pub fn new(cfg: BrownoutConfig) -> Self {
        Self {
            cfg,
            level: 0,
            calm: 0,
        }
    }

    /// Current ladder level (0 = normal … 3 = shed).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Feed one tick's load observation and return the (possibly new)
    /// level. At most one level of movement per tick, in either
    /// direction.
    pub fn observe(&mut self, queue_depth: usize, queue_wait_p99_ms: f64) -> u8 {
        let pressed = |level: u8| {
            let i = (level - 1) as usize;
            queue_depth >= self.cfg.enter_depth[i] || queue_wait_p99_ms >= self.cfg.enter_p99_ms[i]
        };
        if self.level < 3 && pressed(self.level + 1) {
            self.level += 1;
            self.calm = 0;
            return self.level;
        }
        if self.level > 0 {
            let i = (self.level - 1) as usize;
            let calm_now = (queue_depth as f64)
                < self.cfg.enter_depth[i] as f64 * self.cfg.exit_fraction
                && queue_wait_p99_ms < self.cfg.enter_p99_ms[i] * self.cfg.exit_fraction;
            if calm_now {
                self.calm += 1;
                if self.calm >= self.cfg.dwell_ticks {
                    self.level -= 1;
                    self.calm = 0;
                }
            } else {
                self.calm = 0;
            }
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BrownoutConfig {
        BrownoutConfig {
            enter_depth: [10, 20, 40],
            enter_p99_ms: [50.0, 200.0, 1000.0],
            exit_fraction: 0.5,
            dwell_ticks: 3,
        }
    }

    #[test]
    fn idle_stays_normal() {
        let mut c = BrownoutController::new(cfg());
        for _ in 0..100 {
            assert_eq!(c.observe(0, 0.0), 0);
        }
    }

    #[test]
    fn sustained_pressure_climbs_one_level_per_tick_to_shed() {
        let mut c = BrownoutController::new(cfg());
        assert_eq!(c.observe(100, 0.0), 1);
        assert_eq!(c.observe(100, 0.0), 2);
        assert_eq!(c.observe(100, 0.0), 3);
        assert_eq!(c.observe(100, 0.0), 3, "shed is the ceiling");
    }

    #[test]
    fn latency_watermark_alone_triggers_entry() {
        let mut c = BrownoutController::new(cfg());
        assert_eq!(c.observe(0, 60.0), 1, "p99 above 50ms enters level 1");
    }

    #[test]
    fn step_down_requires_dwell_below_exit_watermark() {
        let mut c = BrownoutController::new(cfg());
        c.observe(15, 0.0);
        assert_eq!(c.level(), 1);
        // Below enter (10) but not below exit (5): hold the level forever.
        for _ in 0..20 {
            assert_eq!(c.observe(7, 0.0), 1, "hysteresis band holds the level");
        }
        // Calm (< 5 and < 25ms) must persist dwell_ticks before stepping.
        assert_eq!(c.observe(2, 0.0), 1);
        assert_eq!(c.observe(2, 0.0), 1);
        assert_eq!(c.observe(2, 0.0), 0, "third calm tick steps down");
    }

    #[test]
    fn pressure_blip_resets_the_dwell_counter() {
        let mut c = BrownoutController::new(cfg());
        c.observe(15, 0.0);
        c.observe(2, 0.0);
        c.observe(2, 0.0);
        c.observe(7, 0.0); // in the hysteresis band — calm streak resets
        assert_eq!(c.observe(2, 0.0), 1);
        assert_eq!(c.observe(2, 0.0), 1);
        assert_eq!(c.observe(2, 0.0), 0);
    }

    #[test]
    fn descent_is_also_one_level_per_dwell() {
        let mut c = BrownoutController::new(cfg());
        for _ in 0..3 {
            c.observe(100, 2000.0);
        }
        assert_eq!(c.level(), 3);
        let mut downs = Vec::new();
        for _ in 0..12 {
            downs.push(c.observe(0, 0.0));
        }
        assert_eq!(downs, vec![3, 3, 2, 2, 2, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn mode_names_cover_the_ladder() {
        assert_eq!(mode_name(0), "normal");
        assert_eq!(mode_name(1), "degraded_head");
        assert_eq!(mode_name(2), "shrink_batch");
        assert_eq!(mode_name(3), "shed");
        assert_eq!(mode_name(200), "shed", "out of range clamps");
    }

    #[test]
    fn capacity_scaled_watermarks() {
        let c = BrownoutConfig::for_queue_capacity(64);
        assert_eq!(c.enter_depth, [16, 32, 48]);
        let tiny = BrownoutConfig::for_queue_capacity(1);
        assert_eq!(
            tiny.enter_depth,
            [1, 2, 3],
            "floors keep the ladder ordered"
        );
    }
}
