//! Dependency-free HTTP/1.1 front-end over the micro-batching engine.
//!
//! The network layer the ROADMAP's serving milestone calls for: a
//! [`TcpListener`] acceptor thread feeding a bounded connection queue, a
//! small pool of connection workers speaking enough HTTP/1.1 (persistent
//! connections, `Content-Length` bodies) for real clients, and the wire
//! endpoints:
//!
//! * `POST /v1/recover` — a [`rntrajrec::wire::RecoverRequest`] JSON body
//!   (raw GPS points + target length) is feature-extracted through the
//!   shared [`QueryContext`] and dispatched into the [`RecoveryEngine`];
//!   the response streams back the recovered `(segment, rate)` sequence,
//!   **bit-identical** to in-process engine dispatch (integration-tested
//!   in `tests/http_roundtrip.rs`).
//! * `GET /healthz` — liveness + live queue gauges.
//! * `GET /metrics` — Prometheus text format (passes
//!   `rntrajrec_obs::promlint`): queue depth, in-flight batches,
//!   admission-control shed counts, p50/p99 recover latency, build
//!   info + uptime, thread-pool dispatch counters, the kernel-layer
//!   matmul counter, and real histogram buckets per phase (queue wait,
//!   encoder, decoder, serialize, end-to-end) plus batch size/occupancy.
//! * `GET /debug/trace?last=N` — Chrome trace-event JSON (load it in
//!   `chrome://tracing` or Perfetto) for the last `N` completed traced
//!   requests: one process lane per request, spans from socket read to
//!   kernel with per-span matmul counts.
//! * `GET /v1/example` — an optional server-provided example request body
//!   (lets smoke tests post a valid request without hand-built fixtures);
//!   `?city=NAME` selects a shard on multi-city servers.
//! * `POST /admin/reload` — `{"city": "...", "path": "..."}` hot-swaps one
//!   shard's model from a versioned artifact with zero downtime (see
//!   [`crate::shard`]); a corrupt or mismatched artifact is refused with
//!   the old model still serving.
//!
//! Every recover route resolves its request to a [`CityShard`] first: a
//! single-shard server routes unconditionally (byte-for-byte the
//! pre-shard behaviour), a multi-city server answers `404` for
//! trajectories outside every shard and `422` for trajectories that
//! straddle two.
//!
//! # Request tracing
//!
//! When tracing is enabled (`rntrajrec_obs::set_enabled`, on by default
//! in `serve_http`), each `POST /v1/recover` is minted a request id at
//! accept and its lifecycle recorded as a span tree:
//! `http.read → parse → queue.wait → batch.assemble →
//! encoder.fused → decoder.step[i] → serialize → http.write` under one
//! `request` root. Spans produced by the engine worker for a fused batch
//! carry *all* member request ids. The root span is recorded after the
//! response bytes are written, so a request visible in `/debug/trace` is
//! always complete.
//!
//! # Admission control
//!
//! Three load-shedding gates, each explicit — a saturated server answers
//! quickly rather than queueing without bound or dropping silently:
//!
//! 1. **Connection backlog** — accepted connections the workers have not
//!    picked up yet are bounded ([`HttpConfig::connection_backlog`]);
//!    beyond it the acceptor answers `503` + `Retry-After` and closes.
//! 2. **Engine queue** — [`RecoveryEngine::submit`] against the
//!    engine's bounded queue ([`EngineConfig::queue_capacity`]); an
//!    [`EngineError::Overloaded`] maps to `429` + `Retry-After`.
//! 3. **Deadline budget** — each request gets
//!    [`HttpConfig::deadline`] from read-complete to answer; an engine
//!    result that misses it maps to `503` + `Retry-After` (the engine
//!    still finishes the work; only the delivery is abandoned).
//!
//! # Graceful drain
//!
//! [`HttpServer::shutdown`] stops the acceptor (no new connections),
//! lets every connection worker finish its in-flight request, closes
//! persistent connections at the next request boundary, and joins all
//! threads. Engine workers drain their queue when the last engine handle
//! drops — `serve_http` wires this to `SIGTERM`.
//!
//! [`EngineConfig::queue_capacity`]: crate::EngineConfig::queue_capacity

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rntrajrec::wire::{v2, ErrorBody, RecoverRequest, RecoverResponse};
use rntrajrec_models::SampleInput;
use rntrajrec_nn::kernels;

use crate::shard::{CityShard, RouteError, ShardRouter};
use crate::{EngineError, QueryContext, RecoveryEngine, RecoveryHandle, StepWait, SubmitOptions};

/// Network-layer knobs.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port — see
    /// [`HttpServer::local_addr`]).
    pub addr: String,
    /// Connection-handler threads. Size it at least as large as the
    /// engine's `max_batch` if concurrent HTTP clients should be able to
    /// fill a whole micro-batch.
    pub connection_workers: usize,
    /// Accepted-but-unhandled connections the acceptor may hold before
    /// shedding with `503`.
    pub connection_backlog: usize,
    /// Per-request completion budget; an engine result missing it maps to
    /// `503` + `Retry-After`.
    pub deadline: Duration,
    /// Request bodies larger than this are refused with `413`.
    pub max_body_bytes: usize,
    /// `Retry-After` header value (seconds) on `429`/`503` responses.
    pub retry_after_secs: u64,
    /// A connection that has started a request but not delivered all of
    /// it within this budget gets `408` and is closed — a slow or stalled
    /// client must not pin a connection worker (the pool is small).
    pub request_read_timeout: Duration,
    /// A persistent connection idle (no request in progress) this long is
    /// closed; workers return to the pool.
    pub idle_timeout: Duration,
    /// Ring capacity of the latency sample backing the `/metrics`
    /// quantile gauges (`serve_http --latency-ring`). A bigger ring
    /// makes p99 steadier under sustained load; a smaller one tracks
    /// recent behaviour faster.
    pub latency_ring: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            connection_workers: 4,
            connection_backlog: 64,
            deadline: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            retry_after_secs: 1,
            request_read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            latency_ring: 1024,
        }
    }
}
/// Header-section cap (request line + headers).
const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Socket read poll interval: bounds shutdown/idle/stall responsiveness.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

struct HttpCounters {
    connections: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    shed_backlog: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    /// Ring capacity for `latencies_ms` ([`HttpConfig::latency_ring`]).
    latency_ring: usize,
    /// Completed `/v1/recover` latencies (ms), most recent `latency_ring`.
    latencies_ms: Mutex<VecDeque<f64>>,
}

impl Default for HttpCounters {
    fn default() -> Self {
        Self::new(HttpConfig::default().latency_ring)
    }
}

impl HttpCounters {
    fn new(latency_ring: usize) -> Self {
        Self {
            connections: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            shed_backlog: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            latency_ring: latency_ring.max(1),
            latencies_ms: Mutex::new(VecDeque::new()),
        }
    }

    fn record_status(&self, status: u16) {
        let c = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn record_latency(&self, ms: f64) {
        let mut ring = self.latencies_ms.lock().unwrap();
        if ring.len() >= self.latency_ring {
            ring.pop_front();
        }
        ring.push_back(ms);
    }

    /// Ceil-based nearest-rank quantiles (rank `⌈p·n⌉`, 1-indexed). The
    /// previous `round((n-1)·p)` estimator disagreed with nearest rank
    /// inconsistently across ring sizes: p99 on a 67-sample ring picked
    /// rank 66 (under-reporting the tail) while small rings (8/10/50)
    /// happened to pick the max, and p50 on even-length rings rounded
    /// half away from zero to rank `n/2 + 1` instead of `n/2`.
    /// Ceil-based nearest rank always returns the smallest sample
    /// covering the requested fraction, for any ring length (pinned by
    /// the `quantile` unit tests).
    fn latency_quantiles(&self) -> (f64, f64) {
        let ring = self.latencies_ms.lock().unwrap();
        if ring.is_empty() {
            return (0.0, 0.0);
        }
        let mut sorted: Vec<f64> = ring.iter().copied().collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pick = |p: f64| {
            let rank = (sorted.len() as f64 * p).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        (pick(0.50), pick(0.99))
    }
}

/// Adaptive `Retry-After` hint: how long until the queue ahead of a
/// retrying client has drained, at the engine's observed completion
/// rate.
///
/// `ceil(queue_depth / drain_rate)`, clamped to `[1, 60]` seconds. When
/// the engine has no drain-rate estimate yet (no completions in the
/// sample window, rate ≤ 0, or not finite), falls back to the
/// configured static value — a cold server should not tell clients to
/// wait a minute. Pinned by the `retry_after` unit tests.
fn adaptive_retry_after(queue_depth: usize, drain_rate_per_sec: f64, fallback_secs: u64) -> u64 {
    if !drain_rate_per_sec.is_finite() || drain_rate_per_sec <= 0.0 {
        return fallback_secs.clamp(1, 60);
    }
    let secs = (queue_depth as f64 / drain_rate_per_sec).ceil();
    (secs as u64).clamp(1, 60)
}

/// Per-shard `Retry-After`: the hint reflects the queue the retrying
/// client would actually land in.
fn retry_after_for(state: &ServerState, shard: &CityShard) -> u64 {
    adaptive_retry_after(
        shard.engine().queue_depth(),
        shard.engine().drain_rate_per_sec(),
        state.retry_after_secs,
    )
}

/// `Retry-After` when no shard has been resolved yet (connection-backlog
/// sheds): the worst shard's hint, so a retrying client never comes back
/// before the busiest queue could have drained.
fn retry_after_value(state: &ServerState) -> u64 {
    state
        .router
        .shards()
        .iter()
        .map(|s| retry_after_for(state, s))
        .max()
        .unwrap_or(state.retry_after_secs.clamp(1, 60))
}

struct ServerState {
    router: Arc<ShardRouter>,
    deadline: Duration,
    max_body_bytes: usize,
    retry_after_secs: u64,
    request_read_timeout: Duration,
    idle_timeout: Duration,
    counters: HttpCounters,
    shutdown: AtomicBool,
    /// Server start, backing `rntrajrec_uptime_seconds`.
    started: Instant,
}

/// Timing captured at the socket for one traced `/v1/recover` request:
/// the request id (minted when the request finished arriving) and the
/// read-phase endpoints, recorded as `http.read` once the response is
/// written.
struct TraceCtx {
    id: rntrajrec_obs::RequestId,
    read_start_ns: u64,
    read_end_ns: u64,
}

/// The running HTTP front-end. Dropping it (or calling
/// [`HttpServer::shutdown`]) drains gracefully.
pub struct HttpServer {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind and start serving a **single city**: the pre-shard
    /// constructor, kept as a thin wrapper over
    /// [`HttpServer::start_router`] with a one-shard router named
    /// `"default"`. The engine and query context must be built over the
    /// same road network.
    ///
    /// `example` is an optional pre-serialized valid `/v1/recover` body
    /// served at `GET /v1/example` (smoke tests post it back).
    pub fn start(
        engine: Arc<RecoveryEngine>,
        ctx: Arc<QueryContext>,
        config: HttpConfig,
        example: Option<String>,
    ) -> std::io::Result<Self> {
        let router = ShardRouter::single(CityShard::new("default", engine, ctx, example));
        Self::start_router(Arc::new(router), config)
    }

    /// Bind and start serving a [`ShardRouter`]: every recover route
    /// resolves its request to a city shard by bounding box (404 outside
    /// every shard, 422 straddling two), `POST /admin/reload` hot-swaps
    /// one shard's model from a versioned artifact, and `/metrics`
    /// carries per-shard `{city="…"}` labels.
    pub fn start_router(router: Arc<ShardRouter>, config: HttpConfig) -> std::io::Result<Self> {
        assert!(config.connection_workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            router,
            deadline: config.deadline,
            max_body_bytes: config.max_body_bytes,
            retry_after_secs: config.retry_after_secs,
            request_read_timeout: config.request_read_timeout,
            idle_timeout: config.idle_timeout,
            counters: HttpCounters::new(config.latency_ring),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.connection_backlog.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("rntrajrec-http-accept".to_string())
                .spawn(move || acceptor_loop(&listener, &conn_tx, &state))
                .expect("spawn http acceptor")
        };

        let workers = (0..config.connection_workers)
            .map(|i| {
                let state = Arc::clone(&state);
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("rntrajrec-http-{i}"))
                    .spawn(move || worker_loop(&conn_rx, &state))
                    .expect("spawn http worker")
            })
            .collect();

        Ok(Self {
            local_addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful drain: stop accepting, finish in-flight requests, close
    /// persistent connections at the next request boundary, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.drain();
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    state: &ServerState,
) {
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                state.counters.connections.fetch_add(1, Ordering::Relaxed);
                // Chaos: an accept-time fault closes the connection
                // before it reaches the worker pool (a delay stalls the
                // acceptor — downstream of it, the backlog gate sheds).
                if rntrajrec_chaos::point("http.accept").is_err() {
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(mut stream)) => {
                        // Backlog gate: answer fast and shed rather than
                        // letting connections pile up unbounded.
                        state.counters.shed_backlog.fetch_add(1, Ordering::Relaxed);
                        state.counters.record_status(503);
                        let _ = write_response(
                            &mut stream,
                            503,
                            "Service Unavailable",
                            "application/json",
                            &ErrorBody::new(503, "connection backlog full").to_json(),
                            false,
                            &[("Retry-After", retry_after_value(state).to_string())],
                        );
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // conn_tx drops here; workers exit once the backlog is drained.
}

fn worker_loop(conn_rx: &Mutex<mpsc::Receiver<TcpStream>>, state: &ServerState) {
    loop {
        // Hold the lock only for the pop — connections are handled
        // concurrently across workers.
        let stream = match conn_rx.lock().unwrap().recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone and backlog drained
        };
        handle_connection(stream, state);
    }
}

/// One parsed request off the wire.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

enum ReadOutcome {
    Request(Request),
    /// Idle read timeout with nothing read: poll the shutdown flag and
    /// keep the connection.
    Idle,
    /// Peer closed cleanly between requests.
    Closed,
    /// A started request stalled past the read budget: answer 408 and
    /// close (a slow client must not pin a connection worker).
    TimedOut,
    /// Peer closed mid-request or sent garbage: answer 400 (if given a
    /// reason) and close.
    Malformed(&'static str),
    /// `Content-Length` over the cap: answer 413 and close.
    BodyTooLarge,
    /// `Transfer-Encoding` present: answer 501 and close.
    Unsupported,
    /// Socket error: just close.
    Broken,
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut idle_since = Instant::now();
    loop {
        // Read-phase start for the span: the call below returns `Idle`
        // (resetting this) until bytes begin arriving, so the span start
        // precedes the first byte by at most one poll tick.
        let read_started = Instant::now();
        // Chaos: a read-phase fault drops the connection mid-read (the
        // client sees a reset, exactly like a real socket failure).
        if rntrajrec_chaos::point("http.read").is_err() {
            break;
        }
        match read_request(&mut stream, &mut buf, state) {
            ReadOutcome::Request(req) => {
                // Request id minted at the HTTP edge: recover requests
                // get a trace context carrying the read-phase endpoints.
                let trace = (rntrajrec_obs::enabled()
                    && req.method == "POST"
                    && matches!(
                        route_of(&req.path),
                        "/v1/recover" | "/v2/recover" | "/v2/recover/stream"
                    ))
                .then(|| TraceCtx {
                    id: rntrajrec_obs::next_request_id(),
                    read_start_ns: rntrajrec_obs::instant_ns(read_started),
                    read_end_ns: rntrajrec_obs::now_ns(),
                });
                let keep = req.keep_alive && !state.shutdown.load(Ordering::SeqCst);
                let ok = dispatch(&mut stream, state, &req, keep, trace);
                if !ok || !keep {
                    break;
                }
                idle_since = Instant::now();
            }
            ReadOutcome::Idle => {
                // Drain closes idle persistent connections immediately;
                // otherwise they are bounded by the idle budget so they
                // cannot hold a pool slot forever.
                if state.shutdown.load(Ordering::SeqCst)
                    || idle_since.elapsed() >= state.idle_timeout
                {
                    break;
                }
            }
            ReadOutcome::Closed => break,
            ReadOutcome::TimedOut => {
                state.counters.record_status(408);
                let _ = write_response(
                    &mut stream,
                    408,
                    "Request Timeout",
                    "application/json",
                    &ErrorBody::new(
                        408,
                        format!(
                            "request not received within {:.0} ms",
                            state.request_read_timeout.as_secs_f64() * 1000.0
                        ),
                    )
                    .to_json(),
                    false,
                    &[],
                );
                break;
            }
            ReadOutcome::Malformed(reason) => {
                state.counters.record_status(400);
                let _ = write_response(
                    &mut stream,
                    400,
                    "Bad Request",
                    "application/json",
                    &ErrorBody::new(400, reason).to_json(),
                    false,
                    &[],
                );
                break;
            }
            ReadOutcome::BodyTooLarge => {
                state.counters.record_status(413);
                let _ = write_response(
                    &mut stream,
                    413,
                    "Payload Too Large",
                    "application/json",
                    &ErrorBody::new(
                        413,
                        format!("request body exceeds {} bytes", state.max_body_bytes),
                    )
                    .to_json(),
                    false,
                    &[],
                );
                break;
            }
            ReadOutcome::Unsupported => {
                state.counters.record_status(501);
                let _ = write_response(
                    &mut stream,
                    501,
                    "Not Implemented",
                    "application/json",
                    &ErrorBody::new(501, "transfer encodings are not supported").to_json(),
                    false,
                    &[],
                );
                break;
            }
            ReadOutcome::Broken => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Read one request. `buf` carries bytes already read past the previous
/// request (pipelining / keep-alive).
fn read_request(stream: &mut TcpStream, buf: &mut Vec<u8>, state: &ServerState) -> ReadOutcome {
    // Stall budget for the whole request read. `Idle` returns reset it:
    // it only starts counting once bytes begin arriving (within one
    // `READ_TIMEOUT` poll tick).
    let started = Instant::now();
    let header_end = loop {
        if let Some(pos) = find_crlf2(buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return ReadOutcome::Malformed("header section too large");
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("connection closed mid-request")
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if buf.is_empty() {
                    return ReadOutcome::Idle;
                }
                // Mid-request stall: keep waiting, bounded by the read
                // budget, unless draining.
                if state.shutdown.load(Ordering::SeqCst) {
                    return ReadOutcome::Broken;
                }
                if started.elapsed() >= state.request_read_timeout {
                    return ReadOutcome::TimedOut;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Broken,
        }
    };

    let head = match std::str::from_utf8(&buf[..header_end]) {
        Ok(h) => h.to_string(),
        Err(_) => return ReadOutcome::Malformed("non-UTF-8 header section"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Malformed("malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed("unsupported HTTP version");
    }

    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1"; // 1.1 default; 1.0 must opt in
    let mut expect_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return ReadOutcome::Malformed("invalid Content-Length"),
            },
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => return ReadOutcome::Unsupported,
            "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
            _ => {}
        }
    }
    if content_length > state.max_body_bytes {
        return ReadOutcome::BodyTooLarge;
    }
    if expect_continue && content_length > 0 {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Malformed("connection closed mid-body"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return ReadOutcome::Broken;
                }
                if started.elapsed() >= state.request_read_timeout {
                    return ReadOutcome::TimedOut;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Broken,
        }
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    // Keep any pipelined bytes for the next request.
    buf.drain(..body_start + content_length);
    ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    })
}

fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The route part of a request target (everything before `?`).
fn route_of(path: &str) -> &str {
    path.split('?').next().unwrap_or(path)
}

/// `usize` query parameter lookup (`?last=16`) on a request target.
fn query_usize(path: &str, key: &str) -> Option<usize> {
    query_param(path, key).and_then(|v| v.parse::<usize>().ok())
}

/// Raw query parameter lookup (`?city=porto`) on a request target.
fn query_param<'a>(path: &'a str, key: &str) -> Option<&'a str> {
    let (_, query) = path.split_once('?')?;
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Route and answer one request. Returns `false` when the connection must
/// close (write failure).
fn dispatch(
    stream: &mut TcpStream,
    state: &ServerState,
    req: &Request,
    keep_alive: bool,
    trace: Option<TraceCtx>,
) -> bool {
    use std::sync::OnceLock;
    static E2E_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();

    // The streaming route writes its own chunked response incrementally,
    // so it cannot go through the buffered (status, body) path below.
    if req.method == "POST" && route_of(&req.path) == "/v2/recover/stream" {
        let started = Instant::now();
        let ok = recover_stream(stream, state, req, keep_alive, trace);
        E2E_SECONDS
            .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("e2e"))
            .observe_duration(started.elapsed());
        return ok;
    }

    let (status, reason, content_type, body, extra): (
        u16,
        &str,
        &str,
        String,
        Vec<(&str, String)>,
    ) = match (req.method.as_str(), route_of(&req.path)) {
        ("GET", "/healthz") => {
            // Top-level gauges aggregate across shards (a single-shard
            // server reads exactly as before); the per-shard breakdown
            // carries each city's queue and live model version.
            let shards = state.router.shards();
            let queue_depth: usize = shards.iter().map(|s| s.engine().queue_depth()).sum();
            let in_flight: usize = shards.iter().map(|s| s.engine().in_flight_batches()).sum();
            let per_shard = shards
                .iter()
                .map(|s| {
                    let info = s.info();
                    format!(
                        "{{\"city\":\"{}\",\"queue_depth\":{},\"in_flight_batches\":{},\"model_version\":\"{}\",\"reloads\":{}}}",
                        s.name(),
                        s.engine().queue_depth(),
                        s.engine().in_flight_batches(),
                        info.model_version,
                        info.reloads,
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let body = format!(
                "{{\"status\":\"ok\",\"queue_depth\":{queue_depth},\"in_flight_batches\":{in_flight},\"draining\":{},\"shards\":[{per_shard}]}}",
                state.shutdown.load(Ordering::SeqCst),
            );
            (200, "OK", "application/json", body, vec![])
        }
        ("GET", "/metrics") => (
            200,
            "OK",
            "text/plain; version=0.0.4",
            render_metrics(state),
            vec![],
        ),
        ("GET", "/v1/example") => {
            // `?city=NAME` picks a shard; a single-shard server keeps the
            // pre-shard behaviour of serving its one example unqualified.
            let shard = match query_param(&req.path, "city") {
                Some(name) => state.router.by_name(name),
                None if state.router.is_single() => Some(&state.router.shards()[0]),
                None => None,
            };
            match shard {
                None if query_param(&req.path, "city").is_some() => (
                    404,
                    "Not Found",
                    "application/json",
                    ErrorBody::new(404, "unknown city").to_json(),
                    vec![],
                ),
                None => bad_request("multi-city server: specify ?city=NAME"),
                Some(shard) => match shard.example() {
                    Some(body) => (200, "OK", "application/json", body.to_string(), vec![]),
                    None => (
                        404,
                        "Not Found",
                        "application/json",
                        ErrorBody::new(404, "no example configured").to_json(),
                        vec![],
                    ),
                },
            }
        }
        ("POST", "/v1/recover") => {
            let started = Instant::now();
            let answer = recover(state, &req.body, trace.as_ref());
            E2E_SECONDS
                .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("e2e"))
                .observe_duration(started.elapsed());
            answer
        }
        ("POST", "/v2/recover") => {
            let started = Instant::now();
            let answer = recover_v2(state, &req.body, trace.as_ref());
            E2E_SECONDS
                .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("e2e"))
                .observe_duration(started.elapsed());
            answer
        }
        ("POST", "/admin/reload") => admin_reload(state, &req.body),
        (_, "/admin/reload") => (
            405,
            "Method Not Allowed",
            "application/json",
            ErrorBody::new(405, "use POST").to_json(),
            vec![("Allow", "POST".to_string())],
        ),
        ("GET", "/debug/trace") => {
            // Chrome trace-event JSON for the last N completed requests
            // (default 16) — load in chrome://tracing or Perfetto.
            let last = query_usize(&req.path, "last").unwrap_or(16);
            let spans = rntrajrec_obs::completed_requests(last);
            (
                200,
                "OK",
                "application/json",
                rntrajrec_obs::chrome::chrome_trace(&spans),
                vec![],
            )
        }
        (_, "/debug/trace") => (
            405,
            "Method Not Allowed",
            "application/json",
            ErrorBody::new(405, "use GET").to_json(),
            vec![("Allow", "GET".to_string())],
        ),
        (_, "/healthz" | "/metrics" | "/v1/example") => (
            405,
            "Method Not Allowed",
            "application/json",
            ErrorBody::new(405, "use GET").to_json(),
            vec![("Allow", "GET".to_string())],
        ),
        (_, "/v1/recover" | "/v2/recover" | "/v2/recover/stream") => (
            405,
            "Method Not Allowed",
            "application/json",
            ErrorBody::new(405, "use POST").to_json(),
            vec![("Allow", "POST".to_string())],
        ),
        _ => (
            404,
            "Not Found",
            "application/json",
            ErrorBody::new(404, format!("no route for {}", req.path)).to_json(),
            vec![],
        ),
    };
    state.counters.record_status(status);
    let extra: Vec<(&str, String)> = extra;
    let write_start_ns = trace.as_ref().map(|_| rntrajrec_obs::now_ns());
    // Chaos: a write-phase fault drops the connection with the response
    // unsent — the client-side retry policy is what recovers from this.
    let ok = rntrajrec_chaos::point("http.write").is_ok()
        && write_response(
            stream,
            status,
            reason,
            content_type,
            &body,
            keep_alive,
            &extra,
        )
        .is_ok();
    if let (Some(t), Some(write_start_ns)) = (&trace, write_start_ns) {
        // The engine flushed its batch spans before delivering the
        // result, and `recover`'s request scope flushed the HTTP-side
        // phases — recording the root last means a request visible in
        // `/debug/trace` always has its full tree in the store.
        let end_ns = rntrajrec_obs::now_ns();
        rntrajrec_obs::record("http.read", &[t.id], t.read_start_ns, t.read_end_ns);
        rntrajrec_obs::record("http.write", &[t.id], write_start_ns, end_ns);
        rntrajrec_obs::record(rntrajrec_obs::ROOT_SPAN, &[t.id], t.read_start_ns, end_ns);
    }
    ok
}

/// A buffered answer: status, reason, content type, body, extra headers.
type Answer = (
    u16,
    &'static str,
    &'static str,
    String,
    Vec<(&'static str, String)>,
);

fn bad_request(msg: impl Into<String>) -> Answer {
    (
        400,
        "Bad Request",
        "application/json",
        ErrorBody::new(400, msg.into()).to_json(),
        vec![],
    )
}

/// Map a shard-resolution failure to its typed answer: `404` for a
/// trajectory outside every shard, `422` for one straddling two shards
/// (well-formed, but no single road network can serve it).
fn route_answer(e: RouteError) -> Answer {
    let (status, reason) = match e {
        RouteError::UnknownRegion { .. } => (404, "Not Found"),
        RouteError::Straddles { .. } => (422, "Unprocessable Entity"),
    };
    (
        status,
        reason,
        "application/json",
        ErrorBody::new(status, e.to_string()).to_json(),
        vec![],
    )
}

/// `POST /admin/reload {"city": "...", "path": "..."}` — zero-downtime
/// hot swap of one shard's model from a versioned artifact on disk.
///
/// Validation happens entirely before the swap (checksum, city,
/// network identity), so any non-2xx answer means the old model is
/// still serving untouched. In-flight batches finish on the weights
/// they started with; requests admitted after the swap decode on the
/// new ones. The reload is recorded as a `reload` span in the trace
/// ring so it shows up in `/debug/trace` timelines next to the
/// requests it interleaved with.
fn admin_reload(state: &ServerState, body: &[u8]) -> Answer {
    let start_ns = rntrajrec_obs::now_ns();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return bad_request("body is not UTF-8"),
    };
    let value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return bad_request(format!("invalid JSON: {e}")),
    };
    let Some(city) = value.get("city").and_then(|v| v.as_str()) else {
        return bad_request("missing field 'city'");
    };
    let Some(path) = value.get("path").and_then(|v| v.as_str()) else {
        return bad_request("missing field 'path'");
    };
    let Some(shard) = state.router.by_name(city) else {
        return (
            404,
            "Not Found",
            "application/json",
            ErrorBody::new(404, format!("unknown city '{city}'")).to_json(),
            vec![],
        );
    };
    let result = shard.reload_from_artifact(std::path::Path::new(path));
    if rntrajrec_obs::enabled() {
        let id = rntrajrec_obs::next_request_id();
        let end_ns = rntrajrec_obs::now_ns();
        rntrajrec_obs::record("reload", &[id], start_ns, end_ns);
        rntrajrec_obs::record(rntrajrec_obs::ROOT_SPAN, &[id], start_ns, end_ns);
    }
    match result {
        Ok(r) => (
            200,
            "OK",
            "application/json",
            format!(
                "{{\"city\":\"{}\",\"model_version\":\"{}\",\"git_sha\":\"{}\",\"reloads\":{}}}",
                r.city, r.model_version, r.git_sha, r.reloads,
            ),
            vec![],
        ),
        Err(e) => {
            let (status, reason) = e.http_status();
            (
                status,
                reason,
                "application/json",
                ErrorBody::new(status, format!("reload refused: {e}")).to_json(),
                vec![],
            )
        }
    }
}

/// Per-request decode budget for the v2 API: the client may *shorten*
/// the server's configured deadline with `options.deadline_ms`, never
/// extend it past the operator-set bound.
fn effective_budget(state: &ServerState, deadline_ms: Option<u64>) -> Duration {
    match deadline_ms {
        Some(ms) => state.deadline.min(Duration::from_millis(ms)),
        None => state.deadline,
    }
}

/// Feature extraction shared by all recover routes. Validates
/// caller-supplied coordinates up front (typed `QueryError`s →
/// field-precise 400s); the catch_unwind is a last-resort backstop so no
/// future panic path can take the connection worker down with one
/// request.
fn extract_input(shard: &CityShard, request: &RecoverRequest) -> Result<SampleInput, Answer> {
    let ctx = Arc::clone(shard.ctx());
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.sample_input(request))) {
        Ok(Ok(input)) => Ok(input),
        Ok(Err(e)) => Err(bad_request(format!("invalid field '{}': {e}", e.field()))),
        Err(payload) => Err(bad_request(format!(
            "feature extraction failed: {}",
            crate::service::panic_message(&payload)
        ))),
    }
}

/// Engine admission shared by all recover routes (gate 2: the bounded
/// queue). The deadline is propagated so the engine can cancel this
/// member mid-decode instead of finishing work nobody will read.
fn submit_to_engine(
    state: &ServerState,
    shard: &CityShard,
    input: SampleInput,
    opts: SubmitOptions,
) -> Result<RecoveryHandle, Answer> {
    let retry = vec![("Retry-After", retry_after_for(state, shard).to_string())];
    match shard.engine().submit(input, opts) {
        Ok(h) => Ok(h),
        Err(EngineError::Overloaded {
            queue_depth,
            capacity,
        }) => {
            state.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
            Err((
                429,
                "Too Many Requests",
                "application/json",
                ErrorBody::new(429, format!("engine queue full ({queue_depth}/{capacity})"))
                    .to_json(),
                retry,
            ))
        }
        Err(e @ EngineError::Brownout) => {
            state.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
            Err((
                503,
                "Service Unavailable",
                "application/json",
                ErrorBody::new(503, e.to_string()).to_json(),
                retry,
            ))
        }
        Err(e @ EngineError::FaultInjected { .. }) => Err((
            503,
            "Service Unavailable",
            "application/json",
            ErrorBody::new(503, e.to_string()).to_json(),
            retry,
        )),
    }
}

/// Admission gate 3 plus the answer: wait out the deadline budget
/// (parse + extraction time counts against it) and serialize the result.
fn wait_and_answer(
    state: &ServerState,
    shard: &CityShard,
    handle: RecoveryHandle,
    t0: Instant,
    budget: Duration,
) -> Answer {
    use std::sync::OnceLock;
    static SERIALIZE_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();

    let retry = vec![("Retry-After", retry_after_for(state, shard).to_string())];
    let remaining = budget.saturating_sub(t0.elapsed());
    match handle.wait_timeout(remaining) {
        // Dropping the late handle here flags the member as abandoned, so
        // the engine cancels it at the next decode step instead of
        // finishing a response nobody will read.
        Err(_late) => {
            state.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
            (
                503,
                "Service Unavailable",
                "application/json",
                ErrorBody::new(
                    503,
                    format!(
                        "deadline of {:.0} ms exceeded",
                        budget.as_secs_f64() * 1000.0
                    ),
                )
                .to_json(),
                retry,
            )
        }
        Ok(recovered) => {
            if let Some(err) = recovered.error {
                // Deadline/watchdog cancellations are a load condition
                // (retryable), not a server bug: 503 + Retry-After.
                if recovered.timed_out {
                    state.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                    return (
                        503,
                        "Service Unavailable",
                        "application/json",
                        ErrorBody::new(503, format!("recovery cancelled: {err}")).to_json(),
                        retry,
                    );
                }
                return (
                    500,
                    "Internal Server Error",
                    "application/json",
                    ErrorBody::new(500, format!("inference failed: {err}")).to_json(),
                    vec![],
                );
            }
            let latency_ms = recovered.latency.as_secs_f64() * 1000.0;
            state
                .counters
                .record_latency(t0.elapsed().as_secs_f64() * 1000.0);
            let serialize_started = Instant::now();
            let body = {
                let _span = rntrajrec_obs::span("serialize");
                let resp = RecoverResponse::from_path(
                    recovered.id,
                    &recovered.path,
                    recovered.batch_size,
                    latency_ms,
                );
                serde_json::to_string(&resp).expect("response serializes")
            };
            SERIALIZE_SECONDS
                .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("serialize"))
                .observe_duration(serialize_started.elapsed());
            (200, "OK", "application/json", body, vec![])
        }
    }
}

/// The `/v1/recover` flow: parse → extract → admit → wait (with deadline)
/// → answer.
fn recover(state: &ServerState, body: &[u8], trace: Option<&TraceCtx>) -> Answer {
    let t0 = Instant::now();

    // Chaos: a fault here simulates the parse stage falling over. The
    // client still gets a typed JSON error (never a hang).
    if let Err(fault) = rntrajrec_chaos::point("http.parse") {
        return bad_request(fault.to_string());
    }
    // Attribute HTTP-side spans (parse, serialize) to this request; the
    // scope drop at function exit flushes them to the global store before
    // `dispatch` records the root span.
    let _req_scope = trace.map(|t| rntrajrec_obs::request_scope(&[t.id]));
    let parse_span = rntrajrec_obs::span("parse");

    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return bad_request("body is not UTF-8"),
    };
    let request = match RecoverRequest::from_json(text) {
        Ok(r) => r,
        Err(e) => return bad_request(e.to_string()),
    };
    let shard = match state.router.resolve(&request.points) {
        Ok(s) => s,
        Err(e) => return route_answer(e),
    };
    let input = match extract_input(shard, &request) {
        Ok(input) => input,
        Err(answer) => return answer,
    };
    drop(parse_span);

    let opts = SubmitOptions::new()
        .deadline(t0 + state.deadline)
        .trace(trace.map(|t| t.id));
    let handle = match submit_to_engine(state, shard, input, opts) {
        Ok(h) => h,
        Err(answer) => return answer,
    };
    wait_and_answer(state, shard, handle, t0, state.deadline)
}

/// The `/v2/recover` flow: same as v1 plus an explicit `options` object
/// (client-shortened deadline, advisory head selection). Streaming is
/// its own route — `options.stream: true` here is a usage error.
fn recover_v2(state: &ServerState, body: &[u8], trace: Option<&TraceCtx>) -> Answer {
    let t0 = Instant::now();

    if let Err(fault) = rntrajrec_chaos::point("http.parse") {
        return bad_request(fault.to_string());
    }
    let _req_scope = trace.map(|t| rntrajrec_obs::request_scope(&[t.id]));
    let parse_span = rntrajrec_obs::span("parse");

    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return bad_request("body is not UTF-8"),
    };
    let request = match v2::RecoverRequestV2::from_json(text) {
        Ok(r) => r,
        Err(e) => return bad_request(e.to_string()),
    };
    if request.options.stream {
        return bad_request("options.stream is only valid on POST /v2/recover/stream");
    }
    let shard = match state.router.resolve(&request.points) {
        Ok(s) => s,
        Err(e) => return route_answer(e),
    };
    let input = match extract_input(shard, &request.base()) {
        Ok(input) => input,
        Err(answer) => return answer,
    };
    drop(parse_span);

    let budget = effective_budget(state, request.options.deadline_ms);
    let opts = SubmitOptions::new()
        .deadline(t0 + budget)
        .trace(trace.map(|t| t.id));
    let handle = match submit_to_engine(state, shard, input, opts) {
        Ok(h) => h,
        Err(answer) => return answer,
    };
    wait_and_answer(state, shard, handle, t0, budget)
}

/// Write one chunk of an HTTP/1.1 chunked response: one JSON event line.
/// Each chunk passes the `http.write` chaos point so fault injection can
/// sever a stream mid-flight, like a real broken socket.
fn write_chunk(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    if rntrajrec_chaos::point("http.write").is_err() {
        return Err(std::io::Error::other("chaos: stream write fault"));
    }
    let mut frame = format!("{:x}\r\n", line.len() + 1);
    frame.push_str(line);
    frame.push_str("\n\r\n");
    stream.write_all(frame.as_bytes())?;
    stream.flush()
}

/// The `/v2/recover/stream` flow. Everything up to admission can still
/// fail with an ordinary buffered JSON error response; once the chunked
/// header is on the wire the contract becomes: zero or more `step`
/// events, then **exactly one** terminal `summary` or `error` event,
/// then the zero-length chunk. Returns `false` when the connection must
/// close (write failure mid-stream).
fn recover_stream(
    stream: &mut TcpStream,
    state: &ServerState,
    req: &Request,
    keep_alive: bool,
    trace: Option<TraceCtx>,
) -> bool {
    let t0 = Instant::now();

    // Fallible prologue: parse → extract → admit, all before the first
    // response byte. An `Err` here is a plain (un-chunked) answer.
    let prologue: Result<(RecoveryHandle, Duration), Answer> = (|| {
        if let Err(fault) = rntrajrec_chaos::point("http.parse") {
            return Err(bad_request(fault.to_string()));
        }
        let _req_scope = trace
            .as_ref()
            .map(|t| rntrajrec_obs::request_scope(&[t.id]));
        let parse_span = rntrajrec_obs::span("parse");
        let text = std::str::from_utf8(&req.body).map_err(|_| bad_request("body is not UTF-8"))?;
        let request =
            v2::RecoverRequestV2::from_json(text).map_err(|e| bad_request(e.to_string()))?;
        let shard = state
            .router
            .resolve(&request.points)
            .map_err(route_answer)?;
        let input = extract_input(shard, &request.base())?;
        drop(parse_span);
        let budget = effective_budget(state, request.options.deadline_ms);
        let opts = SubmitOptions::new()
            .deadline(t0 + budget)
            .trace(trace.as_ref().map(|t| t.id))
            .stream();
        let handle = submit_to_engine(state, shard, input, opts)?;
        Ok((handle, budget))
    })();

    let write_start_ns = trace.as_ref().map(|_| rntrajrec_obs::now_ns());
    let ok = match prologue {
        Err((status, reason, content_type, body, extra)) => {
            state.counters.record_status(status);
            rntrajrec_chaos::point("http.write").is_ok()
                && write_response(
                    stream,
                    status,
                    reason,
                    content_type,
                    &body,
                    keep_alive,
                    &extra,
                )
                .is_ok()
        }
        Ok((handle, budget)) => {
            state.counters.record_status(200);
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                 Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
                if keep_alive { "keep-alive" } else { "close" }
            );
            let mut ok = rntrajrec_chaos::point("http.write").is_ok()
                && stream.write_all(head.as_bytes()).is_ok();
            let mut deadline_hit = false;
            while ok {
                let remaining = budget.saturating_sub(t0.elapsed());
                match handle.next_step(remaining.max(Duration::from_millis(1))) {
                    StepWait::Step(s) => {
                        let ev = v2::StepEvent::new(s.id, s.step, s.segment, s.rate, s.logprob);
                        let line = serde_json::to_string(&ev).expect("step event serializes");
                        ok = write_chunk(stream, &line).is_ok();
                    }
                    StepWait::Finished => break,
                    StepWait::TimedOut => {
                        if t0.elapsed() >= budget {
                            deadline_hit = true;
                            break;
                        }
                    }
                }
            }
            if ok {
                // Terminal event: the engine's verdict if it arrives in
                // budget (+ a small grace for channel delivery), else a
                // deadline error. Dropping an unconsumed handle flags the
                // member abandoned so the engine cancels it mid-decode.
                let grace = budget
                    .saturating_sub(t0.elapsed())
                    .max(Duration::from_millis(5));
                let terminal = if deadline_hit {
                    Err(())
                } else {
                    handle.wait_timeout(grace).map_err(|_| ())
                };
                let line = match terminal {
                    Err(()) => {
                        state.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                        let ev = v2::ErrorEvent::new(
                            format!(
                                "deadline of {:.0} ms exceeded",
                                budget.as_secs_f64() * 1000.0
                            ),
                            503,
                            true,
                        );
                        serde_json::to_string(&ev).expect("error event serializes")
                    }
                    Ok(recovered) => match recovered.error {
                        Some(err) => {
                            let (code, timed_out) = if recovered.timed_out {
                                state.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                                (503, true)
                            } else {
                                (500, false)
                            };
                            let ev = v2::ErrorEvent::new(
                                format!("recovery failed: {err}"),
                                code,
                                timed_out,
                            );
                            serde_json::to_string(&ev).expect("error event serializes")
                        }
                        None => {
                            state
                                .counters
                                .record_latency(t0.elapsed().as_secs_f64() * 1000.0);
                            let resp = RecoverResponse::from_path(
                                recovered.id,
                                &recovered.path,
                                recovered.batch_size,
                                recovered.latency.as_secs_f64() * 1000.0,
                            );
                            let ev = v2::SummaryEvent::from_response(&resp);
                            serde_json::to_string(&ev).expect("summary event serializes")
                        }
                    },
                };
                ok = write_chunk(stream, &line).is_ok()
                    && stream.write_all(b"0\r\n\r\n").is_ok()
                    && stream.flush().is_ok();
            }
            ok
        }
    };
    if let (Some(t), Some(write_start_ns)) = (&trace, write_start_ns) {
        let end_ns = rntrajrec_obs::now_ns();
        rntrajrec_obs::record("http.read", &[t.id], t.read_start_ns, t.read_end_ns);
        rntrajrec_obs::record("http.write", &[t.id], write_start_ns, end_ns);
        rntrajrec_obs::record(rntrajrec_obs::ROOT_SPAN, &[t.id], t.read_start_ns, end_ns);
    }
    ok
}

/// Short git revision baked in by `build.rs`, or "unknown" outside a
/// git checkout.
pub(crate) const GIT_SHA: &str = env!("RNTRAJREC_GIT_SHA");

fn render_metrics(state: &ServerState) -> String {
    let c = &state.counters;
    let shards = state.router.shards();
    let shard_stats: Vec<(&CityShard, crate::EngineStats)> =
        shards.iter().map(|s| (s, s.engine().stats())).collect();
    let pool = rntrajrec_nn::pool::stats();
    let (p50, p99) = c.latency_quantiles();
    let mut out = String::with_capacity(4096 + 2048 * shards.len());
    let line = |out: &mut String, name: &str, labels: &str, v: f64| {
        out.push_str(name);
        out.push_str(labels);
        out.push(' ');
        if v.fract() == 0.0 && v.abs() < 1e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    };
    let header = |out: &mut String, name: &str, help: &str, kind: &str| {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(help);
        out.push_str("\n# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
    };

    header(
        &mut out,
        "rntrajrec_build_info",
        "Build metadata; the value is always 1.",
        "gauge",
    );
    out.push_str(&format!(
        "rntrajrec_build_info{{version=\"{}\",git_sha=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION"),
        GIT_SHA,
    ));
    header(
        &mut out,
        "rntrajrec_kernel_backend",
        "Active nn kernel backend (NN_BACKEND / CPU feature detection); the value is always 1.",
        "gauge",
    );
    out.push_str(&format!(
        "rntrajrec_kernel_backend{{backend=\"{}\"}} 1\n",
        shard_stats[0].1.kernel_backend,
    ));
    header(
        &mut out,
        "rntrajrec_segment_head",
        "Decoder segment head each city shard serves (sparse f32 or int8); the value is always 1.",
        "gauge",
    );
    for (s, st) in &shard_stats {
        out.push_str(&format!(
            "rntrajrec_segment_head{{city=\"{}\",head=\"{}\"}} 1\n",
            s.name(),
            st.segment_head,
        ));
    }
    header(
        &mut out,
        "rntrajrec_artifact_info",
        "Live model provenance per city shard (version + packing revision); the value is always 1.",
        "gauge",
    );
    for (s, _) in &shard_stats {
        let info = s.info();
        out.push_str(&format!(
            "rntrajrec_artifact_info{{city=\"{}\",model_version=\"{}\",git_sha=\"{}\"}} 1\n",
            s.name(),
            info.model_version,
            info.git_sha,
        ));
    }
    header(
        &mut out,
        "rntrajrec_uptime_seconds",
        "Seconds since the HTTP server started accepting connections.",
        "gauge",
    );
    line(
        &mut out,
        "rntrajrec_uptime_seconds",
        "",
        state.started.elapsed().as_secs_f64(),
    );

    header(
        &mut out,
        "rntrajrec_http_connections_total",
        "TCP connections accepted.",
        "counter",
    );
    line(
        &mut out,
        "rntrajrec_http_connections_total",
        "",
        c.connections.load(Ordering::Relaxed) as f64,
    );
    header(
        &mut out,
        "rntrajrec_http_responses_total",
        "HTTP responses by status class.",
        "counter",
    );
    line(
        &mut out,
        "rntrajrec_http_responses_total",
        "{class=\"2xx\"}",
        c.responses_2xx.load(Ordering::Relaxed) as f64,
    );
    line(
        &mut out,
        "rntrajrec_http_responses_total",
        "{class=\"4xx\"}",
        c.responses_4xx.load(Ordering::Relaxed) as f64,
    );
    line(
        &mut out,
        "rntrajrec_http_responses_total",
        "{class=\"5xx\"}",
        c.responses_5xx.load(Ordering::Relaxed) as f64,
    );
    header(
        &mut out,
        "rntrajrec_http_shed_total",
        "Requests shed by admission control, by reason.",
        "counter",
    );
    line(
        &mut out,
        "rntrajrec_http_shed_total",
        "{reason=\"backlog\"}",
        c.shed_backlog.load(Ordering::Relaxed) as f64,
    );
    line(
        &mut out,
        "rntrajrec_http_shed_total",
        "{reason=\"overload\"}",
        c.shed_overload.load(Ordering::Relaxed) as f64,
    );
    line(
        &mut out,
        "rntrajrec_http_shed_total",
        "{reason=\"deadline\"}",
        c.shed_deadline.load(Ordering::Relaxed) as f64,
    );
    header(
        &mut out,
        "rntrajrec_http_recover_latency_ms",
        "End-to-end /v1/recover latency quantiles over a sliding window.",
        "summary",
    );
    line(
        &mut out,
        "rntrajrec_http_recover_latency_ms",
        "{quantile=\"0.5\"}",
        p50,
    );
    line(
        &mut out,
        "rntrajrec_http_recover_latency_ms",
        "{quantile=\"0.99\"}",
        p99,
    );

    // Engine families: one HELP/TYPE header per family, one labelled
    // sample per city shard.
    let city_label = |s: &CityShard| format!("{{city=\"{}\"}}", s.name());
    let per_shard = |out: &mut String,
                     name: &str,
                     help: &str,
                     kind: &str,
                     value: &dyn Fn(&CityShard, &crate::EngineStats) -> f64| {
        header(out, name, help, kind);
        for (s, st) in &shard_stats {
            line(out, name, &city_label(s), value(s, st));
        }
    };

    per_shard(
        &mut out,
        "rntrajrec_engine_queue_depth",
        "Requests waiting in the micro-batching queue.",
        "gauge",
        &|s, _| s.engine().queue_depth() as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_in_flight_batches",
        "Batches currently being recovered.",
        "gauge",
        &|s, _| s.engine().in_flight_batches() as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_requests_total",
        "Requests accepted by the engine.",
        "counter",
        &|_, st| st.requests as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_completed_total",
        "Requests recovered successfully.",
        "counter",
        &|_, st| st.completed as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_failed_total",
        "Requests that failed during recovery.",
        "counter",
        &|_, st| st.failed as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_rejected_total",
        "Requests rejected at submit time (queue full or shutdown).",
        "counter",
        &|_, st| st.rejected as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_batches_total",
        "Batches flushed by the micro-batcher.",
        "counter",
        &|_, st| st.batches as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_mean_batch",
        "Mean batch size since start.",
        "gauge",
        &|_, st| st.mean_batch,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_mean_queue_wait_ms",
        "Mean time a completed request spent queued before its batch flushed.",
        "gauge",
        &|_, st| st.mean_queue_wait_ms,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_mean_compute_ms",
        "Mean batch compute time attributed to completed requests.",
        "gauge",
        &|_, st| st.mean_compute_ms,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_queue_wait_p99_ms",
        "p99 queue wait over a sliding window of completed requests.",
        "gauge",
        &|_, st| st.queue_wait_p99_ms,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_drain_rate_per_sec",
        "Observed request completion rate over the supervisor's sample window.",
        "gauge",
        &|_, st| st.drain_rate_per_sec,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_worker_restarts_total",
        "Crashed engine workers respawned by the supervisor.",
        "counter",
        &|_, st| st.worker_restarts as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_watchdog_timeouts_total",
        "Batches failed by the watchdog for exceeding the compute budget.",
        "counter",
        &|_, st| st.watchdog_timeouts as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_deadline_cancelled_total",
        "Batch members cancelled mid-decode for an expired deadline.",
        "counter",
        &|_, st| st.deadline_cancelled as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_admitted_total",
        "Members admitted into an already-running decode batch.",
        "counter",
        &|_, st| st.admitted as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_abandoned_cancelled_total",
        "Batch members cancelled because their handle was dropped.",
        "counter",
        &|_, st| st.abandoned_cancelled as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_stream_lagged_total",
        "Streamed members degraded to summary-only for a full step queue.",
        "counter",
        &|_, st| st.stream_lagged as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_model_swaps_total",
        "Hot model swaps installed in the engine's model slot.",
        "counter",
        &|_, st| st.model_swaps as f64,
    );
    per_shard(
        &mut out,
        "rntrajrec_engine_brownout_level",
        "Active brownout ladder level (0 normal … 3 shed).",
        "gauge",
        &|s, _| s.engine().brownout_level() as f64,
    );
    header(
        &mut out,
        "rntrajrec_engine_brownout_mode",
        "Active brownout degradation mode; the value is always 1.",
        "gauge",
    );
    for (s, st) in &shard_stats {
        out.push_str(&format!(
            "rntrajrec_engine_brownout_mode{{city=\"{}\",mode=\"{}\"}} 1\n",
            s.name(),
            st.brownout_mode,
        ));
    }
    per_shard(
        &mut out,
        "rntrajrec_engine_brownout_shifts_total",
        "Brownout ladder transitions since start.",
        "counter",
        &|_, st| st.brownout_shifts as f64,
    );

    header(
        &mut out,
        "rntrajrec_nn_matmul_invocations_total",
        "Matmul kernel invocations across all threads.",
        "counter",
    );
    line(
        &mut out,
        "rntrajrec_nn_matmul_invocations_total",
        "",
        kernels::matmul_invocations() as f64,
    );
    header(
        &mut out,
        "rntrajrec_nn_pool_jobs_total",
        "Thread-pool dispatch decisions by mode.",
        "counter",
    );
    line(
        &mut out,
        "rntrajrec_nn_pool_jobs_total",
        "{mode=\"parallel\"}",
        pool.parallel_jobs as f64,
    );
    line(
        &mut out,
        "rntrajrec_nn_pool_jobs_total",
        "{mode=\"inline_busy\"}",
        pool.inline_busy as f64,
    );
    line(
        &mut out,
        "rntrajrec_nn_pool_jobs_total",
        "{mode=\"inline_small\"}",
        pool.inline_small as f64,
    );

    header(
        &mut out,
        "rntrajrec_trace_spans_stored",
        "Spans currently buffered in the trace ring.",
        "gauge",
    );
    line(
        &mut out,
        "rntrajrec_trace_spans_stored",
        "",
        rntrajrec_obs::stored_spans() as f64,
    );
    header(
        &mut out,
        "rntrajrec_trace_spans_dropped_total",
        "Spans evicted from the trace ring before being read.",
        "counter",
    );
    line(
        &mut out,
        "rntrajrec_trace_spans_dropped_total",
        "",
        rntrajrec_obs::dropped_spans() as f64,
    );

    header(
        &mut out,
        "rntrajrec_chaos_enabled",
        "1 when deterministic fault injection is armed (CHAOS_FAULTS).",
        "gauge",
    );
    line(
        &mut out,
        "rntrajrec_chaos_enabled",
        "",
        if rntrajrec_chaos::enabled() { 1.0 } else { 0.0 },
    );
    let chaos_points = rntrajrec_chaos::snapshot();
    if !chaos_points.is_empty() {
        header(
            &mut out,
            "rntrajrec_chaos_injected_total",
            "Faults actually injected, per configured point.",
            "counter",
        );
        for p in &chaos_points {
            out.push_str(&format!(
                "rntrajrec_chaos_injected_total{{point=\"{}\",kind=\"{}\"}} {}\n",
                p.point, p.kind, p.fired,
            ));
        }
    }

    rntrajrec_obs::metrics::render_into(&mut out);
    out
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::{adaptive_retry_after, HttpCounters};
    use std::time::Duration;

    /// `ceil(depth / drain)` clamped to `[1, 60]`; fallback when the
    /// engine has no drain estimate yet.
    #[test]
    fn retry_after_formula() {
        // 10 queued, draining 4/s → ceil(2.5) = 3 s.
        assert_eq!(adaptive_retry_after(10, 4.0, 1), 3);
        // Exact division: 8/4 → 2 s.
        assert_eq!(adaptive_retry_after(8, 4.0, 1), 2);
        // Empty queue → floor of 1 s, never 0 (or the header is noise).
        assert_eq!(adaptive_retry_after(0, 4.0, 1), 1);
        // Deep queue, slow drain → capped at 60 s.
        assert_eq!(adaptive_retry_after(1000, 0.5, 1), 60);
        // No drain estimate (cold server / stalled): use the fallback…
        assert_eq!(adaptive_retry_after(50, 0.0, 2), 2);
        assert_eq!(adaptive_retry_after(50, -1.0, 2), 2);
        assert_eq!(adaptive_retry_after(50, f64::NAN, 2), 2);
        // …and the fallback is clamped into the same band.
        assert_eq!(adaptive_retry_after(50, 0.0, 0), 1);
        assert_eq!(adaptive_retry_after(50, 0.0, 600), 60);
    }

    #[test]
    fn retry_backoff_is_capped_exponential_with_bounded_jitter() {
        let p = super::client::RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(1),
            seed: 42,
        };
        for attempt in 0..8 {
            let nominal = Duration::from_millis(100 * (1 << attempt)).min(Duration::from_secs(1));
            let d = p.backoff(attempt);
            assert!(
                d >= nominal.mul_f64(0.5) && d < nominal,
                "attempt {attempt}: {d:?} outside [{:?}, {nominal:?})",
                nominal.mul_f64(0.5),
            );
        }
        // Deterministic for a seed; different across seeds.
        assert_eq!(p.backoff(3), p.backoff(3));
        let q = super::client::RetryPolicy {
            seed: 43,
            ..p.clone()
        };
        assert_ne!(p.backoff(3), q.backoff(3));
    }

    #[test]
    fn retry_after_hint_floors_the_backoff() {
        let p = super::client::RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(5),
            seed: 7,
        };
        // Server hint above the jittered backoff wins…
        assert_eq!(p.delay(0, Some(2)), Duration::from_secs(2));
        // …but a tiny hint cannot pull the backoff down.
        assert!(p.delay(5, Some(0)) >= Duration::from_millis(160));
        assert_eq!(p.delay(1, None), p.backoff(1));
    }

    fn quantiles_of(samples: &[f64]) -> (f64, f64) {
        let c = HttpCounters::default();
        for &s in samples {
            c.record_latency(s);
        }
        c.latency_quantiles()
    }

    /// Ceil-based nearest rank over rings with known contents: rank
    /// `⌈p·n⌉` (1-indexed), consistent across ring sizes. The old
    /// `round((n-1)·p)` estimator diverged from nearest rank depending
    /// on the ring length: at p99 a 67-sample ring picked rank 66
    /// (`round(66·0.99) = 65`, under-reporting the tail) while 8-, 10-
    /// and 50-sample rings picked the max; at p50 every even-length ring
    /// rounded half away from zero to rank `n/2 + 1` (e.g. rank 6 of
    /// 10).
    #[test]
    fn quantiles_use_ceil_nearest_rank() {
        // Ring of 50: 1.0..=50.0. p99 rank = ceil(49.5) = 50 → 50.0;
        // p50 rank = ceil(25.0) = 25 → 25.0.
        let ring50: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        assert_eq!(quantiles_of(&ring50), (25.0, 50.0));

        // Ring of 10: p99 rank = ceil(9.9) = 10 → 10.0; p50 rank =
        // ceil(5.0) = 5 → 5.0 (the old estimator returned 6.0 here).
        let ring10: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(quantiles_of(&ring10), (5.0, 10.0));

        // Ring of 8: p99 rank = ceil(7.92) = 8 → 8.0; p50 rank = 4.
        let ring8: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        assert_eq!(quantiles_of(&ring8), (4.0, 8.0));

        // Ring of 67: p99 rank = ceil(66.33) = 67 → 67.0 — the case the
        // old estimator under-reported (rank 66 → 66.0); p50 rank = 34.
        let ring67: Vec<f64> = (1..=67).map(|i| i as f64).collect();
        assert_eq!(quantiles_of(&ring67), (34.0, 67.0));

        // Singleton and empty edge cases.
        assert_eq!(quantiles_of(&[7.25]), (7.25, 7.25));
        assert_eq!(quantiles_of(&[]), (0.0, 0.0));

        // Order of arrival must not matter (the ring is sorted on read).
        let mut shuffled = ring10.clone();
        shuffled.reverse();
        shuffled.swap(2, 7);
        assert_eq!(quantiles_of(&shuffled), (5.0, 10.0));
    }
}

/// A deliberately tiny blocking HTTP/1.1 client — one connection per
/// request, `Connection: close` — for the integration tests, the
/// benchmark's network-overhead measurement, and the example. Not a
/// general client.
pub mod client {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// A parsed response.
    #[derive(Debug, Clone)]
    pub struct HttpResponse {
        pub status: u16,
        pub headers: Vec<(String, String)>,
        pub body: String,
    }

    impl HttpResponse {
        /// Case-insensitive header lookup.
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        }
    }

    /// `GET` a path.
    pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
        request(addr, "GET", path, None)
    }

    /// `POST` a JSON body.
    pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        request(addr, "POST", path, Some(body))
    }

    /// `POST` to a streaming route (`/v2/recover/stream`), invoking
    /// `on_line` for each NDJSON event line **as it arrives** — before
    /// the stream completes — so callers can timestamp the first step.
    /// The returned body is the de-chunked NDJSON text; non-chunked
    /// (error) responses return as-is without calling `on_line`.
    pub fn post_stream(
        addr: SocketAddr,
        path: &str,
        body: &str,
        mut on_line: impl FnMut(&str),
    ) -> std::io::Result<HttpResponse> {
        let err = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let req = format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(req.as_bytes())?;

        let mut buf: Vec<u8> = Vec::new();
        let header_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if read_more(&mut stream, &mut buf)? == 0 {
                return Err(err("connection closed before response headers"));
            }
        };
        let (status, headers) = parse_head(&buf[..header_end])?;
        let chunked = headers.iter().any(|(n, v)| {
            n.eq_ignore_ascii_case("transfer-encoding")
                && v.to_ascii_lowercase().contains("chunked")
        });
        let mut rest: Vec<u8> = buf.split_off(header_end + 4);
        if !chunked {
            while read_more(&mut stream, &mut rest)? != 0 {}
            let body = String::from_utf8(rest).map_err(|_| err("non-UTF-8 body"))?;
            return Ok(HttpResponse {
                status,
                headers,
                body,
            });
        }
        let mut body_out = String::new();
        let mut pending = String::new();
        loop {
            let size_end = loop {
                if let Some(pos) = rest.windows(2).position(|w| w == b"\r\n") {
                    break pos;
                }
                if read_more(&mut stream, &mut rest)? == 0 {
                    return Err(err("connection closed mid chunk-size line"));
                }
            };
            let size_str = std::str::from_utf8(&rest[..size_end])
                .map_err(|_| err("non-UTF-8 chunk-size line"))?;
            let size =
                usize::from_str_radix(size_str.split(';').next().unwrap_or_default().trim(), 16)
                    .map_err(|_| err("malformed chunk size"))?;
            rest.drain(..size_end + 2);
            if size == 0 {
                break;
            }
            while rest.len() < size + 2 {
                if read_more(&mut stream, &mut rest)? == 0 {
                    return Err(err("connection closed mid chunk"));
                }
            }
            pending
                .push_str(std::str::from_utf8(&rest[..size]).map_err(|_| err("non-UTF-8 chunk"))?);
            rest.drain(..size + 2);
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                let line = line.trim_end();
                if !line.is_empty() {
                    on_line(line);
                    body_out.push_str(line);
                    body_out.push('\n');
                }
            }
        }
        Ok(HttpResponse {
            status,
            headers,
            body: body_out,
        })
    }

    fn read_more(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        let mut tmp = [0u8; 4096];
        loop {
            match stream.read(&mut tmp) {
                Ok(n) => {
                    buf.extend_from_slice(&tmp[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Retry policy for [`request_with_retry`]: capped exponential
    /// backoff with deterministic jitter, honoring `Retry-After`.
    ///
    /// Attempt `k` (0-based) sleeps `min(cap, base × 2^k)` scaled by a
    /// jitter factor in `[0.5, 1.0)` derived from `splitmix64(seed ^ k)`
    /// — deterministic for a given seed, so test runs replay exactly,
    /// while distinct seeds (one per client) decorrelate retry storms.
    /// A `429`/`503` response carrying `Retry-After: N` sleeps
    /// `max(N seconds, backoff)` instead: the server's hint is a floor,
    /// never a reason to hammer it sooner.
    #[derive(Debug, Clone)]
    pub struct RetryPolicy {
        /// Retries after the first attempt (total attempts = `1 + max_retries`).
        pub max_retries: u32,
        /// First backoff step.
        pub base: Duration,
        /// Backoff ceiling.
        pub cap: Duration,
        /// Jitter seed; vary it per client.
        pub seed: u64,
    }

    impl Default for RetryPolicy {
        fn default() -> Self {
            Self {
                max_retries: 4,
                base: Duration::from_millis(50),
                cap: Duration::from_secs(2),
                seed: 0,
            }
        }
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    impl RetryPolicy {
        /// Jittered backoff before retry `attempt` (0-based), ignoring
        /// any `Retry-After` hint. Pinned by the `retry_backoff` tests.
        pub fn backoff(&self, attempt: u32) -> Duration {
            let exp = self.base.saturating_mul(1u32 << attempt.min(16));
            let capped = exp.min(self.cap);
            // 53 high bits → uniform f64 in [0, 1), then into [0.5, 1.0).
            let unit =
                (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
            capped.mul_f64(0.5 + 0.5 * unit)
        }

        /// The sleep before retry `attempt`, honoring a server
        /// `Retry-After` (seconds) as a floor on the jittered backoff.
        pub fn delay(&self, attempt: u32, retry_after_secs: Option<u64>) -> Duration {
            let backoff = self.backoff(attempt);
            match retry_after_secs {
                Some(secs) => backoff.max(Duration::from_secs(secs)),
                None => backoff,
            }
        }
    }

    /// Whether a response status is worth retrying (the server said
    /// "come back later", not "your request is wrong").
    pub fn retryable_status(status: u16) -> bool {
        status == 429 || status == 503
    }

    /// Issue a request, retrying connect/transport errors and
    /// `429`/`503` responses per `policy`. Returns the first
    /// non-retryable response, the last retryable one once attempts are
    /// exhausted, or the last transport error.
    pub fn request_with_retry(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
        policy: &RetryPolicy,
    ) -> std::io::Result<HttpResponse> {
        let mut attempt = 0u32;
        loop {
            let outcome = request(addr, method, path, body);
            let retry_after = match &outcome {
                Ok(resp) if retryable_status(resp.status) => Some(
                    resp.header("Retry-After")
                        .and_then(|v| v.trim().parse::<u64>().ok()),
                ),
                Ok(resp) => return Ok(resp.clone()),
                Err(_) => Some(None),
            };
            if attempt >= policy.max_retries {
                return outcome;
            }
            // Tests and the bench drive sub-second loops; a literal
            // multi-second Retry-After sleep would stall them, so the
            // honored floor is capped at the policy ceiling.
            let hint = retry_after.flatten();
            std::thread::sleep(policy.delay(attempt, hint).min(policy.cap));
            attempt += 1;
        }
    }

    /// Issue one request on a fresh connection.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let body = body.unwrap_or("");
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(req.as_bytes())?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    fn parse_head(head: &[u8]) -> std::io::Result<(u16, Vec<(String, String)>)> {
        let err = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let head = std::str::from_utf8(head).map_err(|_| err("non-UTF-8 headers"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| err("empty response"))?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| err("malformed status line"))?;
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
            .collect();
        Ok((status, headers))
    }

    /// Decode an HTTP/1.1 chunked body captured in full.
    fn decode_chunked(mut raw: &[u8]) -> std::io::Result<Vec<u8>> {
        let err = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut out = Vec::new();
        loop {
            let size_end = raw
                .windows(2)
                .position(|w| w == b"\r\n")
                .ok_or_else(|| err("truncated chunk-size line"))?;
            let size_str =
                std::str::from_utf8(&raw[..size_end]).map_err(|_| err("non-UTF-8 chunk size"))?;
            let size =
                usize::from_str_radix(size_str.split(';').next().unwrap_or_default().trim(), 16)
                    .map_err(|_| err("malformed chunk size"))?;
            raw = &raw[size_end + 2..];
            if size == 0 {
                return Ok(out);
            }
            if raw.len() < size + 2 {
                return Err(err("truncated chunk"));
            }
            out.extend_from_slice(&raw[..size]);
            raw = &raw[size + 2..];
        }
    }

    fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
        let err = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let header_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or_else(|| err("no header terminator in response"))?;
        let (status, headers) = parse_head(&raw[..header_end])?;
        let chunked = headers.iter().any(|(n, v): &(String, String)| {
            n.eq_ignore_ascii_case("transfer-encoding")
                && v.to_ascii_lowercase().contains("chunked")
        });
        let body_bytes = if chunked {
            decode_chunked(&raw[header_end + 4..])?
        } else {
            raw[header_end + 4..].to_vec()
        };
        let body = String::from_utf8(body_bytes).map_err(|_| err("non-UTF-8 body"))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
