//! `serve_http` — the standalone HTTP serving front-end.
//!
//! Boots one or more city shards, starts a micro-batching
//! [`RecoveryEngine`] per shard plus the HTTP/1.1 server over a
//! [`ShardRouter`], and serves until `SIGTERM`/`SIGINT`, then drains
//! gracefully (listener stops accepting, in-flight requests and queued
//! batches finish) and exits 0.
//!
//! Two boot modes:
//!
//! * default — generate one synthetic city in-process and serve it as
//!   the single shard `"default"` (the pre-shard behaviour, unchanged);
//! * `--artifact PATH` (repeatable) — load each versioned model
//!   artifact (see `rntrajrec-artifact` / the `pack_city` tool) as a
//!   city shard; requests route by bounding box, and `SIGHUP` rescans
//!   every artifact path for a zero-downtime reload (as does
//!   `POST /admin/reload` per shard).
//!
//! ```bash
//! cargo run --release -p rntrajrec-serve --bin serve_http -- --addr 127.0.0.1:8080
//! # In another shell:
//! curl -s localhost:8080/healthz
//! curl -s localhost:8080/v1/example | curl -s -X POST --data-binary @- localhost:8080/v1/recover
//! curl -s localhost:8080/metrics
//! ```
//!
//! Weights are untrained (startup in milliseconds, latency identical to a
//! trained model); recovery *quality* needs trained weights — see
//! `examples/serve_city.rs` for the train-then-serve flow.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rntrajrec::model::{EndToEnd, MethodSpec};
use rntrajrec::wire::RecoverRequest;
use rntrajrec_artifact::Artifact;
use rntrajrec_roadnet::{CityConfig, RoadNetwork, SyntheticCity};
use rntrajrec_serve::{
    quant_head_env, BrownoutConfig, CityShard, EngineConfig, HttpConfig, HttpServer, QueryContext,
    RecoveryEngine, ServingModel, ShardRouter,
};
use rntrajrec_synth::{SimConfig, Simulator};

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Set by `SIGHUP`; the main loop rescans every shard's artifact path.
static RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    unsafe extern "C" fn on_signal(sig: i32) {
        // Async-signal-safe: a single relaxed store.
        if sig == 1 {
            RELOAD.store(true, Ordering::Relaxed);
        } else {
            SHUTDOWN.store(true, Ordering::Relaxed);
        }
    }
    unsafe extern "C" {
        /// C library `signal(2)`; always linked, no crate needed.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as unsafe extern "C" fn(i32);
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
        signal(SIGHUP, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    addr: String,
    queue_capacity: Option<usize>,
    deadline_ms: u64,
    max_batch: usize,
    max_delay_ms: u64,
    workers: usize,
    conn_workers: usize,
    max_body_bytes: usize,
    retry_after_secs: u64,
    city_blocks: usize,
    dim: usize,
    seed: u64,
    latency_ring: usize,
    trace: bool,
    trace_out: Option<String>,
    batch_timeout_ms: Option<u64>,
    brownout: bool,
    /// City shards to load from packed artifacts; empty = one in-process
    /// synthetic city.
    artifacts: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            queue_capacity: Some(64),
            deadline_ms: 5000,
            max_batch: 8,
            max_delay_ms: 2,
            workers: 2,
            conn_workers: 4,
            max_body_bytes: 1 << 20,
            retry_after_secs: 1,
            city_blocks: 4,
            dim: 16,
            seed: 7,
            latency_ring: 1024,
            trace: true,
            trace_out: None,
            batch_timeout_ms: Some(30_000),
            brownout: true,
            artifacts: Vec::new(),
        }
    }
}

const USAGE: &str = "serve_http — RNTrajRec HTTP serving front-end

USAGE: serve_http [OPTIONS]

OPTIONS:
    --addr HOST:PORT        bind address (default 127.0.0.1:8080; port 0 = ephemeral)
    --queue-capacity N|none admission bound on the engine queue (default 64;
                            0 sheds every request, none = unbounded)
    --deadline-ms N         per-request completion budget -> 503 (default 5000)
    --max-batch N           micro-batch flush size (default 8)
    --max-delay-ms N        micro-batch flush deadline (default 2)
    --workers N             engine worker threads (default 2)
    --conn-workers N        HTTP connection-handler threads (default 4)
    --max-body-bytes N      request body cap -> 413 (default 1 MiB)
    --retry-after-secs N    Retry-After value on 429/503 (default 1)
    --artifact PATH         load a packed city artifact as a shard (repeatable;
                            requests route by bounding box, SIGHUP reloads all)
    --city-blocks N         synthetic city size when no --artifact given (default 4)
    --dim N                 model hidden size (default 16)
    --seed N                weight/simulator seed (default 7)
    --latency-ring N        samples kept for p50/p99 latency quantiles (default 1024)
    --no-trace              disable request-lifecycle span recording (on by default)
    --trace-out PATH        dump a Chrome trace-event JSON of recorded spans on exit
    --batch-timeout-ms N|none  watchdog budget per batch -> affected members 503
                            (default 30000; none disables the watchdog)
    --no-brownout           disable the load-watermark degradation ladder
    --help                  print this help

ENVIRONMENT:
    CHAOS_FAULTS            deterministic fault injection spec, e.g.
                            'engine.worker=panic@0.01;http.write=delay:50@0.1'
                            (points: http.accept http.read http.parse
                            engine.submit engine.batch engine.worker
                            kernel.dispatch http.write)
    CHAOS_SEED              RNG seed for exact fault replay (default 0)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        // Flags that take no value must short-circuit before the value
        // fetch below.
        if flag == "--no-trace" {
            args.trace = false;
            continue;
        }
        if flag == "--no-brownout" {
            args.brownout = false;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let parse_usize = |v: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("bad value for {flag}: {v}"))
        };
        let parse_u64 = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("bad value for {flag}: {v}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value,
            "--queue-capacity" => {
                args.queue_capacity = if value == "none" {
                    None
                } else {
                    Some(parse_usize(&value)?)
                }
            }
            "--deadline-ms" => args.deadline_ms = parse_u64(&value)?,
            "--max-batch" => args.max_batch = parse_usize(&value)?.max(1),
            "--max-delay-ms" => args.max_delay_ms = parse_u64(&value)?,
            "--workers" => args.workers = parse_usize(&value)?.max(1),
            "--conn-workers" => args.conn_workers = parse_usize(&value)?.max(1),
            "--max-body-bytes" => args.max_body_bytes = parse_usize(&value)?,
            "--retry-after-secs" => args.retry_after_secs = parse_u64(&value)?,
            "--artifact" => args.artifacts.push(value),
            "--city-blocks" => args.city_blocks = parse_usize(&value)?.max(2),
            "--dim" => args.dim = parse_usize(&value)?.max(4),
            "--seed" => args.seed = parse_u64(&value)?,
            "--latency-ring" => args.latency_ring = parse_usize(&value)?.max(1),
            "--trace-out" => args.trace_out = Some(value),
            "--batch-timeout-ms" => {
                args.batch_timeout_ms = if value == "none" {
                    None
                } else {
                    Some(parse_u64(&value)?.max(1))
                }
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    install_signal_handlers();
    rntrajrec_obs::set_enabled(args.trace);

    // Deterministic fault injection, armed from the environment only —
    // never by default. One relaxed atomic load per point when disarmed.
    match rntrajrec_chaos::configure_from_env() {
        Ok(true) => eprintln!(
            "CHAOS ARMED: seed={} spec={:?} — faults will be injected deliberately",
            rntrajrec_chaos::seed(),
            std::env::var("CHAOS_FAULTS").unwrap_or_default(),
        ),
        Ok(false) => {}
        Err(e) => {
            eprintln!("error: bad CHAOS_FAULTS: {e}");
            return ExitCode::from(2);
        }
    }

    let engine_config = EngineConfig {
        max_batch: args.max_batch,
        max_delay: Duration::from_millis(args.max_delay_ms),
        workers: args.workers,
        threads_per_worker: 0,
        queue_capacity: args.queue_capacity,
        batch_timeout: args.batch_timeout_ms.map(Duration::from_millis),
        brownout: args.brownout.then(|| match args.queue_capacity {
            Some(cap) => BrownoutConfig::for_queue_capacity(cap),
            None => BrownoutConfig::default(),
        }),
        ..EngineConfig::default()
    };

    // A valid example request body per shard, served at GET /v1/example
    // so smoke tests can POST a real trajectory without hand-built
    // fixtures.
    let make_example = |net: &RoadNetwork, seed: u64| {
        let mut sim = Simulator::new(net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sim.sample(&mut rng, 8);
        let req = RecoverRequest::from_raw(&s.raw, s.target.len(), s.depart_epoch_s);
        serde_json::to_string(&req).expect("example serializes")
    };

    let mut shards: Vec<CityShard> = Vec::new();
    if args.artifacts.is_empty() {
        // Pre-shard boot: one in-process synthetic city named "default".
        eprintln!(
            "building synthetic city ({0}x{0} blocks) + RNTrajRec(d={1}, seed={2})...",
            args.city_blocks, args.dim, args.seed
        );
        let city = SyntheticCity::generate(CityConfig {
            blocks_x: args.city_blocks,
            blocks_y: args.city_blocks,
            ..CityConfig::tiny()
        });
        let grid = city.net.grid(50.0);
        let model = EndToEnd::build(
            &MethodSpec::RnTrajRec,
            &city.net,
            &grid,
            args.dim,
            args.seed,
        );
        let serving = match ServingModel::new(model) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let example = make_example(&city.net, args.seed);
        let ctx = Arc::new(QueryContext::new(city.net, 50.0));
        let engine = Arc::new(RecoveryEngine::start(serving, engine_config.clone()));
        shards.push(CityShard::new("default", engine, ctx, Some(example)));
    } else {
        for path in &args.artifacts {
            let artifact = match Artifact::read_from(Path::new(path)) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: cannot load artifact {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let loaded = match artifact.instantiate() {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: cannot instantiate artifact {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            eprintln!(
                "loaded shard '{}' from {path}: model_version={} git_sha={} ({} segments)",
                artifact.meta.city,
                artifact.meta.model_version,
                artifact.meta.git_sha,
                loaded.city.net.num_segments(),
            );
            let serving = match ServingModel::from_parts(
                loaded.model,
                loaded.x_road,
                loaded.quant,
                quant_head_env(),
            ) {
                Ok(s) => Arc::new(s),
                Err(e) => {
                    eprintln!("error: artifact {path} cannot serve: {e}");
                    return ExitCode::from(2);
                }
            };
            let example = make_example(&loaded.city.net, args.seed);
            let ctx = Arc::new(QueryContext::new(loaded.city.net, artifact.meta.cell_m));
            let engine = Arc::new(RecoveryEngine::start(serving, engine_config.clone()));
            let shard = CityShard::new(artifact.meta.city.clone(), engine, ctx, Some(example));
            shard.set_artifact_provenance(
                artifact.meta.model_version.clone(),
                artifact.meta.git_sha.clone(),
                Some(PathBuf::from(path)),
            );
            shards.push(shard);
        }
    }
    println!(
        "kernels: backend={} (NN_BACKEND={}) segment_head={}",
        rntrajrec_nn::kernels::backend::active_name(),
        std::env::var("NN_BACKEND").unwrap_or_else(|_| "auto".to_string()),
        if quant_head_env() { "int8" } else { "sparse" },
    );

    let router = Arc::new(ShardRouter::new(shards));
    for shard in router.shards() {
        let b = shard.bbox();
        println!(
            "shard '{}': bbox [{:.0}, {:.0}] x [{:.0}, {:.0}] m, model_version={}",
            shard.name(),
            b.min_x,
            b.max_x,
            b.min_y,
            b.max_y,
            shard.info().model_version,
        );
    }

    let server = match HttpServer::start_router(
        Arc::clone(&router),
        HttpConfig {
            addr: args.addr.clone(),
            connection_workers: args.conn_workers,
            connection_backlog: 64,
            deadline: Duration::from_millis(args.deadline_ms),
            max_body_bytes: args.max_body_bytes,
            retry_after_secs: args.retry_after_secs,
            latency_ring: args.latency_ring,
            ..HttpConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };

    println!("listening on http://{}", server.local_addr());
    println!(
        "admission: queue_capacity={:?} deadline={}ms max_body={}B; engine: max_batch={} max_delay={}ms workers={}",
        args.queue_capacity,
        args.deadline_ms,
        args.max_body_bytes,
        args.max_batch,
        args.max_delay_ms,
        args.workers,
    );
    println!(
        "resilience: supervised workers, watchdog={} brownout={}",
        match args.batch_timeout_ms {
            Some(ms) => format!("{ms}ms"),
            None => "off".to_string(),
        },
        if args.brownout { "on" } else { "off" },
    );

    while !SHUTDOWN.load(Ordering::Relaxed) {
        if RELOAD.swap(false, Ordering::Relaxed) {
            // SIGHUP: re-read every shard that was booted from an artifact.
            // A failed reload leaves that shard's old model serving.
            for shard in router.shards() {
                let Some(path) = shard.info().artifact_path else {
                    eprintln!(
                        "reload: shard '{}' has no artifact path, skipping",
                        shard.name()
                    );
                    continue;
                };
                match shard.reload_from_artifact(&path) {
                    Ok(r) => eprintln!(
                        "reload: shard '{}' now model_version={} git_sha={} (reload #{})",
                        r.city, r.model_version, r.git_sha, r.reloads
                    ),
                    Err(e) => eprintln!(
                        "reload: shard '{}' refused ({e}); old model still serving",
                        shard.name()
                    ),
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("signal received: draining (listener closed, in-flight batches finish)...");
    server.shutdown();
    // The server handle is gone, so this is the last router reference:
    // drain each shard's engine explicitly and report the post-drain
    // counters (requests still queued at SIGTERM are served and must show
    // in the totals).
    let shards = match Arc::try_unwrap(router) {
        Ok(router) => router.into_shards(),
        Err(_) => Vec::new(),
    };
    let mut total = (0u64, 0u64, 0u64, 0u64);
    for shard in shards {
        let name = shard.name().to_string();
        let stats = match Arc::try_unwrap(shard.into_engine()) {
            Ok(engine) => engine.drain(),
            Err(engine) => engine.stats(),
        };
        eprintln!(
            "drained '{}': {} served / {} rejected / {} failed over {} batches (mean {:.2})",
            name, stats.completed, stats.rejected, stats.failed, stats.batches, stats.mean_batch
        );
        total.0 += stats.completed;
        total.1 += stats.rejected;
        total.2 += stats.failed;
        total.3 += stats.batches;
    }
    eprintln!(
        "drained: {} served / {} rejected / {} failed over {} batches",
        total.0, total.1, total.2, total.3
    );

    if let Some(path) = &args.trace_out {
        let trace = rntrajrec_obs::chrome_trace(&rntrajrec_obs::drain());
        match std::fs::write(path, &trace) {
            Ok(()) => eprintln!("trace written to {path} ({} bytes)", trace.len()),
            Err(e) => {
                eprintln!("error: failed to write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
