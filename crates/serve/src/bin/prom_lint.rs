//! `prom_lint` — lint a Prometheus text-format exposition document.
//!
//! Reads the document from the file given as the first argument (or
//! stdin when absent or `-`), runs [`rntrajrec_obs::promlint::lint`],
//! prints one problem per line, and exits non-zero when any problem is
//! found. Used by CI to gate the live `/metrics` output:
//!
//! ```bash
//! curl -s localhost:8080/metrics | cargo run -p rntrajrec-serve --bin prom_lint
//! ```

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let text = match arg.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error: failed to read stdin: {e}");
                return ExitCode::from(2);
            }
            buf
        }
        Some("--help") | Some("-h") => {
            println!(
                "usage: prom_lint [FILE|-]  (lints Prometheus text format; - or no arg = stdin)"
            );
            return ExitCode::SUCCESS;
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: failed to read {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let problems = rntrajrec_obs::promlint::lint(&text);
    if problems.is_empty() {
        let samples = text
            .lines()
            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
            .count();
        eprintln!("ok: {samples} samples, no problems");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            println!("{p}");
        }
        eprintln!("{} problem(s) found", problems.len());
        ExitCode::FAILURE
    }
}
