//! Multi-city sharding: a router that owns N city shards, each shard a
//! full serving stack (engine + road network + brownout) over its own
//! hot-swappable model.
//!
//! The pre-shard architecture was "one process owns one model"; this
//! module is the refactor to "one process owns a [`ShardRouter`], the
//! router owns [`CityShard`]s". Every recover route resolves its request
//! to a shard by bounding box before feature extraction:
//!
//! * **single-shard** routers bypass resolution entirely, so a one-city
//!   server answers byte-for-byte what the pre-shard server answered
//!   (including the 400s feature extraction produces for far-off
//!   coordinates);
//! * multi-shard routers answer `404` for trajectories outside every
//!   shard ([`RouteError::UnknownRegion`]) and `422` for trajectories
//!   whose points span two shards ([`RouteError::Straddles`]) — a
//!   straddling trajectory is well-formed but unservable, since no
//!   single road network contains it.
//!
//! Each shard's model lives in the engine's [`ModelSlot`] and can be
//! replaced at runtime from a versioned artifact
//! ([`CityShard::reload_from_artifact`]): the artifact is read,
//! checksummed, instantiated, and validated against the shard's road
//! network *before* the swap, so a corrupt or mismatched file leaves the
//! old model serving. In-flight batches finish on the weights they
//! started with; there is no drain.
//!
//! [`ModelSlot`]: crate::engine::ModelSlot

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rntrajrec_artifact::{Artifact, ArtifactError};
use rntrajrec_geo::{BBox, XY};

use crate::{QueryContext, RecoveryEngine, ServingModel};

/// Why a request could not be routed to a shard (multi-shard routers
/// only; a single-shard router never routes).
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// No shard's bounding box contains the trajectory → `404`.
    UnknownRegion {
        /// The first offending point.
        x: f64,
        y: f64,
    },
    /// The trajectory's points fall in two different shards → `422`.
    /// Well-formed, but no single road network can serve it.
    Straddles { a: String, b: String },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownRegion { x, y } => {
                write!(f, "no city shard covers point ({x:.1}, {y:.1})")
            }
            RouteError::Straddles { a, b } => {
                write!(f, "trajectory straddles city shards '{a}' and '{b}'")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Why a hot reload was refused. Every variant leaves the shard's
/// previous model serving.
#[derive(Debug)]
pub enum ReloadError {
    /// The artifact file could not be read, failed its checksum, or did
    /// not match its own manifest ([`ArtifactError`]).
    Artifact(ArtifactError),
    /// The artifact is valid but packed for a different city than the
    /// shard it was pushed to.
    WrongCity { shard: String, artifact: String },
    /// The artifact's road network differs from the shard's (segment
    /// count or bounding box drifted) — its segment indices would be
    /// meaningless against the shard's query context.
    NetworkMismatch { detail: String },
    /// The instantiated model cannot serve (no tape-free path).
    NotServable(String),
}

impl ReloadError {
    /// The HTTP status this refusal maps to on `POST /admin/reload`.
    pub fn http_status(&self) -> (u16, &'static str) {
        match self {
            // A missing/unreadable file is the caller naming a bad path.
            ReloadError::Artifact(ArtifactError::Io(_)) => (400, "Bad Request"),
            // A corrupt or self-inconsistent artifact is an unprocessable
            // entity: syntactically delivered, semantically unusable.
            ReloadError::Artifact(_) => (422, "Unprocessable Entity"),
            // Valid artifact, wrong target: a conflict with this shard.
            ReloadError::WrongCity { .. } | ReloadError::NetworkMismatch { .. } => {
                (409, "Conflict")
            }
            ReloadError::NotServable(_) => (422, "Unprocessable Entity"),
        }
    }
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Artifact(e) => write!(f, "{e}"),
            ReloadError::WrongCity { shard, artifact } => {
                write!(f, "artifact is for city '{artifact}', shard is '{shard}'")
            }
            ReloadError::NetworkMismatch { detail } => {
                write!(f, "artifact road network differs from shard: {detail}")
            }
            ReloadError::NotServable(msg) => write!(f, "loaded model cannot serve: {msg}"),
        }
    }
}

impl std::error::Error for ReloadError {}

impl From<ArtifactError> for ReloadError {
    fn from(e: ArtifactError) -> Self {
        ReloadError::Artifact(e)
    }
}

/// Mutable artifact provenance for one shard, behind the shard's info
/// lock: what model version is live and where it came from. Read by
/// `/metrics` (`rntrajrec_artifact_info`) and `/healthz`.
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// Operator-assigned model version (`"in-process"` for models built
    /// at boot rather than loaded from an artifact).
    pub model_version: String,
    /// Git revision the live weights were packed by.
    pub git_sha: String,
    /// Artifact file backing the live model, when there is one. SIGHUP
    /// rescans reload from this path.
    pub artifact_path: Option<PathBuf>,
    /// Successful hot reloads since the shard started.
    pub reloads: u64,
}

/// Successful-reload receipt for the admin response and logs.
#[derive(Debug, Clone)]
pub struct ReloadReceipt {
    pub city: String,
    pub model_version: String,
    pub git_sha: String,
    pub reloads: u64,
}

/// One city's full serving stack: micro-batching engine (which owns the
/// hot-swappable model slot and the brownout controller), the query
/// context over the city's road network, its bounding box for routing,
/// and the artifact provenance of the live model.
/// Routing admission margin (m) around each shard's bounding box, equal
/// to the feature extractor's receptive field δ: a GPS point the shard's
/// own extractor would accept (border noise included) must route to it
/// rather than 404.
pub const ROUTE_MARGIN_M: f64 = 400.0;

pub struct CityShard {
    name: String,
    engine: Arc<RecoveryEngine>,
    ctx: Arc<QueryContext>,
    bbox: BBox,
    /// `bbox.inflated(ROUTE_MARGIN_M)`, precomputed for `resolve`.
    route_bbox: BBox,
    example: Option<String>,
    info: Mutex<ShardInfo>,
}

impl CityShard {
    /// Wrap an engine + query context built over the same road network
    /// as a shard named `name`. `example` is an optional pre-serialized
    /// request body served at `GET /v1/example?city=name`.
    pub fn new(
        name: impl Into<String>,
        engine: Arc<RecoveryEngine>,
        ctx: Arc<QueryContext>,
        example: Option<String>,
    ) -> Self {
        let bbox = ctx.bbox();
        Self {
            name: name.into(),
            engine,
            ctx,
            bbox,
            route_bbox: bbox.inflated(ROUTE_MARGIN_M),
            example,
            info: Mutex::new(ShardInfo {
                model_version: "in-process".to_string(),
                git_sha: crate::http::GIT_SHA.to_string(),
                artifact_path: None,
                reloads: 0,
            }),
        }
    }

    /// Record that the live model came from `artifact` (used when a shard
    /// is booted from an artifact rather than built in-process, so the
    /// provenance gauges and SIGHUP rescans are correct from the start).
    pub fn set_artifact_provenance(
        &self,
        model_version: impl Into<String>,
        git_sha: impl Into<String>,
        path: Option<PathBuf>,
    ) {
        let mut info = self.info.lock().unwrap();
        info.model_version = model_version.into();
        info.git_sha = git_sha.into();
        info.artifact_path = path;
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn engine(&self) -> &Arc<RecoveryEngine> {
        &self.engine
    }

    pub fn ctx(&self) -> &Arc<QueryContext> {
        &self.ctx
    }

    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    pub fn example(&self) -> Option<&str> {
        self.example.as_deref()
    }

    /// Snapshot the live model's provenance.
    pub fn info(&self) -> ShardInfo {
        self.info.lock().unwrap().clone()
    }

    /// Tear down, handing the engine back so a binary can drain it
    /// explicitly and report post-drain stats.
    pub fn into_engine(self) -> Arc<RecoveryEngine> {
        self.engine
    }

    /// Zero-downtime hot reload from a versioned artifact.
    ///
    /// Read → checksum → instantiate → validate against this shard's
    /// road network → swap. Every failure path returns **before** the
    /// swap, so the old model keeps serving; after the swap, future
    /// batches assemble against the new weights while in-flight batches
    /// finish on the old ones (the engine reads its model slot once per
    /// decode session).
    pub fn reload_from_artifact(&self, path: &Path) -> Result<ReloadReceipt, ReloadError> {
        let artifact = Artifact::read_from(path)?;
        if artifact.meta.city != self.name {
            return Err(ReloadError::WrongCity {
                shard: self.name.clone(),
                artifact: artifact.meta.city.clone(),
            });
        }
        let loaded = artifact.instantiate()?;
        // The shard's query context maps GPS points to segment indices of
        // *its* network; a reload must describe the same network exactly
        // or every recovered index would be silently wrong.
        let segs = self.ctx.net().num_segments();
        if loaded.city.net.num_segments() != segs {
            return Err(ReloadError::NetworkMismatch {
                detail: format!(
                    "{} segments in artifact vs {segs} in shard",
                    loaded.city.net.num_segments()
                ),
            });
        }
        let lb = loaded.city.net.bbox();
        if lb != self.bbox {
            return Err(ReloadError::NetworkMismatch {
                detail: format!(
                    "bbox [{}, {}, {}, {}] in artifact vs [{}, {}, {}, {}] in shard",
                    lb.min_x,
                    lb.min_y,
                    lb.max_x,
                    lb.max_y,
                    self.bbox.min_x,
                    self.bbox.min_y,
                    self.bbox.max_x,
                    self.bbox.max_y,
                ),
            });
        }
        let serving = ServingModel::from_parts(
            loaded.model,
            loaded.x_road,
            loaded.quant,
            crate::service::quant_head_env(),
        )
        .map_err(|e| ReloadError::NotServable(e.to_string()))?;
        let _old = self.engine.swap_model(Arc::new(serving));
        let mut info = self.info.lock().unwrap();
        info.model_version = artifact.meta.model_version.clone();
        info.git_sha = artifact.meta.git_sha.clone();
        info.artifact_path = Some(path.to_path_buf());
        info.reloads += 1;
        Ok(ReloadReceipt {
            city: self.name.clone(),
            model_version: info.model_version.clone(),
            git_sha: info.git_sha.clone(),
            reloads: info.reloads,
        })
    }
}

/// The registry of city shards a server routes across.
pub struct ShardRouter {
    shards: Vec<CityShard>,
}

impl ShardRouter {
    /// A router over `shards`. Shard names must be unique; multi-shard
    /// routers should cover disjoint bounding boxes (an overlapping
    /// point routes to the first shard that contains it).
    pub fn new(shards: Vec<CityShard>) -> Self {
        assert!(!shards.is_empty(), "a router needs at least one shard");
        for (i, a) in shards.iter().enumerate() {
            for b in &shards[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate shard name '{}'", a.name);
            }
        }
        Self { shards }
    }

    /// The single-shard router the compatibility [`HttpServer::start`]
    /// wrapper builds.
    ///
    /// [`HttpServer::start`]: crate::HttpServer::start
    pub fn single(shard: CityShard) -> Self {
        Self::new(vec![shard])
    }

    pub fn shards(&self) -> &[CityShard] {
        &self.shards
    }

    /// Tear down into the owned shards (drain-at-exit path).
    pub fn into_shards(self) -> Vec<CityShard> {
        self.shards
    }

    pub fn is_single(&self) -> bool {
        self.shards.len() == 1
    }

    pub fn by_name(&self, city: &str) -> Option<&CityShard> {
        self.shards.iter().find(|s| s.name == city)
    }

    /// Route a trajectory to the one shard whose bounding box (inflated
    /// by [`ROUTE_MARGIN_M`], the extractor's receptive field, so border
    /// GPS noise routes like its trajectory) contains every point.
    ///
    /// A **single-shard** router returns its shard without looking at
    /// the points at all: the pre-shard server never bbox-gated
    /// requests (feature extraction's own far-off-site check answered
    /// with a field-precise 400), and the one-city case must stay
    /// byte-for-byte identical to it. For the same reason an empty
    /// trajectory routes to the first shard, whose wire layer rejects
    /// it with the pre-shard 400.
    pub fn resolve(&self, points: &[[f64; 3]]) -> Result<&CityShard, RouteError> {
        if self.shards.len() == 1 || points.is_empty() {
            return Ok(&self.shards[0]);
        }
        let mut chosen: Option<usize> = None;
        for &[x, y, _] in points {
            let here = self
                .shards
                .iter()
                .position(|s| s.route_bbox.contains(&XY::new(x, y)));
            match (chosen, here) {
                (_, None) => return Err(RouteError::UnknownRegion { x, y }),
                (None, Some(i)) => chosen = Some(i),
                (Some(a), Some(b)) if a != b => {
                    return Err(RouteError::Straddles {
                        a: self.shards[a].name.clone(),
                        b: self.shards[b].name.clone(),
                    })
                }
                (Some(_), Some(_)) => {}
            }
        }
        Ok(&self.shards[chosen.expect("non-empty points chose a shard")])
    }
}
