//! The serving-side model wrapper: a trained [`EndToEnd`] model validated
//! for tape-free inference, plus the precomputed road-embedding cache and
//! the [`QueryContext`] that turns wire requests into model inputs.

use rntrajrec::wire::RecoverRequest;
use rntrajrec::EndToEnd;
use rntrajrec_geo::GridSpec;
use rntrajrec_models::{FeatureExtractor, QueryError, SampleInput, SegmentHead};
use rntrajrec_nn::quant::QuantizedLinear;
use rntrajrec_nn::Tensor;
use rntrajrec_roadnet::{RTree, RoadNetwork};
use rntrajrec_synth::TimeContext;

/// A recovered trajectory: one `(segment id, moving rate)` per ϵρ step.
pub type RecoveredPath = Vec<(usize, f32)>;

/// Precomputed GridGNN road representation `X_road ∈ R^{|V|×d}`.
///
/// The paper notes the road-network representation is input-independent
/// and can be computed in advance at inference time; this cache is that
/// observation made structural. It is built once per (road network,
/// weights) pair and shared read-only — `Arc<ServingModel>` — across every
/// worker thread, so per-request encoder work is only the GPS encoder and
/// decoder.
#[derive(Debug, Clone)]
pub struct RoadEmbeddingCache {
    /// `[|V|, d]` — one embedding row per road segment.
    pub x_road: Tensor,
}

impl RoadEmbeddingCache {
    /// Build from a model's current weights; `None` when the encoder has
    /// no input-independent representation (pure-sequence baselines).
    pub fn build(model: &EndToEnd) -> Option<Self> {
        model.precompute_road().map(|x_road| Self { x_road })
    }
}

/// Why a model cannot be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The encoder implements no tape-free inference path (only the
    /// RNTrajRec encoder does today); serve with [`EndToEnd::predict`]
    /// offline instead.
    NoInferPath { encoder: String },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoInferPath { encoder } => {
                write!(f, "encoder '{encoder}' has no tape-free inference path")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "inference panicked".to_string())
}

/// Should serving quantize the decoder's segment head to int8?
/// (`NN_QUANT_HEAD=1|true|int8`; anything else — including unset — keeps
/// the f32 sparse head.)
pub fn quant_head_env() -> bool {
    matches!(
        std::env::var("NN_QUANT_HEAD").as_deref(),
        Ok("1") | Ok("true") | Ok("int8")
    )
}

/// Per-batch serving options for [`ServingModel::recover_batch_opts`]:
/// the engine's deadline and brownout decisions, carried into the fused
/// pass.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Per-member absolute deadlines (parallel to the input slice; empty
    /// = no deadlines). A member whose deadline passes mid-decode is
    /// cancelled through the decoder's state-compaction path — survivors
    /// stay bit-identical — and reported as
    /// [`MemberError::DeadlineExceeded`].
    pub deadlines: Vec<Option<std::time::Instant>>,
    /// Brownout override: serve this batch with the int8 quantized head
    /// regardless of the configured default (falls back to the sparse
    /// head if quantization was impossible).
    pub degraded_head: bool,
}

/// Why one batch member failed to produce a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberError {
    /// Inference panicked for this member (malformed input, injected
    /// fault); the engine itself stays up.
    Failed(String),
    /// The member's deadline expired mid-decode and it was cancelled out
    /// of the fused batch.
    DeadlineExceeded,
}

impl std::fmt::Display for MemberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemberError::Failed(msg) => write!(f, "{msg}"),
            MemberError::DeadlineExceeded => write!(f, "deadline exceeded mid-decode"),
        }
    }
}

impl std::error::Error for MemberError {}

/// A model ready to serve: tape-free path validated at construction, road
/// embeddings precomputed, and the decoder's segment head pre-quantized
/// to int8 — served by default under `NN_QUANT_HEAD`, and otherwise held
/// ready as the brownout degraded head. Shared read-only across worker
/// threads.
pub struct ServingModel {
    model: EndToEnd,
    road: Option<RoadEmbeddingCache>,
    /// Int8 segment head, built once at load. Always present so the
    /// brownout controller can switch to it under pressure without a
    /// load-time decision.
    quant: QuantizedLinear,
    /// Serve the int8 head by default (vs only in brownout).
    default_int8: bool,
}

impl ServingModel {
    /// Wrap a trained model, honouring the `NN_QUANT_HEAD` env knob.
    /// Fails fast (rather than at first request) when the encoder cannot
    /// run without a tape.
    pub fn new(model: EndToEnd) -> Result<Self, ServeError> {
        Self::with_quantized_head(model, quant_head_env())
    }

    /// Wrap a trained model with an explicit head choice: `quantized`
    /// pre-quantizes the decoder's `[d,|V|]` segment-head weights to
    /// per-channel int8 ([`QuantizedLinear`]), otherwise the f32
    /// sparse head serves.
    pub fn with_quantized_head(model: EndToEnd, quantized: bool) -> Result<Self, ServeError> {
        if !model.supports_infer() {
            return Err(ServeError::NoInferPath {
                encoder: model.name.clone(),
            });
        }
        let road = RoadEmbeddingCache::build(&model);
        let quant = model.decoder.quantized_segment_head(&model.store);
        Ok(Self {
            model,
            road,
            quant,
            default_int8: quantized,
        })
    }

    /// Wrap a model whose serving caches were **loaded** rather than
    /// derived — the artifact hot-reload path. A packed `x_road` /
    /// int8 head is used as-is (the artifact loader has already
    /// shape-checked both against the model); a missing one falls back
    /// to deriving from the weights, exactly as
    /// [`ServingModel::with_quantized_head`] would.
    pub fn from_parts(
        model: EndToEnd,
        x_road: Option<Tensor>,
        quant: Option<QuantizedLinear>,
        quantized: bool,
    ) -> Result<Self, ServeError> {
        if !model.supports_infer() {
            return Err(ServeError::NoInferPath {
                encoder: model.name.clone(),
            });
        }
        let road = match x_road {
            Some(x_road) => Some(RoadEmbeddingCache { x_road }),
            None => RoadEmbeddingCache::build(&model),
        };
        let quant = quant.unwrap_or_else(|| model.decoder.quantized_segment_head(&model.store));
        Ok(Self {
            model,
            road,
            quant,
            default_int8: quantized,
        })
    }

    /// The decoder segment head this model serves with by default.
    pub fn head(&self) -> SegmentHead<'_> {
        if self.default_int8 {
            SegmentHead::Quantized(&self.quant)
        } else {
            SegmentHead::Sparse
        }
    }

    /// The degraded (brownout) segment head: always the int8 quantized
    /// head — cheapest per step, pre-built at load.
    pub fn degraded_head(&self) -> SegmentHead<'_> {
        SegmentHead::Quantized(&self.quant)
    }

    /// Short name of the default segment head, for logs and `/metrics`.
    pub fn head_name(&self) -> &'static str {
        if self.default_int8 {
            "int8"
        } else {
            "sparse"
        }
    }

    /// Recover one trajectory on the tape-free hot path.
    pub fn recover(&self, input: &SampleInput) -> RecoveredPath {
        self.model
            .infer_predict_with(input, self.road.as_ref().map(|c| &c.x_road), self.head())
            .expect("infer path validated in ServingModel::new")
    }

    /// Recover a whole micro-batch through the **fused encoder + decoder**
    /// ([`rntrajrec::EndToEnd::infer_predict_batch`]): one stacked encoder
    /// pass for the whole batch (GraphNorm statistics stay scoped per
    /// member, so batching cannot change results) and decode steps as
    /// stacked `[B, ·]` products — one matmul per projection / head
    /// instead of one per member — with output bit-identical to
    /// per-member [`ServingModel::recover`].
    ///
    /// Panic isolation: a malformed member panics the fused pass, so on
    /// panic the batch falls back to per-member recovery, each member
    /// individually caught — the bad request fails alone (`Err` with the
    /// panic message) and every healthy member still returns its exact
    /// result.
    pub fn recover_batch(&self, inputs: &[&SampleInput]) -> Vec<Result<RecoveredPath, String>> {
        self.recover_batch_opts(inputs, &BatchOptions::default())
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect()
    }

    /// [`ServingModel::recover_batch`] with per-batch [`BatchOptions`]:
    /// deadline propagation into the decode loop and the brownout head
    /// override. Same fused pass, same panic-isolation fallback; members
    /// cancelled mid-decode report [`MemberError::DeadlineExceeded`].
    pub fn recover_batch_opts(
        &self,
        inputs: &[&SampleInput],
        opts: &BatchOptions,
    ) -> Vec<Result<RecoveredPath, MemberError>> {
        let road = self.road.as_ref().map(|c| &c.x_road);
        let head = if opts.degraded_head {
            self.degraded_head()
        } else {
            self.head()
        };
        let expired = |i: usize| {
            opts.deadlines
                .get(i)
                .copied()
                .flatten()
                .is_some_and(|d| std::time::Instant::now() >= d)
        };
        let fused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.model
                .infer_predict_batch_ctl(inputs, road, head, &mut |i, _step| expired(i))
                .expect("infer path validated in ServingModel::new")
        }));
        match fused {
            Ok((paths, cancelled)) => paths
                .into_iter()
                .zip(cancelled)
                .map(|(path, cut)| {
                    if cut {
                        Err(MemberError::DeadlineExceeded)
                    } else {
                        Ok(path)
                    }
                })
                .collect(),
            Err(_) => inputs
                .iter()
                .enumerate()
                .map(|(i, input)| {
                    // Per-member fallback after a fused-pass panic. The
                    // sequential path has no step-level cancel hook, so
                    // the deadline is enforced at member granularity:
                    // already-expired members fail without decoding.
                    if expired(i) {
                        return Err(MemberError::DeadlineExceeded);
                    }
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.model
                            .infer_predict_with(input, road, head)
                            .expect("infer path validated in ServingModel::new")
                    }))
                    .map_err(|payload| MemberError::Failed(panic_message(&payload)))
                })
                .collect(),
        }
    }

    /// The continuous-batching / streaming sibling of
    /// [`ServingModel::recover_batch_opts`]
    /// ([`rntrajrec::EndToEnd::infer_predict_batch_stream`]): the
    /// caller's [`rntrajrec::StreamCtl`] hooks drive mid-decode
    /// cancellation, mid-decode **admission** of new requests (their
    /// encoder pass runs fused with co-arrivals and splices into the
    /// live decode stack), and per-step streaming. Incumbents stay
    /// bit-identical to a closed batch whether or not anyone joins.
    ///
    /// Unlike the closed-batch path there is no per-member fallback
    /// here: a panic in the fused pass returns `Err(message)` and the
    /// caller (the engine) re-runs the collected session through
    /// [`ServingModel::recover_batch_opts`], which isolates the bad
    /// member.
    pub fn recover_batch_stream(
        &self,
        inputs: &[&SampleInput],
        degraded_head: bool,
        ctl: &mut rntrajrec::StreamCtl<'_>,
    ) -> Result<(Vec<RecoveredPath>, Vec<bool>), String> {
        let road = self.road.as_ref().map(|c| &c.x_road);
        let head = if degraded_head {
            self.degraded_head()
        } else {
            self.head()
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.model
                .infer_predict_batch_stream(inputs, road, head, ctl)
                .expect("infer path validated in ServingModel::new")
        }))
        .map_err(|payload| panic_message(&payload))
    }

    pub fn model(&self) -> &EndToEnd {
        &self.model
    }

    pub fn road_cache(&self) -> Option<&RoadEmbeddingCache> {
        self.road.as_ref()
    }
}

/// Server-side feature extraction context: everything needed to turn a
/// wire [`RecoverRequest`] (raw GPS points, no ground truth) into the
/// [`SampleInput`] the engine consumes. Owns the road network, its
/// spatial index, and the grid spec; shared read-only (`Arc`) across HTTP
/// worker threads. Must be built over the **same road network and grid**
/// as the served model — recovered segment indices are meaningless
/// otherwise.
pub struct QueryContext {
    net: RoadNetwork,
    rtree: RTree,
    grid: GridSpec,
    /// `net.bbox()` cached once — it scans every segment geometry, which
    /// must not happen per request.
    bbox: rntrajrec_geo::BBox,
}

impl QueryContext {
    /// Index `net` and cover it with `cell_m`-metre grid cells (the paper
    /// uses 50 m; pass the same value the model was built with).
    pub fn new(net: RoadNetwork, cell_m: f64) -> Self {
        let rtree = RTree::build(&net);
        let grid = net.grid(cell_m);
        let bbox = net.bbox();
        Self {
            net,
            rtree,
            grid,
            bbox,
        }
    }

    /// Convert a validated wire request into a model input via
    /// [`FeatureExtractor::extract_query`]. The result is bit-identical
    /// to what an in-process caller holding the same context would build
    /// — the property behind HTTP ≡ in-process recovery.
    ///
    /// # Errors
    /// A [`QueryError`] for request shapes feature extraction refuses
    /// (empty trajectory, zero target, non-finite or far-off-site
    /// coordinates) — the HTTP layer maps these to field-precise `400`s;
    /// they must never panic a connection worker.
    pub fn sample_input(&self, req: &RecoverRequest) -> Result<SampleInput, QueryError> {
        let fx = FeatureExtractor::with_bbox(&self.net, &self.rtree, self.grid, self.bbox);
        fx.extract_query(
            &req.raw_trajectory(),
            req.target_len,
            TimeContext::from_epoch_s(req.depart_epoch_s),
        )
    }

    pub fn net(&self) -> &RoadNetwork {
        &self.net
    }

    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The road network's bounding box (cached at construction). The
    /// shard router uses it to resolve requests to city shards.
    pub fn bbox(&self) -> rntrajrec_geo::BBox {
        self.bbox
    }
}
