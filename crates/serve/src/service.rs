//! The serving-side model wrapper: a trained [`EndToEnd`] model validated
//! for tape-free inference, plus the precomputed road-embedding cache.

use rntrajrec::EndToEnd;
use rntrajrec_models::SampleInput;
use rntrajrec_nn::Tensor;

/// Precomputed GridGNN road representation `X_road ∈ R^{|V|×d}`.
///
/// The paper notes the road-network representation is input-independent
/// and can be computed in advance at inference time; this cache is that
/// observation made structural. It is built once per (road network,
/// weights) pair and shared read-only — `Arc<ServingModel>` — across every
/// worker thread, so per-request encoder work is only the GPS encoder and
/// decoder.
#[derive(Debug, Clone)]
pub struct RoadEmbeddingCache {
    /// `[|V|, d]` — one embedding row per road segment.
    pub x_road: Tensor,
}

impl RoadEmbeddingCache {
    /// Build from a model's current weights; `None` when the encoder has
    /// no input-independent representation (pure-sequence baselines).
    pub fn build(model: &EndToEnd) -> Option<Self> {
        model.precompute_road().map(|x_road| Self { x_road })
    }
}

/// Why a model cannot be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The encoder implements no tape-free inference path (only the
    /// RNTrajRec encoder does today); serve with [`EndToEnd::predict`]
    /// offline instead.
    NoInferPath { encoder: String },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoInferPath { encoder } => {
                write!(f, "encoder '{encoder}' has no tape-free inference path")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A model ready to serve: tape-free path validated at construction, road
/// embeddings precomputed. Shared read-only across worker threads.
pub struct ServingModel {
    model: EndToEnd,
    road: Option<RoadEmbeddingCache>,
}

impl ServingModel {
    /// Wrap a trained model. Fails fast (rather than at first request)
    /// when the encoder cannot run without a tape.
    pub fn new(model: EndToEnd) -> Result<Self, ServeError> {
        if !model.supports_infer() {
            return Err(ServeError::NoInferPath {
                encoder: model.name.clone(),
            });
        }
        let road = RoadEmbeddingCache::build(&model);
        Ok(Self { model, road })
    }

    /// Recover one trajectory on the tape-free hot path.
    pub fn recover(&self, input: &SampleInput) -> Vec<(usize, f32)> {
        self.model
            .infer_predict(input, self.road.as_ref().map(|c| &c.x_road))
            .expect("infer path validated in ServingModel::new")
    }

    pub fn model(&self) -> &EndToEnd {
        &self.model
    }

    pub fn road_cache(&self) -> Option<&RoadEmbeddingCache> {
        self.road.as_ref()
    }
}
