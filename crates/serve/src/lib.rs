//! `rntrajrec-serve` — online trajectory-recovery serving.
//!
//! The training stack (`rntrajrec`, `rntrajrec-models`, `rntrajrec-nn`)
//! predicts by building a full autograd tape per trajectory and recomputes
//! the GridGNN road representation on every call — fine for regenerating
//! the paper's tables, hopeless for an online service. This crate is the
//! serving path on top of the same weights:
//!
//! * [`ServingModel`] — a trained [`rntrajrec::EndToEnd`] model validated
//!   for **tape-free inference** (`rntrajrec_nn::infer`: plain tensor ops,
//!   no gradient bookkeeping or node allocation), with the
//!   [`RoadEmbeddingCache`] — GridGNN grid-cell/segment embeddings
//!   (`X_road`) precomputed once per road network — attached. Shared
//!   read-only (`Arc`) across worker threads, so per-request work is only
//!   the GPS encoder and decoder.
//! * [`RecoveryEngine`] — a multi-threaded **micro-batching** scheduler:
//!   requests queue up, a batch flushes on size ([`EngineConfig::max_batch`])
//!   or deadline ([`EngineConfig::max_delay`]), workers drain whole batches
//!   through the **fused decode path** ([`ServingModel::recover_batch`]):
//!   encoders run per member, decoder steps run as stacked `[B, ·]`
//!   matmuls — one product per head per step for the whole batch instead
//!   of one per member. Batched output is bit-identical to sequential
//!   per-request inference (every fused kernel preserves the member's own
//!   per-element accumulation order), so the fusion is pure performance,
//!   never a numerical change.
//! * [`http`] / [`HttpServer`] — the dependency-free HTTP/1.1 network
//!   front-end (`POST /v1/recover`, `GET /healthz`, `GET /metrics`) with
//!   **admission control**: a bounded engine queue
//!   ([`EngineConfig::queue_capacity`] → typed [`EngineError::Overloaded`]
//!   → `429` + `Retry-After`), per-request deadline budgets (→ `503`), a
//!   bounded connection backlog, and graceful drain on shutdown. The
//!   [`QueryContext`] turns wire requests (`rntrajrec::wire` — raw GPS
//!   points, no ground truth) into model inputs; HTTP-served results are
//!   **bit-identical** to in-process dispatch (`tests/http_roundtrip.rs`).
//!   `serve_http` is the standalone binary.
//!
//! # Compute threading: workers × intra-op threads
//!
//! Two thread pools compose here, and they multiply:
//!
//! * **Workers** ([`EngineConfig::workers`]) each run whole requests —
//!   they scale *throughput* under concurrent load.
//! * **Intra-op kernel threads** ([`EngineConfig::threads_per_worker`],
//!   overridden by the `NN_THREADS` env var) parallelise the individual
//!   matmul / GAT kernels inside one request via `rntrajrec_nn::pool` —
//!   they cut *single-request latency*.
//!
//! Size them so `workers × threads_per_worker ≤ cores`. Rules of thumb:
//! high-concurrency serving wants many workers × 1 intra-op thread (the
//! default); latency-sensitive low-QPS serving wants few workers with
//! intra-op threads covering the cores. Over-subscription degrades
//! gracefully rather than deadlocking — the kernel pool runs one parallel
//! region at a time and any concurrent region simply executes inline —
//! but it wastes context switches. The intra-op setting is process-wide;
//! kernel outputs are bit-identical at any thread count, so it is purely
//! a performance knob.
//!
//! ```no_run
//! use std::sync::Arc;
//! use rntrajrec::experiments::{ExperimentScale, Pipeline};
//! use rntrajrec::model::{EndToEnd, MethodSpec};
//! use rntrajrec_serve::{EngineConfig, RecoveryEngine, ServingModel};
//! use rntrajrec_synth::DatasetConfig;
//!
//! let scale = ExperimentScale::quick();
//! let pipeline = Pipeline::prepare(DatasetConfig::tiny(8, 40), &scale);
//! let model = EndToEnd::build(
//!     &MethodSpec::RnTrajRec,
//!     &pipeline.dataset.city.net,
//!     &pipeline.grid,
//!     scale.dim,
//!     scale.seed,
//! );
//! let serving = Arc::new(ServingModel::new(model).unwrap());
//! let engine = RecoveryEngine::start(serving, EngineConfig::default());
//! let recovered = engine.recover(pipeline.test_inputs[0].clone());
//! println!("{} segments in {:?}", recovered.path.len(), recovered.latency);
//! ```

pub mod brownout;
mod engine;
pub mod http;
mod service;
pub mod shard;

pub use brownout::{BrownoutConfig, BrownoutController};
pub use engine::{
    EngineConfig, EngineError, EngineStats, Priority, Recovered, RecoveryEngine, RecoveryHandle,
    StepUpdate, StepWait, Steps, SubmitOptions,
};
pub use http::{HttpConfig, HttpServer};
pub use service::{
    quant_head_env, BatchOptions, MemberError, QueryContext, RoadEmbeddingCache, ServeError,
    ServingModel,
};
pub use shard::{CityShard, ReloadError, ReloadReceipt, RouteError, ShardInfo, ShardRouter};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use rntrajrec::model::{EndToEnd, MethodSpec};
    use rntrajrec_models::{FeatureExtractor, SampleInput};
    use rntrajrec_roadnet::{CityConfig, RTree, SyntheticCity};
    use rntrajrec_synth::{SimConfig, Simulator};

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(n: usize) -> (SyntheticCity, Vec<SampleInput>) {
        let city = SyntheticCity::generate(CityConfig::tiny());
        let rtree = RTree::build(&city.net);
        let grid = city.net.grid(50.0);
        let fx = FeatureExtractor::new(&city.net, &rtree, grid);
        let mut sim = Simulator::new(
            &city.net,
            SimConfig {
                target_len: 9,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        let inputs = (0..n)
            .map(|_| fx.extract(&sim.sample(&mut rng, 8)))
            .collect();
        (city, inputs)
    }

    fn serving(city: &SyntheticCity) -> Arc<ServingModel> {
        let grid = city.net.grid(50.0);
        let model = EndToEnd::build(&MethodSpec::RnTrajRec, &city.net, &grid, 16, 7);
        Arc::new(ServingModel::new(model).expect("RNTrajRec serves"))
    }

    #[test]
    fn rejects_models_without_infer_path() {
        let (city, _) = fixture(0);
        let grid = city.net.grid(50.0);
        let model = EndToEnd::build(&MethodSpec::MTrajRec, &city.net, &grid, 16, 7);
        match ServingModel::new(model) {
            Err(ServeError::NoInferPath { encoder }) => assert_eq!(encoder, "MTrajRec"),
            Ok(_) => panic!("MTrajRec has no tape-free path and must be rejected"),
        }
    }

    #[test]
    fn road_cache_is_precomputed() {
        let (city, _) = fixture(0);
        let model = serving(&city);
        let cache = model.road_cache().expect("RNTrajRec precomputes X_road");
        assert_eq!(cache.x_road.rows, city.net.num_segments());
        assert!(cache.x_road.all_finite());
    }

    /// The acceptance property: micro-batched engine output must equal
    /// sequential per-request inference exactly, bit for bit, under
    /// multi-threaded execution and arbitrary batch grouping.
    #[test]
    fn batched_equals_sequential_bitwise() {
        let (city, inputs) = fixture(12);
        let model = serving(&city);
        let sequential: Vec<Vec<(usize, f32)>> = inputs.iter().map(|i| model.recover(i)).collect();

        let engine = RecoveryEngine::start(
            Arc::clone(&model),
            EngineConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                workers: 4,
                threads_per_worker: 0,
                queue_capacity: None,
                ..EngineConfig::default()
            },
        );
        let handles: Vec<_> = inputs
            .iter()
            .map(|i| {
                engine
                    .submit(i.clone(), SubmitOptions::default())
                    .expect("unbounded queue accepts")
            })
            .collect();
        for (handle, want) in handles.into_iter().zip(&sequential) {
            let got = handle.wait();
            assert_eq!(&got.path, want, "batched result diverged from sequential");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 12);
        assert_eq!(stats.completed, 12);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let (city, inputs) = fixture(1);
        let model = serving(&city);
        // Batch size far larger than the request count: only the deadline
        // can flush this.
        let engine = RecoveryEngine::start(
            model,
            EngineConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(5),
                workers: 1,
                threads_per_worker: 0,
                queue_capacity: None,
                ..EngineConfig::default()
            },
        );
        let r = engine.recover(inputs[0].clone());
        assert_eq!(r.batch_size, 1);
        let stats = engine.stats();
        assert_eq!(stats.flushed_deadline, 1);
        assert_eq!(stats.flushed_full, 0);
    }

    #[test]
    fn size_flushes_full_batches() {
        let (city, inputs) = fixture(8);
        let model = serving(&city);
        // Long deadline: only the size trigger can flush promptly.
        let engine = RecoveryEngine::start(
            model,
            EngineConfig {
                max_batch: 2,
                max_delay: Duration::from_secs(5),
                workers: 1,
                threads_per_worker: 0,
                queue_capacity: None,
                ..EngineConfig::default()
            },
        );
        let handles: Vec<_> = inputs
            .iter()
            .map(|i| {
                engine
                    .submit(i.clone(), SubmitOptions::default())
                    .expect("unbounded queue accepts")
            })
            .collect();
        for h in handles {
            let r = h.wait();
            assert!(!r.path.is_empty());
        }
        let stats = engine.stats();
        assert!(
            stats.flushed_full >= 1,
            "expected at least one size-triggered flush"
        );
        assert_eq!(stats.completed, 8);
    }

    #[test]
    fn concurrent_clients_all_complete() {
        let (city, inputs) = fixture(6);
        let model = serving(&city);
        let sequential: Vec<Vec<(usize, f32)>> = inputs.iter().map(|i| model.recover(i)).collect();
        let engine = RecoveryEngine::start(Arc::clone(&model), EngineConfig::default());
        std::thread::scope(|s| {
            for round in 0..3 {
                let engine = &engine;
                let inputs = &inputs;
                let sequential = &sequential;
                s.spawn(move || {
                    for (input, want) in inputs.iter().zip(sequential) {
                        let got = engine.recover(input.clone());
                        assert_eq!(&got.path, want, "round {round} diverged");
                    }
                });
            }
        });
        assert_eq!(engine.stats().completed, 18);
    }

    #[test]
    fn malformed_request_fails_without_killing_the_engine() {
        let (city, inputs) = fixture(2);
        let model = serving(&city);
        // Single worker: if the panic killed the thread, the follow-up
        // request would hang forever instead of completing.
        let engine = RecoveryEngine::start(
            Arc::clone(&model),
            EngineConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                workers: 1,
                threads_per_worker: 0,
                queue_capacity: None,
                ..EngineConfig::default()
            },
        );
        let mut bad = inputs[0].clone();
        bad.subgraphs[0].nodes[0] = usize::MAX / 2; // out of any road network's range
        let failed = engine.recover(bad);
        assert!(failed.error.is_some(), "corrupt input must report an error");
        assert!(failed.path.is_empty());

        let good = engine.recover(inputs[1].clone());
        assert!(good.error.is_none());
        assert_eq!(good.path, model.recover(&inputs[1]));
        let stats = engine.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 2);
    }

    /// A corrupt member inside a *multi-request* batch must fail alone:
    /// the fused pass panics, the fallback recovers every healthy member
    /// with its exact sequential result.
    #[test]
    fn corrupt_member_fails_alone_inside_fused_batch() {
        let (city, inputs) = fixture(4);
        let model = serving(&city);
        let mut bad = inputs[2].clone();
        bad.subgraphs[0].nodes[0] = usize::MAX / 2;
        let batch: Vec<&SampleInput> = vec![&inputs[0], &inputs[1], &bad, &inputs[3]];
        let results = model.recover_batch(&batch);
        assert_eq!(results.len(), 4);
        for (i, (input, result)) in batch.iter().zip(&results).enumerate() {
            if i == 2 {
                assert!(result.is_err(), "corrupt member must error");
            } else {
                assert_eq!(
                    result.as_ref().expect("healthy member"),
                    &model.recover(input),
                    "member {i} diverged in fallback"
                );
            }
        }
    }

    #[test]
    fn threads_per_worker_sets_intra_op_threads() {
        let (city, inputs) = fixture(1);
        let model = serving(&city);
        let want = model.recover(&inputs[0]);
        // NN_THREADS is unset in the test environment unless the whole
        // suite runs under it — in that case the env var must win and
        // this test asserts that instead. Use the pool's own parser so
        // edge values (0, whitespace) are classified exactly as the
        // engine classifies them.
        let env_threads = rntrajrec_nn::pool::env_threads();
        let engine = RecoveryEngine::start(
            Arc::clone(&model),
            EngineConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                workers: 1,
                threads_per_worker: 2,
                queue_capacity: None,
                ..EngineConfig::default()
            },
        );
        // Other tests may race on the process-global knob, so assert the
        // engine's own record of what it applied.
        let applied = engine.intra_op_threads().expect("intra-op threads set");
        match env_threads {
            Some(n) => assert_eq!(applied, n.clamp(1, 16), "env override must win"),
            None => assert_eq!(applied, 2),
        }
        // Results are bit-identical regardless of the intra-op setting.
        let got = engine.recover(inputs[0].clone());
        assert_eq!(got.path, want);
        rntrajrec_nn::pool::set_num_threads(1);
    }

    /// Admission control: a bounded queue rejects with a typed
    /// [`EngineError::Overloaded`] instead of queueing without bound (or
    /// blocking). Capacity 0 makes the rejection deterministic.
    #[test]
    fn bounded_queue_rejects_with_typed_overload() {
        let (city, inputs) = fixture(2);
        let model = serving(&city);
        let engine = RecoveryEngine::start(
            Arc::clone(&model),
            EngineConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                workers: 1,
                threads_per_worker: 0,
                queue_capacity: Some(0),
                ..EngineConfig::default()
            },
        );
        match engine.submit(inputs[0].clone(), SubmitOptions::default()) {
            Err(EngineError::Overloaded {
                queue_depth,
                capacity,
            }) => {
                assert_eq!(queue_depth, 0);
                assert_eq!(capacity, 0);
            }
            Ok(_) => panic!("capacity-0 queue must reject"),
            Err(e) => panic!("expected Overloaded, got {e}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.requests, 0, "rejected submissions are not requests");
        assert_eq!(engine.queue_capacity(), Some(0));

        // An unbounded engine still accepts, and the gauges read sanely.
        let open = RecoveryEngine::start(Arc::clone(&model), EngineConfig::default());
        let r = open
            .submit(inputs[1].clone(), SubmitOptions::default())
            .expect("accepts")
            .wait();
        assert!(r.error.is_none());
        assert_eq!(open.queue_depth(), 0);
        assert_eq!(open.in_flight_batches(), 0);
        assert_eq!(open.stats().rejected, 0);
    }

    #[test]
    fn wait_timeout_returns_handle_then_result() {
        let (city, inputs) = fixture(1);
        let engine = RecoveryEngine::start(serving(&city), EngineConfig::default());
        let handle = engine
            .submit(inputs[0].clone(), SubmitOptions::default())
            .expect("unbounded queue accepts");
        // A zero budget misses; the handle survives and still delivers.
        let handle = match handle.wait_timeout(Duration::ZERO) {
            Ok(r) => {
                // Scheduler beat us to it — the result is already valid.
                assert!(r.error.is_none());
                return;
            }
            Err(h) => h,
        };
        let r = handle
            .wait_timeout(Duration::from_secs(30))
            .expect("completes");
        assert!(r.error.is_none());
        assert!(!r.path.is_empty());
    }

    #[test]
    fn drop_drains_cleanly_with_pending_none() {
        let (city, _) = fixture(0);
        let engine = RecoveryEngine::start(serving(&city), EngineConfig::default());
        drop(engine); // no requests: workers must exit, not hang
    }
}
