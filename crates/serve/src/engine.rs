//! The micro-batching recovery engine.
//!
//! Requests are appended to a shared queue; worker threads pop *batches* —
//! a batch flushes as soon as it reaches [`EngineConfig::max_batch`]
//! requests, or when its oldest request has waited
//! [`EngineConfig::max_delay`] (continuous-batching style: size bounds
//! throughput overhead, the deadline bounds tail latency at low load).
//!
//! Each flushed batch is recovered through the **fully fused inference
//! path** against the shared read-only [`ServingModel`]: one stacked
//! encoder pass for the whole batch (every Linear/attention projection is
//! a single `[ΣL, d]` matmul; RNTrajRec's GraphNorm — whose *batch*
//! statistics are why naive cross-request fusion would change results —
//! keeps its statistics scoped per member through segmented kernels), then
//! the fused decoder runs one `[B, ·]` matmul per head per step instead of
//! `B` separate `[1, ·]` products. Every fused kernel keeps the member's
//! own per-element accumulation order, so batched results remain
//! **bit-identical** to sequential per-request inference regardless of
//! batch composition, worker count, or arrival order — property-tested in
//! this crate and in `rntrajrec-models/tests/batch_decode_parity.rs`.
//! Batching wins three times: scheduling (one queue round-trip per batch),
//! encoder math (one stacked pass instead of a full GPS-Former pass per
//! member), and decoder math (one pass over the `[d, |V|]` segment-head
//! weights per step for the whole batch).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rntrajrec_models::SampleInput;

use crate::ServingModel;

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Flush a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a non-empty batch once its oldest request is this old.
    pub max_delay: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Intra-op kernel threads each worker's inference may use
    /// (`rntrajrec_nn::pool`), applied process-wide at
    /// [`RecoveryEngine::start`]. `0` keeps the current process setting
    /// (`NN_THREADS` env or hardware parallelism); a set `NN_THREADS`
    /// environment variable always overrides this field. Size it so
    /// `workers × threads_per_worker ≤ cores`: workers scale throughput
    /// across requests, intra-op threads cut single-request latency —
    /// see the crate docs for the interaction.
    pub threads_per_worker: usize,
    /// Admission bound on the waiting queue: [`RecoveryEngine::try_submit`]
    /// rejects with [`EngineError::Overloaded`] once this many requests
    /// are already waiting (requests being *executed* in a flushed batch
    /// no longer count). `None` keeps the queue unbounded — the
    /// pre-admission-control behaviour. `Some(0)` sheds every request
    /// (useful for drain/maintenance modes and for deterministically
    /// exercising the rejection path).
    pub queue_capacity: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
        Self {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            workers,
            // The default worker count already covers the cores; keep
            // kernels single-threaded per worker unless configured.
            threads_per_worker: if workers > 1 { 1 } else { 0 },
            queue_capacity: None,
        }
    }
}

/// Typed submission failure: the engine refused a request rather than
/// queueing it. Surfaced so callers (the HTTP layer maps this to `429
/// Too Many Requests`) can shed load instead of growing the queue — and
/// with it tail latency — without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The waiting queue is at [`EngineConfig::queue_capacity`].
    Overloaded {
        /// Requests waiting when the submission was refused.
        queue_depth: usize,
        /// The configured bound.
        capacity: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "engine overloaded: {queue_depth} requests waiting (capacity {capacity})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// One completed recovery.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Submission id (monotonically increasing per engine).
    pub id: u64,
    /// Predicted `(segment, moving-rate)` per target step. Empty when
    /// [`Recovered::error`] is set.
    pub path: Vec<(usize, f32)>,
    /// `Some(panic message)` if inference failed for this request (a
    /// malformed input, say); the engine itself stays up.
    pub error: Option<String>,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
    /// Submit-to-completion latency
    /// (≈ [`Recovered::queue_wait`] + [`Recovered::compute`] + delivery).
    pub latency: Duration,
    /// Time spent waiting in the queue: submit → batch flush.
    pub queue_wait: Duration,
    /// Time spent in fused inference: batch flush → results ready.
    /// Shared by the whole batch (one fused pass serves every member).
    pub compute: Duration,
}

/// Handle to an in-flight request.
#[derive(Debug)]
pub struct RecoveryHandle {
    id: u64,
    rx: mpsc::Receiver<Recovered>,
}

impl RecoveryHandle {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the recovery completes.
    pub fn wait(self) -> Recovered {
        self.rx
            .recv()
            .expect("recovery engine dropped before completing request")
    }

    /// Block at most `timeout` for the result. On timeout the handle is
    /// returned so the caller can keep waiting (or drop it — the engine
    /// still executes the request, it just has nowhere to deliver the
    /// result). The HTTP layer uses this for per-request deadline
    /// budgets, mapping a timeout to `503`.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Recovered, RecoveryHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("recovery engine dropped before completing request")
            }
        }
    }
}

/// Aggregate engine counters (snapshot).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    pub requests: u64,
    pub completed: u64,
    /// Requests whose inference panicked (reported via [`Recovered::error`]).
    pub failed: u64,
    /// Submissions refused by admission control
    /// ([`EngineError::Overloaded`]).
    pub rejected: u64,
    pub batches: u64,
    /// Batches flushed because they reached `max_batch`.
    pub flushed_full: u64,
    /// Batches flushed by the `max_delay` deadline (or shutdown drain).
    pub flushed_deadline: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Mean per-request queue wait (submit → batch flush), milliseconds.
    pub mean_queue_wait_ms: f64,
    /// Mean per-request compute (batch flush → results ready), ms.
    pub mean_compute_ms: f64,
    /// Active kernel backend (`rntrajrec_nn::kernels::backend::active_name`):
    /// `"scalar"` or `"avx2"`.
    pub kernel_backend: String,
    /// Decoder segment head the served model runs: `"sparse"` or `"int8"`.
    pub segment_head: String,
}

struct Pending {
    id: u64,
    /// Observability request id (present when the submitter traced the
    /// request, or tracing was enabled at submit).
    trace: Option<rntrajrec_obs::RequestId>,
    input: SampleInput,
    enqueued: Instant,
    tx: mpsc::Sender<Recovered>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    flushed_full: AtomicU64,
    flushed_deadline: AtomicU64,
    batched_requests: AtomicU64,
    in_flight_batches: AtomicUsize,
    /// Σ queue wait across completed requests, nanoseconds.
    queue_wait_ns: AtomicU64,
    /// Σ compute across completed requests, nanoseconds.
    compute_ns: AtomicU64,
}

struct Shared {
    model: Arc<ServingModel>,
    queue: Mutex<VecDeque<Pending>>,
    cond: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    counters: Counters,
    max_batch: usize,
    max_delay: Duration,
    queue_capacity: Option<usize>,
}

/// The multi-threaded online recovery engine.
pub struct RecoveryEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Intra-op threads applied at start (`None`: process default kept).
    intra_op: Option<usize>,
}

impl RecoveryEngine {
    /// Start `config.workers` threads over a shared model.
    ///
    /// Also applies the intra-op kernel thread setting: `NN_THREADS` when
    /// set in the environment, else [`EngineConfig::threads_per_worker`]
    /// when non-zero. The setting is process-wide (`rntrajrec_nn::pool`),
    /// shared by all engines and kernels in the process.
    pub fn start(model: Arc<ServingModel>, config: EngineConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be >= 1");
        assert!(config.workers >= 1, "workers must be >= 1");
        let intra_op = rntrajrec_nn::pool::env_threads().unwrap_or(config.threads_per_worker);
        let intra_op = (intra_op > 0).then(|| rntrajrec_nn::pool::set_num_threads(intra_op));
        let shared = Arc::new(Shared {
            model,
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            counters: Counters::default(),
            max_batch: config.max_batch,
            max_delay: config.max_delay,
            queue_capacity: config.queue_capacity,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rntrajrec-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            workers,
            intra_op,
        }
    }

    /// Enqueue a request; returns immediately with a waitable handle.
    ///
    /// # Panics
    /// Panics when a configured [`EngineConfig::queue_capacity`] is
    /// saturated — admission-aware callers must use
    /// [`RecoveryEngine::try_submit`] and shed load on
    /// [`EngineError::Overloaded`]. With the default unbounded queue this
    /// never panics.
    pub fn submit(&self, input: SampleInput) -> RecoveryHandle {
        self.try_submit(input)
            .expect("engine saturated: use try_submit with a bounded queue")
    }

    /// Enqueue a request if the waiting queue has room; returns
    /// immediately with a waitable handle, or
    /// [`EngineError::Overloaded`] when the queue is at
    /// [`EngineConfig::queue_capacity`] — the typed load-shedding path
    /// (never blocks, never drops silently).
    pub fn try_submit(&self, input: SampleInput) -> Result<RecoveryHandle, EngineError> {
        // When tracing is on, untraced submitters still get a request id
        // so engine-side spans (queue.wait, batch.assemble, the fused
        // passes) are attributable; there is just no HTTP-side tree.
        let trace = rntrajrec_obs::enabled().then(rntrajrec_obs::next_request_id);
        self.try_submit_traced(input, trace)
    }

    /// [`RecoveryEngine::try_submit`] with an explicit observability
    /// request id ([`rntrajrec_obs::next_request_id`]), minted by the
    /// caller at the protocol edge (the HTTP layer mints at accept) so
    /// queue/batch/kernel spans join the caller's span tree.
    pub fn try_submit_traced(
        &self,
        input: SampleInput,
        trace: Option<rntrajrec_obs::RequestId>,
    ) -> Result<RecoveryHandle, EngineError> {
        let (tx, rx) = mpsc::channel();
        let id = {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(cap) = self.shared.queue_capacity {
                if q.len() >= cap {
                    let depth = q.len();
                    drop(q);
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(EngineError::Overloaded {
                        queue_depth: depth,
                        capacity: cap,
                    });
                }
            }
            let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
            self.shared
                .counters
                .requests
                .fetch_add(1, Ordering::Relaxed);
            q.push_back(Pending {
                id,
                trace,
                input,
                enqueued: Instant::now(),
                tx,
            });
            id
        };
        self.shared.cond.notify_one();
        Ok(RecoveryHandle { id, rx })
    }

    /// Convenience: submit and block for the result.
    pub fn recover(&self, input: SampleInput) -> Recovered {
        self.submit(input).wait()
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.shared.counters;
        let batches = c.batches.load(Ordering::Relaxed);
        let batched = c.batched_requests.load(Ordering::Relaxed);
        let completed = c.completed.load(Ordering::Relaxed);
        EngineStats {
            requests: c.requests.load(Ordering::Relaxed),
            completed,
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            batches,
            flushed_full: c.flushed_full.load(Ordering::Relaxed),
            flushed_deadline: c.flushed_deadline.load(Ordering::Relaxed),
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            mean_queue_wait_ms: if completed == 0 {
                0.0
            } else {
                c.queue_wait_ns.load(Ordering::Relaxed) as f64 / completed as f64 / 1e6
            },
            mean_compute_ms: if completed == 0 {
                0.0
            } else {
                c.compute_ns.load(Ordering::Relaxed) as f64 / completed as f64 / 1e6
            },
            kernel_backend: rntrajrec_nn::kernels::backend::active_name().to_string(),
            segment_head: self.shared.model.head_name().to_string(),
        }
    }

    /// Intra-op kernel threads this engine applied at start (`None` when
    /// the process default was kept).
    pub fn intra_op_threads(&self) -> Option<usize> {
        self.intra_op
    }

    /// Requests currently waiting in the queue (not yet flushed into a
    /// batch). A live gauge for `/metrics` and capacity planning.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Micro-batches currently executing on worker threads.
    pub fn in_flight_batches(&self) -> usize {
        self.shared
            .counters
            .in_flight_batches
            .load(Ordering::Relaxed)
    }

    /// The configured admission bound (`None`: unbounded).
    pub fn queue_capacity(&self) -> Option<usize> {
        self.shared.queue_capacity
    }

    /// The served model (e.g. for direct single-request comparison).
    pub fn model(&self) -> &ServingModel {
        &self.shared.model
    }

    /// Graceful stop with a final report: signals shutdown, lets workers
    /// drain the remaining queue, joins them, and returns the counter
    /// snapshot *after* the drain — so requests still queued at shutdown
    /// are included. (Dropping the engine drains identically but offers
    /// no post-drain stats.)
    pub fn drain(mut self) -> EngineStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RecoveryEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Pop one micro-batch (blocking) or `None` on shutdown with an empty
/// queue. Returns the flush instant alongside the batch — the boundary
/// between every member's queue-wait and the batch's compute.
fn take_batch(shared: &Shared) -> Option<(Vec<Pending>, Instant)> {
    let mut q = shared.queue.lock().unwrap();
    let full = loop {
        if q.len() >= shared.max_batch {
            break true; // flush on size
        }
        let draining = shared.shutdown.load(Ordering::SeqCst);
        match q.front() {
            Some(oldest) => {
                let age = oldest.enqueued.elapsed();
                if draining || age >= shared.max_delay {
                    break false; // flush on deadline (or shutdown drain)
                }
                let (guard, _) = shared.cond.wait_timeout(q, shared.max_delay - age).unwrap();
                q = guard;
            }
            None => {
                if draining {
                    return None;
                }
                q = shared.cond.wait(q).unwrap();
            }
        }
    };
    let take = q.len().min(shared.max_batch);
    let batch: Vec<Pending> = q.drain(..take).collect();
    let leftovers = !q.is_empty();
    drop(q);
    if leftovers {
        // More work remains and no submit may come to notify for it:
        // wake another worker rather than leaving the leftovers to wait
        // behind this batch's inference.
        shared.cond.notify_one();
    }
    if batch.len() == shared.max_batch && full {
        shared.counters.flushed_full.fetch_add(1, Ordering::Relaxed);
    } else {
        shared
            .counters
            .flushed_deadline
            .fetch_add(1, Ordering::Relaxed);
    }
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .batched_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    let taken = Instant::now();
    if rntrajrec_obs::enabled() {
        // Per-member queue.wait spans (endpoints measured across threads:
        // submit on the HTTP worker, flush here) and one batch.assemble
        // span covering oldest-enqueue → flush for all traced members.
        let taken_ns = rntrajrec_obs::instant_ns(taken);
        let mut members: Vec<rntrajrec_obs::RequestId> = Vec::new();
        let mut oldest_ns = taken_ns;
        for p in &batch {
            if let Some(req) = p.trace {
                let enq_ns = rntrajrec_obs::instant_ns(p.enqueued);
                rntrajrec_obs::record("queue.wait", &[req], enq_ns, taken_ns);
                oldest_ns = oldest_ns.min(enq_ns);
                members.push(req);
            }
        }
        if !members.is_empty() {
            rntrajrec_obs::record("batch.assemble", &members, oldest_ns, taken_ns);
        }
    }
    Some((batch, taken))
}

fn worker_loop(shared: &Shared) {
    use std::sync::OnceLock;
    static QUEUE_WAIT_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    static COMPUTE_SECONDS: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    static BATCH_SIZE: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();
    static BATCH_OCCUPANCY: OnceLock<Arc<rntrajrec_obs::metrics::Histogram>> = OnceLock::new();

    while let Some((batch, taken)) = take_batch(shared) {
        let batch_size = batch.len();
        BATCH_SIZE
            .get_or_init(rntrajrec_obs::metrics::batch_size)
            .observe(batch_size as f64);
        BATCH_OCCUPANCY
            .get_or_init(rntrajrec_obs::metrics::batch_occupancy)
            .observe(batch_size as f64 / shared.max_batch as f64);
        shared
            .counters
            .in_flight_batches
            .fetch_add(1, Ordering::Relaxed);
        // The whole flushed batch goes through the fused inference path:
        // one stacked encoder pass (GraphNorm statistics per member) and
        // stacked [B, ·] decoder steps — bit-identical to per-request
        // inference, so the batch composition is still unobservable in
        // the results. A panicking
        // request (e.g. an input built against a different road network
        // tripping a shape assert) makes `recover_batch` fall back to
        // per-member recovery internally, failing only that request —
        // never the worker thread, and with it the whole engine.
        let inputs: Vec<&SampleInput> = batch.iter().map(|p| &p.input).collect();
        let results = {
            // Attribute every span and kernel event of the fused pass to
            // all traced members. The scope must drop (flushing this
            // thread's span buffer to the global store) *before* results
            // are delivered below, so a client that answers immediately
            // already sees its batch spans in `/debug/trace`.
            let members: Vec<rntrajrec_obs::RequestId> =
                batch.iter().filter_map(|p| p.trace).collect();
            let _scope = rntrajrec_obs::request_scope(&members);
            shared.model.recover_batch(&inputs)
        };
        let done = Instant::now();
        let compute = done.saturating_duration_since(taken);
        shared.counters.compute_ns.fetch_add(
            compute.as_nanos() as u64 * batch_size as u64,
            Ordering::Relaxed,
        );
        COMPUTE_SECONDS
            .get_or_init(|| rntrajrec_obs::metrics::phase_seconds("compute"))
            .observe_duration(compute);
        let queue_wait_hist =
            QUEUE_WAIT_SECONDS.get_or_init(|| rntrajrec_obs::metrics::phase_seconds("queue_wait"));
        // Decrement before delivering: a client unblocked by `send` below
        // must observe the gauge already back at zero (compute is over;
        // only delivery remains).
        shared
            .counters
            .in_flight_batches
            .fetch_sub(1, Ordering::Relaxed);
        for (pending, result) in batch.iter().zip(results) {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            let (path, error) = match result {
                Ok(path) => (path, None),
                Err(msg) => {
                    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                    (Vec::new(), Some(msg))
                }
            };
            let queue_wait = taken.saturating_duration_since(pending.enqueued);
            shared
                .counters
                .queue_wait_ns
                .fetch_add(queue_wait.as_nanos() as u64, Ordering::Relaxed);
            queue_wait_hist.observe_duration(queue_wait);
            let _ = pending.tx.send(Recovered {
                id: pending.id,
                path,
                error,
                batch_size,
                latency: pending.enqueued.elapsed(),
                queue_wait,
                compute,
            });
        }
    }
}
